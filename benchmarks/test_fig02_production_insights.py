"""Figure 2: production Spark workload insights (synthetic trace).

Paper statistics being reproduced:
  2a — >60 % of applications run more than one query (tail to thousands);
  2b — median CoV across an app's queries: ≥20 % operator counts,
       ≥40 % rows processed, ≥60 % query times;
  2c — ~70 % of applications never share their cluster (tail to 64).
"""

import numpy as np

from repro.experiments.figures import render_cdf
from repro.workloads.production import generate_production_trace


def test_fig02_production_insights(report, benchmark):
    trace = generate_production_trace(n_applications=9_000, seed=0)

    lines = [
        "Figure 2 — production workload insights (synthetic trace, "
        f"{trace.n_applications} apps / {trace.n_queries} queries)",
        "",
        "(a) " + render_cdf("queries per application", trace.queries_per_app),
        f"    multi-query fraction: {100 * trace.multi_query_fraction():.0f}%"
        "  (paper: >60%)",
        "",
        "(b) " + render_cdf("CoV operator counts (%)", trace.cov_operator_counts),
        "    " + render_cdf("CoV rows processed (%)", trace.cov_rows_processed),
        "    " + render_cdf("CoV query times    (%)", trace.cov_query_times),
        f"    apps with CoV >= 20/40/60% (ops/rows/times): "
        f"{100 * np.mean(trace.cov_operator_counts >= 20):.0f}% / "
        f"{100 * np.mean(trace.cov_rows_processed >= 40):.0f}% / "
        f"{100 * np.mean(trace.cov_query_times >= 60):.0f}%"
        "  (paper: ~50% each)",
        "",
        "(c) " + render_cdf("max concurrent apps", trace.max_concurrent_apps),
        f"    unshared-cluster fraction: "
        f"{100 * trace.unshared_cluster_fraction():.0f}%  (paper: ~70%)",
    ]
    report("fig02_production_insights", "\n".join(lines))

    assert trace.multi_query_fraction() > 0.60
    assert np.mean(trace.cov_operator_counts >= 20) >= 0.45
    assert np.mean(trace.cov_rows_processed >= 40) >= 0.45
    assert np.mean(trace.cov_query_times >= 60) >= 0.45
    assert 0.65 <= trace.unshared_cluster_fraction() <= 0.75

    # benchmark kernel: trace generation at 1/10th size
    benchmark(lambda: generate_production_trace(n_applications=900, seed=1))

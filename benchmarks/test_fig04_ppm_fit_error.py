"""Figure 4: how well the two PPM families fit Sparklens estimates.

Paper: fitting AE_PL and AE_AL to Sparklens estimates of all TPC-DS
SF=100 queries, AE_AL fits better for n < 32 while AE_PL fits better
beyond; combining the two per range keeps the error at ~7 % or less.
"""

import numpy as np

from repro.core.ppm import fit_amdahl, fit_power_law
from repro.experiments.figures import render_series_table

REPORT_N = (1, 3, 8, 12, 16, 24, 32, 48)


def _fit_errors(dataset, n_values):
    """Errors of the *stored labels* (fitted at the paper's 6-point grid)
    against the Sparklens curves, evaluated at ``n_values``."""
    from repro.core.ppm import AmdahlPPM, PowerLawPPM

    grid = dataset.n_grid
    cols = np.searchsorted(grid, n_values)
    err = {"AE_PL": np.zeros(len(n_values)), "AE_AL": np.zeros(len(n_values))}
    tot = np.zeros(len(n_values))
    for i, qid in enumerate(dataset.query_ids):
        curve = dataset.sparklens_curves[qid]
        pl = PowerLawPPM(*dataset.power_law_params[i]).predict_curve(grid)
        al = AmdahlPPM(*dataset.amdahl_params[i]).predict_curve(grid)
        err["AE_PL"] += np.abs(pl[cols] - curve[cols])
        err["AE_AL"] += np.abs(al[cols] - curve[cols])
        tot += curve[cols]
    return {k: v / tot for k, v in err.items()}


def test_fig04_ppm_fit_error(ctx, report, benchmark):
    dataset = ctx.training_dataset(100)
    errors = _fit_errors(dataset, REPORT_N)

    report(
        "fig04_ppm_fit_error",
        "Figure 4 — PPM fit error vs Sparklens estimates (TPC-DS SF=100)\n"
        + render_series_table(
            "n", REPORT_N, errors, float_format="{:10.3f}"
        )
        + "\npaper: AE_AL better for n<32, AE_PL better beyond; "
        "best-per-range error <= ~7%",
    )

    n = np.array(REPORT_N)
    small = n < 32
    large = n >= 32
    # AE_AL fits the (Amdahl-shaped) Sparklens curves better at small n
    assert errors["AE_AL"][small].mean() < errors["AE_PL"][small].mean()
    # AE_PL's saturation term wins at large n
    assert errors["AE_PL"][large].mean() <= errors["AE_AL"][large].mean()
    # best-per-range error stays small (paper: ~7%; our curves saturate
    # a little earlier, pushing the knee error slightly higher)
    best = np.where(small, errors["AE_AL"], errors["AE_PL"])
    assert best.max() < 0.15
    assert best.mean() < 0.07

    # benchmark kernel: fitting both families for one query
    curve = dataset.sparklens_curves[dataset.query_ids[0]]
    grid = dataset.n_grid

    def fit_both():
        fit_power_law(grid, curve)
        fit_amdahl(grid, curve)

    benchmark(fit_both)

"""Figure 8: predicted vs actual run-time curves for a held-out query.

The paper plots Sparklens estimates, AE_PL and AE_AL predictions (trained
without q94), and q94's actual run times: predictions differ most at small
n but the curve *shapes* agree, converging at higher executor counts.
"""

import numpy as np

from repro.experiments.figures import render_series_table, sparkline

REPORT_N = (1, 3, 8, 16, 32, 48)


def test_fig08_time_prediction_q94(ctx, report, benchmark):
    cv = ctx.cross_validation(100)
    actuals = ctx.actuals(100)
    dataset = ctx.training_dataset(100)
    grid = cv.n_grid
    cols = np.searchsorted(grid, REPORT_N)

    # find a fold where q94 is a *test* query (never trained on)
    fold = next(f for f in cv.folds if "q94" in f.test_ids)
    series = {
        "S": dataset.sparklens_curves["q94"][cols],
        "AE_PL": fold.predicted_curves["power_law"]["q94"][cols],
        "AE_AL": fold.predicted_curves["amdahl"]["q94"][cols],
        "Actual": actuals.curve("q94", grid)[cols],
    }

    lines = [
        "Figure 8 — q94 SF=100, held out of training",
        render_series_table("n", REPORT_N, series, float_format="{:10.1f}"),
        "",
        "shapes: "
        + "  ".join(
            f"{k}={sparkline(v)}" for k, v in series.items()
        ),
        "paper: predictions diverge at n=1 but the curves share the same "
        "shape and converge at higher n",
    ]
    report("fig08_time_prediction", "\n".join(lines))

    actual = series["Actual"]
    for name in ("S", "AE_PL", "AE_AL"):
        pred = series[name]
        # curves converge at high executor counts ...
        rel_at_48 = abs(pred[-1] - actual[-1]) / actual[-1]
        assert rel_at_48 < 0.6
        # ... and every curve decreases steeply from n=1 like the actual
        assert pred[0] > 1.5 * pred[-1]
        assert actual[0] > 1.5 * actual[-1]

    # benchmark kernel: scoring the model once and evaluating the curve
    model = dataset.fit_parameter_model("power_law")
    row = dataset.features[dataset.query_ids.index("q94")]
    benchmark(lambda: model.predict_ppm(row).predict_curve(grid))

"""Figure 3: executor counts in production and optimal counts for TPC-DS.

  3a — among DA apps with custom thresholds, ~60 % use a range of just 2,
       the rest growing to 64;
  3b — 80 % of non-DA apps run the default 2 executors (total-cores tail
       to 2048);
  3c — the optimal executor count varies per query AND per scale factor
       (1..48), which is why per-query prediction needs rich features.
"""

import numpy as np

from repro.experiments.figures import cdf_percentiles, render_cdf
from repro.workloads.production import generate_production_trace


def test_fig03ab_production_allocation(report, benchmark):
    trace = generate_production_trace(n_applications=9_000, seed=0)
    ranges = trace.custom_da_ranges()
    static = trace.static_allocations()

    lines = [
        "Figure 3a/3b — allocation configuration in production (synthetic)",
        "",
        "(a) " + render_cdf("custom DA range", ranges),
        f"    range == 2: {100 * np.mean(ranges == 2):.0f}%  (paper: ~60%)"
        f";  max range: {ranges.max()}  (paper: 64)",
        f"    DA enabled: {100 * trace.da_fraction():.0f}% (paper 59%), "
        f"default thresholds kept: "
        f"{100 * trace.default_threshold_fraction():.0f}% (paper 97%)",
        "",
        "(b) " + render_cdf("static executor count", static),
        "    " + render_cdf("static total cores", trace.static_total_cores()),
        f"    executors == 2: {100 * np.mean(static == 2):.0f}%  (paper: 80%)",
    ]
    report("fig03ab_production_allocation", "\n".join(lines))

    assert 0.5 <= np.mean(ranges == 2) <= 0.7
    assert 0.75 <= np.mean(static == 2) <= 0.85

    benchmark(
        lambda: generate_production_trace(
            n_applications=900, seed=2
        ).custom_da_ranges()
    )


def test_fig03c_optimal_executors(ctx, report, benchmark):
    rows = []
    optima_by_sf = {}
    for sf in (10, 100):
        actuals = ctx.actuals(sf)
        optima = np.array(
            [actuals.optimal_executors(q) for q in actuals.query_ids]
        )
        optima_by_sf[sf] = optima
        pct = cdf_percentiles(optima, percentiles=(10, 25, 50, 75, 90))
        rows.append(
            f"  SF={sf:<4d} optimal n: "
            + ", ".join(f"p{p}={v:.0f}" for p, v in pct.items())
            + f", range [{optima.min()}, {optima.max()}]"
        )
    report(
        "fig03c_optimal_executors",
        "Figure 3c — optimal executor counts per query (TPC-DS)\n"
        + "\n".join(rows)
        + "\npaper: optima vary from ~1 up to 48 and shift right with SF",
    )

    # SF=100 optima stochastically dominate SF=10 optima
    assert np.median(optima_by_sf[100]) > np.median(optima_by_sf[10])
    assert optima_by_sf[10].min() <= 4
    assert optima_by_sf[100].max() >= 40

    actuals100 = ctx.actuals(100)
    benchmark(
        lambda: [actuals100.optimal_executors(q) for q in actuals100.query_ids[:20]]
    )

#!/usr/bin/env python
"""Sweep micro-benchmark: batched simulation vs the per-count event loop.

Measures, on the real TPC-DS workload:

1. **loop** — one ``simulate_query`` event-loop run per executor count
   (the pre-sweep way every figure and the training pipeline evaluated
   the executor-count axis);
2. **sweep** — the same (query, count) grid through one
   ``simulate_query_sweep`` call per query (compiled plan + vectorized
   wave scheduling);
3. **fleet** — end-to-end ``FleetEngine.serve`` wall-clock for a Poisson
   stream allocated by the online ``PredictionService``;
4. **equivalence** — bit-identity of every sweep result against its
   event-loop twin (runtime, AUC, peak executors, skyline steps);
5. **parity** — bit-identity of a fleet of one query on an uncontended
   pool against ``simulate_query`` under ``BudgetAllocation`` (runtime,
   AUC, skyline), the shared-execution-core contract.

The result is written as ``BENCH_sweep.json`` (schema documented in
``benchmarks/perf/README.md``); CI uploads it as an artifact and gates
regressions against the checked-in ``baseline.json`` via ``compare.py``.

Run from the repository root:

    python benchmarks/perf/run_bench.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.autoexecutor import AutoExecutor  # noqa: E402
from repro.engine.allocation import BudgetAllocation, StaticAllocation  # noqa: E402
from repro.engine.cluster import Cluster  # noqa: E402
from repro.engine.scheduler import simulate_query  # noqa: E402
from repro.engine.sweep import compile_plan  # noqa: E402
from repro.fleet.arrivals import QueryArrival, poisson_arrivals  # noqa: E402
from repro.fleet.engine import (  # noqa: E402
    FleetConfig,
    FleetEngine,
    static_allocator,
)
from repro.fleet.prediction import PredictionService  # noqa: E402
from repro.workloads.generator import Workload  # noqa: E402

SCHEMA = "repro-bench-sweep/v2"

# A size-diverse slice of TPC-DS (narrow 3-stage scans through wide
# multi-join DAGs) so both the vectorized wave path and the heap drain
# path are on the clock.
DEFAULT_QUERY_IDS = tuple(
    "q1 q2 q3 q5 q9 q14 q17 q21 q25 q46 q64 q72 q82 q88 q94 q99".split()
)


def measure_loop(graphs, counts, cluster, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for graph in graphs:
            for n in counts:
                simulate_query(graph, StaticAllocation(n), cluster)
        best = min(best, time.perf_counter() - start)
    return best


def measure_sweep(graphs, counts, cluster, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for graph in graphs:
            # compile_plan inside the timed region: the sweep's cost as a
            # consumer pays it, compilation included.
            compile_plan(graph).sweep(counts, cluster)
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(graphs, counts, cluster):
    checked = 0
    for graph in graphs:
        sweep = compile_plan(graph).sweep(counts, cluster)
        for n, s in zip(counts, sweep):
            r = simulate_query(graph, StaticAllocation(n), cluster)
            checked += 1
            same = (
                r.runtime == s.runtime
                and r.auc == s.auc
                and r.max_executors == s.max_executors
                and r.skyline.points == s.skyline.points
            )
            if not same:
                return checked, False
    return checked, True


def check_fleet_parity(workload, cluster, idle_timeout=5.0):
    """Fleet-of-one vs ``simulate_query``: the shared-core contract.

    Every plan is served as a single uncontended arrival and replayed on
    a dedicated cluster under ``BudgetAllocation`` with the same budget,
    idle timeout, and floor; runtime, AUC, and skyline must match bit for
    bit.  Budgets cycle so narrow and wide fleets both run.
    """
    checked = 0
    for i, query_id in enumerate(workload):
        budget = (4, 8, 16, 32)[i % 4]
        engine = FleetEngine(
            workload,
            capacity=64,
            allocator=static_allocator(budget),
            cluster=cluster,
            config=FleetConfig(idle_release_timeout=idle_timeout),
        )
        record = engine.serve([QueryArrival(0, query_id, 0, 0.0)]).records[0]
        reference = simulate_query(
            workload.stage_graph(query_id),
            BudgetAllocation(budget, idle_timeout=idle_timeout, min_executors=1),
            cluster,
        )
        checked += 1
        same = (
            record.finish_time - record.admit_time == reference.runtime
            and record.auc == reference.auc
            and record.skyline is not None
            and record.skyline.points == reference.skyline.points
        )
        if not same:
            return checked, False
    return checked, True


def measure_fleet(workload, cluster, n_arrivals, rate_qps, capacity):
    system = AutoExecutor(family="power_law").train(workload, cluster)
    service = PredictionService.from_autoexecutor(system)
    arrivals = poisson_arrivals(list(workload), n_arrivals, rate_qps, seed=0)
    engine = FleetEngine(workload, capacity=capacity, allocator=service.allocate)
    start = time.perf_counter()
    metrics = engine.serve(arrivals)
    elapsed = time.perf_counter() - start
    return elapsed, len(metrics.records)


def run(args):
    cluster = Cluster()
    query_ids = DEFAULT_QUERY_IDS[: args.queries]
    workload = Workload(scale_factor=100, query_ids=query_ids)
    graphs = [workload.stage_graph(q) for q in query_ids]
    counts = list(range(1, args.max_count + 1))
    sims = len(graphs) * len(counts)

    banner = (
        f"benchmarking {len(graphs)} TPC-DS plans x {len(counts)} counts "
        f"({sims} simulations per pass, {args.repeats} repeats) ..."
    )
    print(banner)
    loop_seconds = measure_loop(graphs, counts, cluster, args.repeats)
    sweep_seconds = measure_sweep(graphs, counts, cluster, args.repeats)
    speedup = loop_seconds / sweep_seconds
    checked, identical = check_equivalence(graphs, counts, cluster)
    parity_checked, parity_identical = check_fleet_parity(workload, cluster)

    fleet = None
    if not args.skip_fleet:
        print("benchmarking fleet end-to-end wall-clock ...")
        fleet_seconds, served = measure_fleet(
            workload,
            cluster,
            n_arrivals=args.fleet_arrivals,
            rate_qps=args.fleet_rate,
            capacity=args.fleet_capacity,
        )
        fleet = {
            "seconds": round(fleet_seconds, 4),
            "arrivals": served,
            "arrivals_per_second": round(served / fleet_seconds, 2),
            "rate_qps": args.fleet_rate,
            "capacity": args.fleet_capacity,
        }

    result = {
        "schema": SCHEMA,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "params": {
            "scale_factor": 100,
            "queries": list(query_ids),
            "counts": [1, args.max_count],
            "repeats": args.repeats,
        },
        "loop": {
            "seconds": round(loop_seconds, 4),
            "sims": sims,
            "sims_per_second": round(sims / loop_seconds, 1),
        },
        "sweep": {
            "seconds": round(sweep_seconds, 4),
            "sims": sims,
            "sims_per_second": round(sims / sweep_seconds, 1),
        },
        "speedup": round(speedup, 2),
        "equivalence": {"checked_sims": checked, "bit_identical": identical},
        "parity": {
            "checked_plans": parity_checked,
            "bit_identical": parity_identical,
        },
        "fleet": fleet,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    loop_rate = result["loop"]["sims_per_second"]
    sweep_rate = result["sweep"]["sims_per_second"]
    print(f"loop : {loop_seconds:8.3f}s ({loop_rate:8.1f} sims/s)")
    print(f"sweep: {sweep_seconds:8.3f}s ({sweep_rate:8.1f} sims/s)")
    print(f"speedup: {speedup:.2f}x")
    print(f"equivalence: {checked} sims, bit_identical={identical}")
    parity_line = (
        f"parity: {parity_checked} fleet-of-one plans, "
        f"bit_identical={parity_identical}"
    )
    print(parity_line)
    if fleet is not None:
        fleet_line = (
            f"fleet: {fleet['arrivals']} arrivals in {fleet['seconds']:.3f}s "
            f"({fleet['arrivals_per_second']:.1f}/s)"
        )
        print(fleet_line)
    print(f"wrote {out}")
    return 0 if identical and parity_identical else 1


def main(argv=None):
    default_out = REPO_ROOT / "benchmarks" / "perf" / "output" / "BENCH_sweep.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(default_out), help="output JSON path")
    parser.add_argument(
        "--queries",
        type=int,
        default=len(DEFAULT_QUERY_IDS),
        help="number of TPC-DS queries to sweep (default: all 16)",
    )
    parser.add_argument(
        "--max-count",
        type=int,
        default=48,
        help="sweep executor counts 1..MAX_COUNT (default 48)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repeats; the fastest pass is reported",
    )
    parser.add_argument(
        "--fleet-arrivals", type=int, default=96, help="fleet stream length"
    )
    parser.add_argument(
        "--fleet-rate", type=float, default=0.5, help="fleet arrival rate in qps"
    )
    parser.add_argument(
        "--fleet-capacity", type=int, default=160, help="fleet pool size"
    )
    parser.add_argument(
        "--skip-fleet",
        action="store_true",
        help="skip the fleet end-to-end measurement",
    )
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

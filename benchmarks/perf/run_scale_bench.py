#!/usr/bin/env python
"""Streaming-scale benchmark: a million-query serve under a memory ceiling.

The streaming serving mode (:attr:`FleetConfig.streaming
<repro.fleet.engine.FleetConfig>`) promises O(1) memory per pool: sketch
accumulators instead of record lists, per-query state freed the moment a
query finishes, and generator arrival streams that are never
materialized.  This benchmark holds the mode to that promise at a scale
the record-based drivers cannot reach:

1. **scale** — a 1,000,000-query Poisson stream served end to end by a
   sharded fleet in streaming mode, on a synthetic micro-workload sized
   so the pools keep up with the arrival rate.  Gated quantities: the
   process's **peak RSS** (``resource.getrusage``) must stay under a
   hard ceiling, and throughput (simulated queries per wall-clock
   second) must not regress against the checked-in baseline.  A second,
   shorter pass runs under ``tracemalloc`` to gate peak *Python heap*
   allocations — catching per-query leaks that disappear into RSS
   noise;
2. **parity** — the mode's two correctness contracts, re-proven at
   bench scale: a streaming serve must agree with the record-based
   serve on every exact summary field and put every latency percentile
   inside the sketch's rank-error bound; and a multiprocess
   :class:`~repro.fleet.parallel.ProcessShardExecutor` serve must equal
   the single-process sharded serve bit for bit.

The result is written as ``BENCH_scale.json`` (schema
``repro-bench-scale/v1``, documented in ``benchmarks/perf/README.md``);
CI uploads it as an artifact and gates regressions against the
checked-in ``baseline_scale.json`` via ``compare.py``.

Run from the repository root:

    python benchmarks/perf/run_scale_bench.py
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.engine.stages import Stage, StageGraph  # noqa: E402
from repro.fleet.arrivals import poisson_arrival_stream  # noqa: E402
from repro.fleet.cluster import ShardedFleet  # noqa: E402
from repro.fleet.engine import FleetConfig, static_allocator  # noqa: E402
from repro.fleet.parallel import ProcessShardExecutor  # noqa: E402

SCHEMA = "repro-bench-scale/v1"

# The streaming sketches' default relative accuracy (StreamingConfig).
ALPHA = 0.01


class MicroWorkload:
    """Synthetic single-stage queries small enough to serve by the million.

    The scale gate measures the *serving machinery* — heap churn, metric
    folds, per-query state lifetime — not TPC-DS plan execution, so the
    graphs are deliberately tiny: one stage, two or three tasks.
    """

    def __init__(self):
        self._graphs = {
            "m1": StageGraph(
                stages=[Stage(stage_id=0, num_tasks=2, task_seconds=1.0)],
                query_id="m1",
            ),
            "m2": StageGraph(
                stages=[Stage(stage_id=0, num_tasks=3, task_seconds=0.8)],
                query_id="m2",
            ),
            "m3": StageGraph(
                stages=[Stage(stage_id=0, num_tasks=2, task_seconds=1.6)],
                query_id="m3",
            ),
        }

    @property
    def query_ids(self):
        return tuple(self._graphs)

    def optimized_plan(self, query_id):
        return None  # static allocators never read the plan

    def stage_graph(self, query_id):
        return self._graphs[query_id]


def peak_rss_mb() -> float:
    """High-water RSS of this process, in MiB (Linux reports KiB)."""
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss_kb / 1024.0


def build_fleet(workload, args, streaming):
    config = FleetConfig(
        # No idle-release ticks: static pools never release capacity, so
        # ticks would only burn heap events at 1M-query scale.
        idle_release_timeout=None,
        streaming=streaming,
    )
    return ShardedFleet(
        workload,
        [args.pool_capacity] * args.pools,
        static_allocator(args.budget),
        config=config,
    )


def stream(workload, n_queries, rate_qps, seed):
    return poisson_arrival_stream(
        workload.query_ids, n_queries=n_queries, rate_qps=rate_qps, seed=seed
    )


def run_scale(workload, args):
    """The gated 1M-query streaming serve: wall clock + peak RSS."""
    gc.collect()
    rss_before = peak_rss_mb()
    start = time.perf_counter()
    metrics = build_fleet(workload, args, streaming=True).serve(
        stream(workload, args.n_queries, args.rate_qps, args.seed)
    )
    wall = time.perf_counter() - start
    rss_after = peak_rss_mb()
    assert metrics.records == []
    n_served = sum(pool.stats.n_queries for pool in metrics.pools)
    if n_served != args.n_queries:
        raise SystemExit(
            f"scale serve dropped queries: {n_served} != {args.n_queries}"
        )
    return {
        "n_queries": args.n_queries,
        "wall_seconds": round(wall, 2),
        "throughput_qps": round(args.n_queries / wall, 1),
        "peak_rss_mb": round(rss_after, 1),
        "peak_rss_before_mb": round(rss_before, 1),
        "rss_ceiling_mb": args.rss_ceiling_mb,
        "under_rss_ceiling": bool(rss_after <= args.rss_ceiling_mb),
        "makespan_s": round(metrics.makespan, 1),
    }


def run_tracemalloc(workload, args):
    """A shorter pass under tracemalloc: peak Python-heap allocations.

    tracemalloc slows the serve several-fold, so this pass is sized in
    the hundred-thousands; a per-query leak of even a few hundred bytes
    would blow the ceiling regardless.
    """
    gc.collect()
    tracemalloc.start()
    build_fleet(workload, args, streaming=True).serve(
        stream(workload, args.tracemalloc_queries, args.rate_qps, args.seed + 1)
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / (1024.0 * 1024.0)
    return {
        "n_queries": args.tracemalloc_queries,
        "peak_heap_mb": round(peak_mb, 2),
        "heap_ceiling_mb": args.heap_ceiling_mb,
        "under_heap_ceiling": bool(peak_mb <= args.heap_ceiling_mb),
    }


def check_streaming_parity(workload, args):
    """Streaming summary vs the record-based serve on one stream.

    Exact accumulator fields must agree to float noise; each latency
    percentile must land inside the sketch's rank-error bracket around
    the record-based order statistic.
    """
    arrivals = list(
        stream(workload, args.parity_queries, args.rate_qps, args.seed + 2)
    )
    recorded = build_fleet(workload, args, streaming=False).serve(arrivals)
    streamed = build_fleet(workload, args, streaming=True).serve(iter(arrivals))
    ranks = np.sort([r.latency for r in recorded.records])
    rs, ss = recorded.summary(), streamed.summary()
    exact_ok = True
    bound_ok = True
    for key, want in rs.items():
        got = ss[key]
        if key.startswith("p") and key.endswith("_latency_s"):
            q = int(key[1:-10])
            k = math.ceil(q / 100 * len(ranks))
            lo = ranks[max(0, k - 2)] * (1 - 2 * ALPHA)
            hi = ranks[min(len(ranks) - 1, k)] * (1 + 2 * ALPHA)
            if not lo <= got <= hi:
                bound_ok = False
                print(f"  BOUND MISS {key}: {got} outside [{lo}, {hi}]")
        elif not math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9):
            exact_ok = False
            print(f"  EXACT MISS {key}: {got} != {want}")
    return {
        "n_queries": args.parity_queries,
        "exact_fields_equal": bool(exact_ok),
        "percentiles_within_bound": bool(bound_ok),
        "relative_accuracy": ALPHA,
    }


def check_multiprocess_parity(workload, args):
    """Multiprocess merge vs the single-process sharded serve, bit for bit."""
    arrivals = list(
        stream(workload, args.multiprocess_queries, args.rate_qps, args.seed + 3)
    )
    config = FleetConfig(idle_release_timeout=None)
    pools = [args.pool_capacity] * args.pools
    allocator = static_allocator(args.budget)
    single = ShardedFleet(workload, pools, allocator, config=config).serve(
        arrivals
    )
    multi = ProcessShardExecutor(
        workload, pools, allocator, config=config
    ).serve(arrivals)
    identical = (
        multi.pool_of == single.pool_of
        and multi.records == single.records
        and multi.summary() == single.summary()
    )
    return {
        "n_queries": args.multiprocess_queries,
        "bit_identical": bool(identical),
    }


def run(args) -> int:
    workload = MicroWorkload()

    print(
        f"scale: serving {args.n_queries:,} queries "
        f"({args.pools}x{args.pool_capacity} pools, {args.rate_qps} qps) ..."
    )
    scale = run_scale(workload, args)
    print(
        f"  {scale['wall_seconds']}s wall, {scale['throughput_qps']:,} q/s, "
        f"peak RSS {scale['peak_rss_mb']} MiB "
        f"(ceiling {scale['rss_ceiling_mb']} MiB)"
    )
    print(f"tracemalloc: serving {args.tracemalloc_queries:,} queries ...")
    heap = run_tracemalloc(workload, args)
    print(
        f"  peak Python heap {heap['peak_heap_mb']} MiB "
        f"(ceiling {heap['heap_ceiling_mb']} MiB)"
    )
    print(f"parity: streaming vs records on {args.parity_queries:,} queries ...")
    streaming_parity = check_streaming_parity(workload, args)
    print(
        f"  exact={streaming_parity['exact_fields_equal']} "
        f"bound={streaming_parity['percentiles_within_bound']}"
    )
    print(
        f"parity: multiprocess merge on {args.multiprocess_queries:,} "
        "queries ..."
    )
    multiprocess_parity = check_multiprocess_parity(workload, args)
    print(f"  bit_identical={multiprocess_parity['bit_identical']}")

    result = {
        "schema": SCHEMA,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "params": {
            "n_queries": args.n_queries,
            "tracemalloc_queries": args.tracemalloc_queries,
            "parity_queries": args.parity_queries,
            "multiprocess_queries": args.multiprocess_queries,
            "rate_qps": args.rate_qps,
            "pools": args.pools,
            "pool_capacity": args.pool_capacity,
            "budget": args.budget,
            "seed": args.seed,
            "rss_ceiling_mb": args.rss_ceiling_mb,
            "heap_ceiling_mb": args.heap_ceiling_mb,
        },
        "scale": scale,
        "tracemalloc": heap,
        "parity": {
            "streaming": streaming_parity,
            "multiprocess": multiprocess_parity,
        },
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    ok = (
        scale["under_rss_ceiling"]
        and heap["under_heap_ceiling"]
        and streaming_parity["exact_fields_equal"]
        and streaming_parity["percentiles_within_bound"]
        and multiprocess_parity["bit_identical"]
    )
    return 0 if ok else 1


def main(argv=None):
    default_out = REPO_ROOT / "benchmarks" / "perf" / "output" / "BENCH_scale.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(default_out), help="output JSON path")
    parser.add_argument(
        "--n-queries",
        type=int,
        default=1_000_000,
        help="stream length of the gated streaming serve",
    )
    parser.add_argument(
        "--tracemalloc-queries",
        type=int,
        default=100_000,
        help="stream length of the tracemalloc heap-gate pass",
    )
    parser.add_argument(
        "--parity-queries",
        type=int,
        default=50_000,
        help="stream length of the streaming-vs-records parity check",
    )
    parser.add_argument(
        "--multiprocess-queries",
        type=int,
        default=20_000,
        help="stream length of the multiprocess merge parity check",
    )
    parser.add_argument(
        "--rate-qps",
        type=float,
        default=30.0,
        help="Poisson arrival rate; must stay below the pools' service "
        "capacity — including the executor provisioning ramp each query "
        "holds capacity through — or the waiting queue (and with it, "
        "memory) grows without bound and the gate measures backlog, not "
        "the serving mode (the 4x48/budget-2 micro pools saturate just "
        "past 40 qps)",
    )
    parser.add_argument("--pools", type=int, default=4, help="pool count")
    parser.add_argument(
        "--pool-capacity", type=int, default=48, help="executors per pool"
    )
    parser.add_argument(
        "--budget", type=int, default=2, help="executors granted per query"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream RNG seed")
    parser.add_argument(
        # The serve measures ~38 MiB peak RSS (interpreter + numpy
        # included); the ceiling leaves room for runner/interpreter
        # variance while still catching ~0.15 KB/query of growth at 1M.
        "--rss-ceiling-mb",
        type=float,
        default=192.0,
        help="hard peak-RSS ceiling for the 1M-query serve (MiB)",
    )
    parser.add_argument(
        # Measured peak is ~0.5 MiB; a per-query leak of even ~150 bytes
        # blows this ceiling at the tracemalloc pass's stream length.
        "--heap-ceiling-mb",
        type=float,
        default=16.0,
        help="hard tracemalloc peak ceiling for the heap-gate pass (MiB)",
    )
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Fleet-scale benchmark: sharded pools + routing + autoscaling vs a
statically provisioned single pool.

Measures, on the real TPC-DS workload:

1. **parity** — a sharded fleet of one statically provisioned pool must
   reproduce ``FleetEngine.serve`` *bit-for-bit*: per-plan single
   arrivals (records, skylines) and a contended 48-query stream
   (records, pool skyline, full summary) are both checked;
2. **overhead** — end-to-end wall-clock of ``ShardedFleet.serve`` with
   one pool vs ``FleetEngine.serve`` on the same stream.  The ratio is
   hardware-normalized (both passes run here, now) and is the gated
   quantity: the cluster layer must stay near-free when unused;
3. **scenarios** — a rate sweep serving the same Poisson streams two
   ways: a statically provisioned single pool, and a sharded fleet of
   autoscaled pools behind cost-aware routing, both allocated by the
   online ``PredictionService``.  At the highest arrival rate the
   sharded fleet must win on p95 latency *and* on provisioned dollar
   cost (every provisioned executor-second billed, idle autoscaled
   capacity included) — recorded as the ``wins`` block CI gates on;
4. **faults** — the fault layer's two contracts.  *Zero-fault parity*:
   serving the contended stream under an inert ``FaultPlan`` (every
   rate zero) must reproduce the unperturbed engine bit-for-bit.
   *Spot economics*: a reclamation-rate sweep serves one stream on an
   all-on-demand pool and on all-spot pools of increasing churn — at
   the market's base reclamation rate, spot capacity + task retries
   must beat on-demand on total dollar cost while holding p95 within
   the matched-latency tolerance (the sweep's tail shows where wasted
   work and replacement ramps eat the discount);
5. **tracing** — the observability layer's zero-cost contract.  A serve
   with a ``RingBufferTracer`` attached must reproduce the untraced
   serve's records, skyline, and summary bit-for-bit, and its
   wall-clock must stay within the gated overhead ratio (≤1.10 by
   default) of the untraced pass.

The result is written as ``BENCH_fleet.json`` (schema
``repro-bench-fleet/v3``, documented in ``benchmarks/perf/README.md``);
CI uploads it as an artifact and gates regressions against the
checked-in ``baseline_fleet.json`` via ``compare.py``.

Pass ``--trace-out <path>`` to also write a full JSONL event log of the
contended parity stream (one ``repro.obs.TraceEvent`` per line,
loadable with ``repro.obs.read_jsonl`` / ``repro.obs.TraceAnalyzer``).

Run from the repository root:

    python benchmarks/perf/run_fleet_bench.py
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.autoexecutor import AutoExecutor  # noqa: E402
from repro.engine.cluster import Cluster  # noqa: E402
from repro.engine.faults import FaultPlan, SpotMarket  # noqa: E402
from repro.fleet.arrivals import QueryArrival, poisson_arrivals  # noqa: E402
from repro.fleet.autoscaler import AutoscalerConfig  # noqa: E402
from repro.fleet.cluster import PoolSpec, ShardedFleet  # noqa: E402
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator  # noqa: E402
from repro.fleet.prediction import PredictionService  # noqa: E402
from repro.fleet.routing import CostAwareRouter  # noqa: E402
from repro.obs import JsonlTracer, RingBufferTracer  # noqa: E402
from repro.workloads.generator import Workload  # noqa: E402

SCHEMA = "repro-bench-fleet/v3"

# Same size-diverse TPC-DS slice as the sweep bench.
DEFAULT_QUERY_IDS = tuple(
    "q1 q2 q3 q5 q9 q14 q17 q21 q25 q46 q64 q72 q82 q88 q94 q99".split()
)


def check_sharded_parity(workload, cluster, parity_stream):
    """Sharded-of-one ≡ ``FleetEngine.serve``, bit for bit."""
    checked = 0
    # Per-plan single uncontended arrivals, cycling budgets.
    for i, query_id in enumerate(workload):
        budget = (4, 8, 16, 32)[i % 4]
        arrivals = [QueryArrival(0, query_id, 0, 0.0)]
        fleet = FleetEngine(
            workload, capacity=64, allocator=static_allocator(budget), cluster=cluster
        ).serve(arrivals)
        sharded = ShardedFleet(
            workload, [64], static_allocator(budget), cluster=cluster
        ).serve(arrivals)
        checked += 1
        pool = sharded.pools[0]
        if not (
            pool.records == fleet.records
            and pool.pool_skyline.points == fleet.pool_skyline.points
            and pool.summary() == fleet.summary()
        ):
            return checked, False
    # One contended stream: queueing, idle release, shared-pool churn.
    fleet = FleetEngine(workload, capacity=48, allocator=static_allocator(8)).serve(
        parity_stream
    )
    sharded = ShardedFleet(workload, [48], static_allocator(8)).serve(parity_stream)
    checked += 1
    pool = sharded.pools[0]
    same = (
        pool.records == fleet.records
        and pool.pool_skyline.points == fleet.pool_skyline.points
        and pool.summary() == fleet.summary()
    )
    return checked, same


def check_zero_fault_parity(workload, stream, capacity):
    """An inert ``FaultPlan`` must serve the stream bit-for-bit."""
    reference = FleetEngine(
        workload, capacity=capacity, allocator=static_allocator(8)
    ).serve(stream)
    inert = FleetEngine(
        workload,
        capacity=capacity,
        allocator=static_allocator(8),
        config=FleetConfig(faults=FaultPlan(seed=0)),
    ).serve(stream)
    return (
        inert.records == reference.records
        and inert.pool_skyline.points == reference.pool_skyline.points
        and inert.summary() == reference.summary()
    )


def run_fault_sweep(workload, system, args):
    """Spot-vs-on-demand: sweep the reclamation rate on one stream."""
    arrivals = poisson_arrivals(
        list(workload), args.arrivals, args.fault_rate_qps, seed=args.seed
    )

    def serve(faults):
        # Fresh prediction services so every serve pays the same cache
        # warm-up on the same stream.
        service = PredictionService.from_autoexecutor(system)
        config = FleetConfig() if faults is None else FleetConfig(faults=faults)
        metrics = FleetEngine(
            workload,
            capacity=args.static_capacity,
            allocator=service.allocate,
            config=config,
        ).serve(arrivals)
        stats = metrics.fault_stats
        entry = summarize(metrics)
        entry.update(
            {
                "executor_failures": int(stats.failures),
                "task_retries": int(stats.task_retries),
                "wasted_work_seconds": round(float(stats.wasted_task_seconds), 1),
                "spot_executor_seconds": round(float(stats.spot_executor_seconds), 1),
            }
        )
        return entry

    ondemand = serve(None)
    sweep = []
    for reclaim_rate in args.spot_reclaim_rates:
        spot = serve(
            FaultPlan(
                seed=args.seed,
                spot=SpotMarket(
                    fraction=1.0,
                    discount=args.spot_discount,
                    reclaim_rate=reclaim_rate,
                ),
            )
        )
        matched_p95 = spot["p95_latency_s"] <= (
            ondemand["p95_latency_s"] * args.spot_p95_tolerance
        )
        sweep.append(
            {
                "reclaim_rate_per_s": reclaim_rate,
                "spot": spot,
                "cost_win": bool(
                    spot["total_dollar_cost"] < ondemand["total_dollar_cost"]
                ),
                "matched_p95": bool(matched_p95),
            }
        )
    return {
        "rate_qps": args.fault_rate_qps,
        "spot_discount": args.spot_discount,
        "p95_tolerance": args.spot_p95_tolerance,
        "on_demand": ondemand,
        "sweep": sweep,
    }


def measure_overhead(workload, stream, capacity, repeats):
    """Wall-clock of the cluster layer when it multiplexes one pool."""
    allocator = static_allocator(8)
    fleet_best = float("inf")
    sharded_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        FleetEngine(workload, capacity=capacity, allocator=allocator).serve(stream)
        fleet_best = min(fleet_best, time.perf_counter() - start)
        start = time.perf_counter()
        ShardedFleet(workload, [capacity], allocator).serve(stream)
        sharded_best = min(sharded_best, time.perf_counter() - start)
    return fleet_best, sharded_best


def measure_tracing(workload, stream, capacity, repeats):
    """The observability layer's zero-cost contract, both halves.

    Times the same serve with ``tracer=None`` and with a
    ``RingBufferTracer`` attached (the cheapest real sink, so the ratio
    is the tracing machinery's floor), and re-proves that the traced
    serve reproduces the untraced one bit-for-bit.

    The gated ``ratio`` divides two ~80 ms passes, so it needs noise
    discipline a min-of-3 cannot give: each pass starts from a
    collected GC state, at least 9 interleaved off/on pairs run, and
    the ratio is the *median of per-pair ratios* — a noise burst that
    straddles one pair inflates both sides of that pair and cancels,
    while the min-of-mins estimator it replaces needs only one quiet
    pass on one side to report a phantom regression.
    ``off_seconds``/``on_seconds`` remain the best single passes, for
    trend inspection.
    """
    allocator = static_allocator(8)
    off_best = float("inf")
    on_best = float("inf")
    pair_ratios = []
    identical = True
    events = 0
    for _ in range(max(repeats, 9)):
        gc.collect()
        start = time.perf_counter()
        untraced = FleetEngine(
            workload, capacity=capacity, allocator=allocator
        ).serve(stream)
        off_seconds = time.perf_counter() - start
        tracer = RingBufferTracer()
        gc.collect()
        start = time.perf_counter()
        traced = FleetEngine(
            workload, capacity=capacity, allocator=allocator, tracer=tracer
        ).serve(stream)
        on_seconds = time.perf_counter() - start
        off_best = min(off_best, off_seconds)
        on_best = min(on_best, on_seconds)
        pair_ratios.append(on_seconds / off_seconds)
        events = len(tracer)
        identical = identical and (
            traced.records == untraced.records
            and traced.pool_skyline.points == untraced.pool_skyline.points
            and traced.summary() == untraced.summary()
        )
    return {
        "off_seconds": round(off_best, 4),
        "on_seconds": round(on_best, 4),
        "ratio": round(statistics.median(pair_ratios), 3),
        "events": int(events),
        "traced_bit_identical": bool(identical),
    }


def summarize(metrics):
    return {
        "p50_latency_s": round(float(metrics.p50_latency), 3),
        "p95_latency_s": round(float(metrics.p95_latency), 3),
        "p99_latency_s": round(float(metrics.p99_latency), 3),
        "mean_queue_delay_s": round(float(metrics.mean_queue_delay), 3),
        "makespan_s": round(float(metrics.makespan), 3),
        "utilization": round(float(metrics.utilization()), 4),
        "total_dollar_cost": round(float(metrics.total_dollar_cost), 4),
        "provisioned_dollar_cost": round(float(metrics.provisioned_dollar_cost), 4),
        "idle_capacity_seconds": round(float(metrics.idle_capacity_seconds), 1),
        "capacity_respected": bool(metrics.capacity_respected),
    }


def run_scenarios(workload, system, args):
    """The rate sweep: static single pool vs autoscaled sharded fleet."""
    autoscaler = AutoscalerConfig(
        min_capacity=args.pool_min,
        max_capacity=args.pool_max,
        scale_up_step=8,
        scale_down_step=8,
        scale_up_lag_s=15.0,
        scale_down_cooldown_s=30.0,
        queue_delay_threshold_s=3.0,
        low_utilization=0.5,
    )
    scenarios = []
    for rate in args.rates:
        arrivals = poisson_arrivals(
            list(workload), args.arrivals, rate, seed=args.seed
        )
        # Fresh prediction services so both systems pay the same cache
        # warm-up on the same stream.
        static_service = PredictionService.from_autoexecutor(system)
        static_metrics = FleetEngine(
            workload,
            capacity=args.static_capacity,
            allocator=static_service.allocate,
        ).serve(arrivals)
        sharded_service = PredictionService.from_autoexecutor(system)
        sharded_metrics = ShardedFleet(
            workload,
            [
                PoolSpec(capacity=args.pool_min, autoscaler=autoscaler)
                for _ in range(args.pools)
            ],
            sharded_service.allocate,
            router=CostAwareRouter(),
        ).serve(arrivals)
        scenarios.append(
            {
                "rate_qps": rate,
                "static_single_pool": summarize(static_metrics),
                "sharded_autoscaled": summarize(sharded_metrics),
            }
        )
    return scenarios


def run(args):
    cluster = Cluster()
    query_ids = DEFAULT_QUERY_IDS[: args.queries]
    workload = Workload(scale_factor=100, query_ids=query_ids)

    print(f"fleet bench: {len(query_ids)} TPC-DS plans, {args.arrivals} arrivals")
    print("checking sharded-of-one parity ...")
    parity_stream = poisson_arrivals(list(workload), 48, 1.0, seed=args.seed)
    parity_checked, parity_identical = check_sharded_parity(
        workload, cluster, parity_stream
    )

    print("checking zero-fault parity ...")
    zero_fault_identical = check_zero_fault_parity(
        workload, parity_stream, args.static_capacity
    )

    print("measuring cluster-layer overhead ...")
    overhead_stream = poisson_arrivals(
        list(workload), args.arrivals, 1.0, seed=args.seed
    )
    fleet_seconds, sharded_seconds = measure_overhead(
        workload, overhead_stream, args.static_capacity, args.repeats
    )
    ratio = sharded_seconds / fleet_seconds

    print("measuring tracing on/off overhead ...")
    tracing = measure_tracing(
        workload, overhead_stream, args.static_capacity, args.repeats
    )

    if args.trace_out:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        with JsonlTracer(trace_path) as tracer:
            ShardedFleet(
                workload, [args.static_capacity], static_allocator(8), tracer=tracer
            ).serve(parity_stream)
            print(f"wrote {tracer.events_written} trace events to {trace_path}")

    print("training AutoExecutor for the rate sweep ...")
    system = AutoExecutor(family="power_law").train(workload, cluster)
    print("running rate-sweep scenarios ...")
    scenarios = run_scenarios(workload, system, args)
    print("running spot-vs-on-demand fault sweep ...")
    faults = run_fault_sweep(workload, system, args)

    # The gated spot entry is the market's base (lowest) reclamation
    # rate; the rest of the sweep documents where churn eats the
    # discount.
    base_spot = faults["sweep"][0]
    peak = scenarios[-1]
    wins = {
        "p95_at_peak": bool(
            peak["sharded_autoscaled"]["p95_latency_s"]
            < peak["static_single_pool"]["p95_latency_s"]
        ),
        "cost_at_peak": bool(
            peak["sharded_autoscaled"]["provisioned_dollar_cost"]
            < peak["static_single_pool"]["provisioned_dollar_cost"]
        ),
        "spot_at_matched_p95": bool(
            base_spot["cost_win"] and base_spot["matched_p95"]
        ),
    }

    result = {
        "schema": SCHEMA,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "params": {
            "scale_factor": 100,
            "queries": list(query_ids),
            "arrivals": args.arrivals,
            "rates": list(args.rates),
            "static_capacity": args.static_capacity,
            "pools": args.pools,
            "pool_min": args.pool_min,
            "pool_max": args.pool_max,
            "seed": args.seed,
            "repeats": args.repeats,
            "fault_rate_qps": args.fault_rate_qps,
            "spot_reclaim_rates": list(args.spot_reclaim_rates),
            "spot_discount": args.spot_discount,
            "spot_p95_tolerance": args.spot_p95_tolerance,
        },
        "parity": {
            "checked_plans": parity_checked,
            "bit_identical": bool(parity_identical),
            "zero_fault_bit_identical": bool(zero_fault_identical),
        },
        "overhead": {
            "fleet_seconds": round(fleet_seconds, 4),
            "sharded_seconds": round(sharded_seconds, 4),
            "ratio": round(ratio, 3),
        },
        "tracing": tracing,
        "scenarios": scenarios,
        "faults": faults,
        "wins": wins,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(f"parity: {parity_checked} checks, bit_identical={parity_identical}")
    print(f"zero-fault parity: bit_identical={zero_fault_identical}")
    print(
        f"overhead: fleet {fleet_seconds:.3f}s vs sharded {sharded_seconds:.3f}s "
        f"(ratio {ratio:.2f}x)"
    )
    print(
        f"tracing: off {tracing['off_seconds']:.3f}s vs on "
        f"{tracing['on_seconds']:.3f}s (ratio {tracing['ratio']:.2f}x, "
        f"{tracing['events']} events, "
        f"bit_identical={tracing['traced_bit_identical']})"
    )
    for scenario in scenarios:
        static = scenario["static_single_pool"]
        sharded = scenario["sharded_autoscaled"]
        print(
            f"rate {scenario['rate_qps']:.2f} qps: "
            f"p95 {static['p95_latency_s']:8.1f}s -> {sharded['p95_latency_s']:8.1f}s, "
            f"provisioned ${static['provisioned_dollar_cost']:7.2f} -> "
            f"${sharded['provisioned_dollar_cost']:7.2f}"
        )
    ondemand = faults["on_demand"]
    print(
        f"on-demand: p95 {ondemand['p95_latency_s']:8.1f}s, "
        f"${ondemand['total_dollar_cost']:7.2f}"
    )
    for entry in faults["sweep"]:
        spot = entry["spot"]
        print(
            f"spot reclaim 1/{1.0 / entry['reclaim_rate_per_s']:.0f}s: "
            f"p95 {spot['p95_latency_s']:8.1f}s, "
            f"${spot['total_dollar_cost']:7.2f}, "
            f"{spot['task_retries']} retries, "
            f"cost_win={entry['cost_win']} matched_p95={entry['matched_p95']}"
        )
    print(
        f"wins: p95={wins['p95_at_peak']} cost={wins['cost_at_peak']} "
        f"spot={wins['spot_at_matched_p95']}"
    )
    print(f"wrote {out}")
    invariants_ok = all(
        scenario[side]["capacity_respected"]
        for scenario in scenarios
        for side in ("static_single_pool", "sharded_autoscaled")
    ) and all(entry["spot"]["capacity_respected"] for entry in faults["sweep"])
    if not invariants_ok:
        print("capacity invariant VIOLATED in a scenario", file=sys.stderr)
    ok = (
        parity_identical
        and zero_fault_identical
        and tracing["traced_bit_identical"]
        and all(wins.values())
        and invariants_ok
    )
    return 0 if ok else 1


def main(argv=None):
    default_out = REPO_ROOT / "benchmarks" / "perf" / "output" / "BENCH_fleet.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(default_out), help="output JSON path")
    parser.add_argument(
        "--trace-out",
        default=None,
        help="also write a JSONL trace of the contended parity stream "
        "(one repro.obs.TraceEvent per line; load with "
        "repro.obs.read_jsonl / TraceAnalyzer)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=len(DEFAULT_QUERY_IDS),
        help="number of TPC-DS queries in the workload (default: all 16)",
    )
    parser.add_argument(
        "--arrivals", type=int, default=96, help="stream length per scenario"
    )
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.2, 0.4, 0.6],
        help="arrival rates to sweep (qps), ascending; the last gates. "
        "The default band brackets the static pool's saturation point: "
        "past it both systems are in pure backlog drain, where a "
        "pay-for-provisioned bill converges to total work and the "
        "comparison measures nothing",
    )
    parser.add_argument(
        "--static-capacity",
        type=int,
        default=96,
        help="the statically provisioned single pool's size",
    )
    parser.add_argument("--pools", type=int, default=4, help="sharded pool count")
    parser.add_argument(
        "--pool-min", type=int, default=8, help="autoscaler floor per pool"
    )
    parser.add_argument(
        "--pool-max", type=int, default=48, help="autoscaler ceiling per pool"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream RNG seed")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="overhead timing repeats; the fastest pass is reported",
    )
    parser.add_argument(
        "--fault-rate-qps",
        type=float,
        default=0.3,
        help="arrival rate of the spot-vs-on-demand stream (below the "
        "pool's saturation point so retries show up in p95, not in a "
        "backlog drain)",
    )
    parser.add_argument(
        "--spot-reclaim-rates",
        type=float,
        nargs="+",
        default=[1.0 / 1200.0, 1.0 / 300.0, 1.0 / 60.0],
        help="reclamation hazards (per spot executor-second) to sweep, "
        "ascending; the first is the gated market rate, the tail shows "
        "where churn breaks the matched-p95 bar.  Expected attempts per "
        "task grow like e^(hazard x duration), so hazards near the "
        "longest task durations make the run astronomically long",
    )
    parser.add_argument(
        "--spot-discount",
        type=float,
        default=0.35,
        help="spot price as a fraction of the on-demand price",
    )
    parser.add_argument(
        "--spot-p95-tolerance",
        type=float,
        default=1.05,
        help="matched-latency bar: spot p95 must stay within this factor "
        "of the on-demand p95 for the cost win to count",
    )
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

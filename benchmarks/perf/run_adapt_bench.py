#!/usr/bin/env python
"""Continual-learning benchmark: adaptive vs frozen serving across a
mid-stream input-size shift.

The paper's input-size-change scenario (fig. 14; reproduced in
``benchmarks/test_fig14_input_size_change.py``) is the motivating
failure for ``repro.fleet.adaptive``: the model is trained on one input
regime and the regime changes mid-stream.  This bench serves the same
shifted arrival stream twice, on the same contended pool:

1. **frozen** — the paper's deployment: a ``PredictionService`` wrapping
   the offline model, never updated.  Trained on the large-input regime,
   it keeps over-provisioning once the stream shifts to small inputs —
   paying for executors the queries cannot use *and* starving the
   admission queue, so both the dollar bill and the p95 suffer;
2. **adaptive** — the same service with an ``AdaptiveController``
   attached (``FleetConfig.feedback``): finished-query outcomes fill the
   replay buffer, the drift detector raises its alarm once post-shift
   errors dominate its window, retraining fits a candidate on the
   buffer, and shadow validation promotes it behind the service.  Every
   retraining pass is billed into ``total_dollar_cost`` (the modeled
   executor-second cost per training point), so the comparison charges
   adaptation for what it costs.

Checks recorded for the CI gate (``compare.py``):

- **wins** — the adaptive serve must beat the frozen serve on p95
  latency AND on total dollar cost, retraining bill included;
- **drift** — at least one ``drift_alarm`` must fire, and the first
  alarm must land *after* the shift (the in-regime prefix must not
  trip it);
- **zero-retrain parity** — a controller whose thresholds can never
  trigger must serve the stream bit-identically to no controller at
  all (records with the measured ``prediction_seconds`` zeroed,
  skyline, and the frozen summary key set): observing costs nothing.

Both serves run with ``charge_prediction_overhead=False`` so every
reported number is simulation-clock deterministic: same seed, same
stream, same machine-independent result.  The result is written as
``BENCH_adapt.json`` (schema ``repro-bench-adapt/v1``); CI uploads it
as an artifact and gates against the checked-in ``baseline_adapt.json``
via ``compare.py``.

Run from the repository root:

    python benchmarks/perf/run_adapt_bench.py
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.autoexecutor import AutoExecutor  # noqa: E402
from repro.fleet.adaptive import AdaptiveConfig, AdaptiveController  # noqa: E402
from repro.fleet.arrivals import QueryArrival  # noqa: E402
from repro.fleet.engine import FleetConfig, FleetEngine  # noqa: E402
from repro.fleet.prediction import PredictionService  # noqa: E402
from repro.obs import RingBufferTracer  # noqa: E402
from repro.workloads.generator import Workload  # noqa: E402

SCHEMA = "repro-bench-adapt/v1"

# A size-diverse TPC-DS slice (subset of the fleet bench's).
DEFAULT_QUERY_IDS = tuple("q1 q3 q5 q9 q17 q25 q82 q94".split())

#: The shifted stream marks post-shift queries with this id prefix.
SHIFT_PREFIX = "small:"


class ShiftedWorkload:
    """One workload before the shift, another after.

    Query ids carrying :data:`SHIFT_PREFIX` route to the post-shift
    regime; everything else routes to the regime the model was trained
    on.  Duck-typed like every fleet workload: ``optimized_plan`` +
    ``stage_graph``.
    """

    def __init__(self, pre: Workload, post: Workload) -> None:
        self.pre = pre
        self.post = post

    def _route(self, query_id):
        if query_id.startswith(SHIFT_PREFIX):
            return self.post, query_id[len(SHIFT_PREFIX):]
        return self.pre, query_id

    def optimized_plan(self, query_id):
        workload, qid = self._route(query_id)
        return workload.optimized_plan(qid)

    def stage_graph(self, query_id):
        workload, qid = self._route(query_id)
        return workload.stage_graph(qid)


def shifted_arrivals(query_ids, n_pre, n_post, rate_pre, rate_post, seed):
    """A Poisson stream whose input regime shifts after ``n_pre``.

    The pre-shift phase arrives slowly (big queries, long runs); the
    post-shift phase arrives at the rate the right-sized fleet can
    absorb but the over-provisioned one cannot.  Returns the stream and
    the shift instant (the first post-shift arrival time).
    """
    rng = np.random.default_rng(seed)
    arrivals, t = [], 0.0
    for i in range(n_pre + n_post):
        rate = rate_pre if i < n_pre else rate_post
        if i:
            t += float(rng.exponential(1.0 / rate))
        qid = query_ids[int(rng.integers(0, len(query_ids)))]
        if i >= n_pre:
            qid = SHIFT_PREFIX + qid
        arrivals.append(QueryArrival(i, qid, int(rng.integers(0, 4)), t))
    return arrivals, arrivals[n_pre].arrival_time


def stable_records(metrics):
    """Records with the one wall-clock field zeroed (measured overhead)."""
    return [replace(r, prediction_seconds=0.0) for r in metrics.records]


def adaptive_config(args, **overrides):
    knobs = dict(
        seed=args.seed,
        buffer_capacity=args.buffer_capacity,
        min_retrain_points=args.min_retrain_points,
        drift_window=args.drift_window,
        drift_threshold=args.drift_threshold,
        shadow_window=args.shadow_window,
        n_estimators=args.n_estimators,
    )
    knobs.update(overrides)
    return AdaptiveConfig(**knobs)


def check_zero_retrain_parity(workload, system, arrivals, args):
    """An inert controller must serve bit-identically to none at all."""
    config = FleetConfig(record_logs=True, charge_prediction_overhead=False)
    frozen = PredictionService.from_autoexecutor(system)
    reference = FleetEngine(
        workload, capacity=args.capacity, allocator=frozen.allocate, config=config
    ).serve(arrivals)

    service = PredictionService.from_autoexecutor(system)
    inert = AdaptiveController(
        service,
        adaptive_config(args, drift_threshold=1e9, min_retrain_points=10**6),
    )
    candidate = FleetEngine(
        workload,
        capacity=args.capacity,
        allocator=service.allocate,
        config=replace(config, feedback=inert),
    ).serve(arrivals)

    ref_summary = reference.summary()
    cand_summary = candidate.summary()
    return bool(
        stable_records(candidate) == stable_records(reference)
        and candidate.pool_skyline.points == reference.pool_skyline.points
        and {k: cand_summary[k] for k in ref_summary} == ref_summary
        and inert.retrains == 0
        and service.generation == 0
    )


def summarize(metrics):
    return {
        "p50_latency_s": round(float(metrics.p50_latency), 3),
        "p95_latency_s": round(float(metrics.p95_latency), 3),
        "p99_latency_s": round(float(metrics.p99_latency), 3),
        "mean_queue_delay_s": round(float(metrics.mean_queue_delay), 3),
        "makespan_s": round(float(metrics.makespan), 3),
        "utilization": round(float(metrics.utilization()), 4),
        "total_executor_seconds": round(float(metrics.total_executor_seconds), 1),
        "total_dollar_cost": round(float(metrics.total_dollar_cost), 4),
        "capacity_respected": bool(metrics.capacity_respected),
    }


def run(args):
    query_ids = DEFAULT_QUERY_IDS[: args.queries]
    pre = Workload(scale_factor=args.pre_scale_factor, query_ids=query_ids)
    post = Workload(scale_factor=args.post_scale_factor, query_ids=query_ids)
    workload = ShiftedWorkload(pre, post)

    print(
        f"adapt bench: {len(query_ids)} TPC-DS plans, "
        f"SF={args.pre_scale_factor} -> SF={args.post_scale_factor}, "
        f"{args.n_pre}+{args.n_post} arrivals"
    )
    arrivals, shift_time = shifted_arrivals(
        query_ids, args.n_pre, args.n_post, args.rate_pre, args.rate_post,
        args.seed,
    )
    print(f"training AutoExecutor on the SF={args.pre_scale_factor} regime ...")
    system = AutoExecutor(family="power_law").train(pre)

    print("checking zero-retrain parity ...")
    zero_retrain = check_zero_retrain_parity(workload, system, arrivals, args)

    config = FleetConfig(record_logs=True, charge_prediction_overhead=False)

    print("serving frozen ...")
    frozen_service = PredictionService.from_autoexecutor(system)
    frozen = FleetEngine(
        workload,
        capacity=args.capacity,
        allocator=frozen_service.allocate,
        config=config,
    ).serve(arrivals)

    print("serving adaptive ...")
    tracer = RingBufferTracer()
    service = PredictionService.from_autoexecutor(system)
    controller = AdaptiveController(service, adaptive_config(args), tracer=tracer)
    adaptive = FleetEngine(
        workload,
        capacity=args.capacity,
        allocator=service.allocate,
        config=replace(config, feedback=controller),
    ).serve(arrivals)

    stats = adaptive.adaptive
    adaptive_summary = adaptive.summary()
    frozen_summary = frozen.summary()
    alarm_times = [e.time for e in tracer.events if e.kind == "drift_alarm"]
    first_alarm = alarm_times[0] if alarm_times else None
    drift = {
        "alarms": int(stats.drift_alarms),
        "shift_time_s": round(float(shift_time), 3),
        "first_alarm_time_s": (
            None if first_alarm is None else round(float(first_alarm), 3)
        ),
        "fired_after_shift": bool(
            first_alarm is not None and first_alarm > shift_time
        ),
    }
    wins = {
        "p95": bool(
            adaptive_summary["p95_latency_s"] < frozen_summary["p95_latency_s"]
        ),
        "cost": bool(
            adaptive_summary["total_dollar_cost"]
            < frozen_summary["total_dollar_cost"]
        ),
    }
    improvement = {
        # Frozen-over-adaptive ratios: >1 means adaptation helped.  Both
        # serves are simulation-clock deterministic, so these gate
        # exactly, not as hardware-normalized noise.
        "p95_ratio": round(
            frozen_summary["p95_latency_s"] / adaptive_summary["p95_latency_s"], 4
        ),
        "cost_ratio": round(
            frozen_summary["total_dollar_cost"]
            / adaptive_summary["total_dollar_cost"],
            4,
        ),
    }

    result = {
        "schema": SCHEMA,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "params": {
            "queries": list(query_ids),
            "pre_scale_factor": args.pre_scale_factor,
            "post_scale_factor": args.post_scale_factor,
            "n_pre": args.n_pre,
            "n_post": args.n_post,
            "rate_pre": args.rate_pre,
            "rate_post": args.rate_post,
            "capacity": args.capacity,
            "seed": args.seed,
            "buffer_capacity": args.buffer_capacity,
            "min_retrain_points": args.min_retrain_points,
            "drift_window": args.drift_window,
            "drift_threshold": args.drift_threshold,
            "shadow_window": args.shadow_window,
            "n_estimators": args.n_estimators,
        },
        "frozen": summarize(frozen),
        "adaptive": {
            **summarize(adaptive),
            "drift_alarms": int(stats.drift_alarms),
            "retrains": int(stats.retrains),
            "promotions": int(stats.promotions),
            "rejections": int(stats.rejections),
            "model_generation": int(stats.model_generation),
            "retrain_points": int(stats.retrain_points),
            "retrain_executor_seconds": round(
                float(stats.retrain_executor_seconds), 1
            ),
            "retrain_dollar_cost": round(
                float(adaptive_summary["retrain_dollar_cost"]), 4
            ),
        },
        "drift": drift,
        "improvement": improvement,
        "wins": wins,
        "parity": {"zero_retrain_bit_identical": zero_retrain},
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(f"zero-retrain parity: bit_identical={zero_retrain}")
    print(
        f"p95: frozen {frozen_summary['p95_latency_s']:8.1f}s -> adaptive "
        f"{adaptive_summary['p95_latency_s']:8.1f}s "
        f"({improvement['p95_ratio']:.2f}x)"
    )
    print(
        f"cost: frozen ${frozen_summary['total_dollar_cost']:7.2f} -> adaptive "
        f"${adaptive_summary['total_dollar_cost']:7.2f} "
        f"({improvement['cost_ratio']:.2f}x, retrain bill "
        f"${result['adaptive']['retrain_dollar_cost']:.2f} included)"
    )
    print(
        f"loop: {stats.drift_alarms} alarms, {stats.retrains} retrains "
        f"({stats.promotions} promoted, {stats.rejections} rejected), "
        f"generation {stats.model_generation}"
    )
    print(
        f"drift: shift at t={drift['shift_time_s']}s, first alarm at "
        f"t={drift['first_alarm_time_s']}s "
        f"(fired_after_shift={drift['fired_after_shift']})"
    )
    print(f"wins: p95={wins['p95']} cost={wins['cost']}")
    print(f"wrote {out}")
    ok = (
        zero_retrain
        and all(wins.values())
        and drift["fired_after_shift"]
        and result["frozen"]["capacity_respected"]
        and result["adaptive"]["capacity_respected"]
    )
    return 0 if ok else 1


def main(argv=None):
    default_out = REPO_ROOT / "benchmarks" / "perf" / "output" / "BENCH_adapt.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(default_out), help="output JSON path")
    parser.add_argument(
        "--queries",
        type=int,
        default=len(DEFAULT_QUERY_IDS),
        help="number of TPC-DS queries in the workload (default: all 8)",
    )
    parser.add_argument(
        "--pre-scale-factor",
        type=int,
        default=100,
        help="input scale the model is trained on (the pre-shift regime)",
    )
    parser.add_argument(
        "--post-scale-factor",
        type=int,
        default=10,
        help="input scale the stream shifts to mid-serve",
    )
    parser.add_argument(
        "--n-pre", type=int, default=24, help="arrivals before the shift"
    )
    parser.add_argument(
        "--n-post", type=int, default=120, help="arrivals after the shift"
    )
    parser.add_argument(
        "--rate-pre",
        type=float,
        default=0.08,
        help="pre-shift arrival rate (qps): big queries, slow stream",
    )
    parser.add_argument(
        "--rate-post",
        type=float,
        default=0.5,
        help="post-shift arrival rate (qps): the load a right-sized "
        "fleet absorbs but an over-provisioned one queues on",
    )
    parser.add_argument(
        "--capacity", type=int, default=48, help="the shared pool's size"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream + reservoir seed")
    parser.add_argument("--buffer-capacity", type=int, default=128)
    parser.add_argument("--min-retrain-points", type=int, default=16)
    parser.add_argument("--drift-window", type=int, default=12)
    parser.add_argument("--drift-threshold", type=float, default=0.5)
    parser.add_argument("--shadow-window", type=int, default=10)
    parser.add_argument(
        "--n-estimators",
        type=int,
        default=24,
        help="forest size for retrained candidates (smaller than the "
        "offline 100: online cadence beats a few extra trees)",
    )
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Serving load test: thousands of live HTTP requests against the budget.

The serving layer (:mod:`repro.serve`) promises four things the unit
tests can only spot-check at small scale; this benchmark holds it to
them under sustained concurrent load, end to end through real sockets:

1. **latency** — a closed-loop fleet of keep-alive clients replays a
   fleet-generated Poisson arrival mix (recurring queries included, so
   the memo cache participates exactly as in production) and the
   client-observed p99 must stay inside the checked-in budget
   (``--p99-budget-ms``);
2. **batching** — under that concurrency the micro-batcher must
   actually coalesce: the server-reported mean batch size must exceed
   1 (otherwise the batching layer is dead weight and every inference
   pays its own dispatch);
3. **fidelity** — every recommendation served over HTTP must be
   byte-identical to a direct
   :meth:`~repro.export.runtime.PortablePPMScorer.predict_ppm_batch`
   call plus elbow selection over the same exported model (JSON float
   round-trips are exact, so strict equality is the right check);
4. **robustness** — every request is answered 200: no sheds, timeouts,
   or connection errors at the benchmarked rate.

The result is written as ``BENCH_serve.json`` (schema
``repro-bench-serve/v1``, documented in ``benchmarks/perf/README.md``);
CI uploads it as an artifact and gates regressions against the
checked-in ``baseline_serve.json`` via ``compare.py``.

Run from the repository root:

    python benchmarks/perf/run_serve_bench.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.features import FEATURE_NAMES  # noqa: E402
from repro.core.selection import elbow_point  # noqa: E402
from repro.core.training import DEFAULT_N_GRID  # noqa: E402
from repro.export.format import save_model_file  # noqa: E402
from repro.export.runtime import (  # noqa: E402
    PortableModelRuntime,
    PortablePPMScorer,
)
from repro.fleet.arrivals import poisson_arrivals  # noqa: E402
from repro.ml.forest import RandomForestRegressor  # noqa: E402
from repro.serve import (  # noqa: E402
    RecommendApp,
    RecommendationServer,
    ServeClient,
    ServerConfig,
)

SCHEMA = "repro-bench-serve/v1"


def build_registry(root: Path, seed: int) -> None:
    """Export a deterministic power-law forest into ``root``.

    Same recipe as the serving test fixtures: random features, random
    (a, b, m) parameter targets — ``from_parameters`` clamps, so every
    raw forest output builds a valid PPM.  Deterministic given the seed.
    """
    rng = np.random.default_rng(seed)
    X = rng.random((120, len(FEATURE_NAMES)))
    Y = np.column_stack(
        [
            -np.abs(rng.random(120)) - 0.1,
            np.abs(rng.random(120)) * 50 + 10,
            np.abs(rng.random(120)) * 2,
        ]
    )
    forest = RandomForestRegressor(n_estimators=8, random_state=0).fit(X, Y)
    save_model_file(
        forest, root / "ae_pl.json", metadata={"family": "power_law"}
    )


def build_traffic(args):
    """The request mix: a Poisson arrival stream over recurring queries.

    Returns ``(order, features_by_query)``: the arrival-ordered list of
    query ids and each distinct query's feature vector.  Recurrence is
    what exercises the memo cache — ``distinct_queries`` shapes spread
    over ``n_requests`` arrivals.
    """
    rng = np.random.default_rng(args.seed + 1)
    query_ids = [f"q{i:03d}" for i in range(args.distinct_queries)]
    features_by_query = {
        qid: [float(v) for v in rng.random(len(FEATURE_NAMES))]
        for qid in query_ids
    }
    arrivals = poisson_arrivals(
        query_ids,
        n_queries=args.n_requests,
        rate_qps=args.rate_qps,
        seed=args.seed,
    )
    return [a.query_id for a in arrivals], features_by_query


def reference_answers(registry_dir, features_by_query):
    """The fidelity oracle: direct batch scoring + elbow selection.

    One ``predict_ppm_batch`` call over every distinct query's features,
    then the same selection the service applies (elbow over the default
    grid, clamped to [1, 48]).
    """
    scorer = PortablePPMScorer(PortableModelRuntime(registry_dir), "ae_pl")
    query_ids = sorted(features_by_query)
    matrix = np.array([features_by_query[q] for q in query_ids])
    ppms = scorer.predict_ppm_batch(matrix)
    answers = {}
    for qid, ppm in zip(query_ids, ppms):
        curve = ppm.predict_curve(DEFAULT_N_GRID)
        chosen = int(np.clip(elbow_point(DEFAULT_N_GRID, curve), 1, 48))
        runtime = float(curve[np.nonzero(DEFAULT_N_GRID == chosen)[0][0]])
        answers[qid] = (chosen, runtime)
    return answers


async def drive_load(host, port, order, features_by_query, concurrency):
    """Closed-loop workers over keep-alive connections.

    Each worker owns one connection and pulls the next arrival off the
    shared order; per-request latency is measured client-side, around
    the full request/response round trip.
    """
    cursor = iter(enumerate(order))
    latencies = [0.0] * len(order)
    responses: list = [None] * len(order)

    async def worker():
        async with ServeClient(host, port) as client:
            for index, query_id in cursor:
                payload = {
                    "features": features_by_query[query_id],
                    "query_id": query_id,
                }
                start = time.perf_counter()
                reply = await client.post_json("/v1/recommend", payload)
                latencies[index] = time.perf_counter() - start
                responses[index] = (reply.status, reply.json())

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return latencies, responses


async def run_serve(registry_dir, order, features_by_query, args):
    """Start the server, drive the load, snapshot /metrics, drain."""
    app = RecommendApp.from_registry(
        registry_dir,
        "ae_pl",
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1e3,
    )
    server = RecommendationServer(
        app, ServerConfig(port=0, request_timeout_s=args.timeout_ms / 1e3)
    )
    await server.start()
    host, port = server.address
    try:
        start = time.perf_counter()
        latencies, responses = await drive_load(
            host, port, order, features_by_query, args.concurrency
        )
        wall = time.perf_counter() - start
        async with ServeClient(host, port) as client:
            metrics = (await client.get("/metrics")).json()
    finally:
        await server.shutdown()
    return wall, latencies, responses, metrics


def summarize(wall, latencies, responses, metrics, reference, args):
    ms = np.sort(np.asarray(latencies)) * 1e3
    n_ok = sum(1 for status, _ in responses if status == 200)
    p99 = float(np.percentile(ms, 99))

    mismatches = 0
    for status, body in responses:
        if status != 200:
            continue
        chosen, runtime = reference[body["query_id"]]
        if (
            body["executors"] != chosen
            or body["estimated_runtime_s"] != runtime
        ):
            mismatches += 1

    batch = metrics["batch"]
    prediction = metrics["prediction"]
    return {
        "serve": {
            "n_requests": len(responses),
            "n_ok": n_ok,
            "errors": len(responses) - n_ok,
            "wall_seconds": round(wall, 3),
            "throughput_rps": round(len(responses) / wall, 1),
            "p50_ms": round(float(np.percentile(ms, 50)), 3),
            "p95_ms": round(float(np.percentile(ms, 95)), 3),
            "p99_ms": round(p99, 3),
            "max_ms": round(float(ms[-1]), 3),
            "p99_budget_ms": args.p99_budget_ms,
            "under_p99_budget": bool(p99 <= args.p99_budget_ms),
        },
        "batch": {
            "batches": batch["batches"],
            "items": batch["items"],
            "mean_size": round(batch["mean_size"], 3),
            "peak_size": batch["peak_size"],
            "batching_active": bool(batch["mean_size"] > 1.0),
        },
        "cache": {
            "hits": prediction["hits"],
            "misses": prediction["misses"],
            "hit_rate": round(prediction["hit_rate"], 4),
            "batched": prediction["batched"],
        },
        "parity": {
            "n_checked": n_ok,
            "mismatches": mismatches,
            "bit_identical": bool(mismatches == 0 and n_ok == len(responses)),
        },
    }


def run(args) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        registry_dir = Path(tmp)
        build_registry(registry_dir, args.seed)
        order, features_by_query = build_traffic(args)
        reference = reference_answers(registry_dir, features_by_query)

        print(
            f"serve: {args.n_requests:,} requests, "
            f"{args.distinct_queries} distinct queries, "
            f"{args.concurrency} concurrent clients ..."
        )
        wall, latencies, responses, metrics = asyncio.run(
            run_serve(registry_dir, order, features_by_query, args)
        )

    result_body = summarize(
        wall, latencies, responses, metrics, reference, args
    )
    serve, batch = result_body["serve"], result_body["batch"]
    parity = result_body["parity"]
    print(
        f"  {serve['wall_seconds']}s wall, {serve['throughput_rps']:,} req/s, "
        f"p99 {serve['p99_ms']}ms (budget {serve['p99_budget_ms']}ms)"
    )
    print(
        f"  batching: mean size {batch['mean_size']} over "
        f"{batch['batches']} batches (peak {batch['peak_size']}); "
        f"cache hit rate {result_body['cache']['hit_rate']}"
    )
    print(
        f"  parity: {parity['mismatches']} mismatches in "
        f"{parity['n_checked']} responses"
    )

    result = {
        "schema": SCHEMA,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "params": {
            "n_requests": args.n_requests,
            "distinct_queries": args.distinct_queries,
            "concurrency": args.concurrency,
            "rate_qps": args.rate_qps,
            "max_batch_size": args.max_batch_size,
            "max_wait_ms": args.max_wait_ms,
            "timeout_ms": args.timeout_ms,
            "p99_budget_ms": args.p99_budget_ms,
            "seed": args.seed,
        },
        **result_body,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    ok = (
        serve["errors"] == 0
        and serve["n_requests"] >= 1000
        and serve["under_p99_budget"]
        and batch["batching_active"]
        and parity["bit_identical"]
    )
    return 0 if ok else 1


def main(argv=None):
    default_out = REPO_ROOT / "benchmarks" / "perf" / "output" / "BENCH_serve.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(default_out), help="output JSON path")
    parser.add_argument(
        "--n-requests",
        type=int,
        default=2000,
        help="total requests driven through the live server",
    )
    parser.add_argument(
        "--distinct-queries",
        type=int,
        default=50,
        help="distinct query shapes in the mix (recurrence feeds the cache)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=32,
        help="closed-loop client connections",
    )
    parser.add_argument(
        "--rate-qps",
        type=float,
        default=500.0,
        help="Poisson rate of the generated arrival mix (shapes recurrence "
        "order only; the closed loop drives as fast as the server answers)",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="server-side cap on coalesced requests per inference",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="server-side micro-batching window",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=5000.0,
        help="server-side per-request deadline",
    )
    parser.add_argument(
        "--p99-budget-ms",
        type=float,
        default=250.0,
        help="client-observed p99 latency budget (the checked-in gate)",
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic/model seed")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark-regression gate for CI.

Compares a fresh benchmark JSON against its checked-in baseline and
exits non-zero on regression.  Two schemas are understood (baseline and
candidate must carry the same one):

``repro-bench-sweep/v2`` (from ``run_bench.py``):

- **relative throughput** — the sweep/loop *speedup* ratio is
  hardware-normalized (both passes run on the same machine), so it is
  the gated quantity: a candidate speedup more than ``--max-regression``
  below the baseline's fails the build;
- **absolute floor** — the speedup must also clear ``--min-speedup``
  (the repository's acceptance bar of 5x over the event loop);
- **exactness** — the run's sweep-vs-loop bit-identity check must hold;
- **parity** — the run's fleet-of-one vs ``simulate_query`` bit-identity
  check (the shared execution core's contract) must hold.

``repro-bench-fleet/v3`` (from ``run_fleet_bench.py``):

- **parity** — the run's sharded-of-one vs ``FleetEngine.serve``
  bit-identity check (the cluster layer's contract) must hold;
- **zero-fault parity** — serving under an inert ``FaultPlan`` (every
  rate zero) must reproduce the unperturbed engine bit-for-bit (the
  fault layer's contract);
- **wins** — at the highest arrival rate, cost-aware routing +
  autoscaling must beat static single-pool provisioning on p95 latency
  and on provisioned dollar cost; and at the market's base reclamation
  rate, spot capacity + task retries must beat all-on-demand on total
  dollar cost while holding p95 within the matched-latency tolerance;
- **overhead** — the sharded/fleet wall-clock ratio (hardware-normalized
  the same way the sweep speedup is) must not grow more than
  ``--max-regression`` above the baseline's;
- **tracing** — the observability layer's zero-cost contract: the
  traced serve must reproduce the untraced serve bit-for-bit, and the
  tracing-on/tracing-off wall-clock ratio must stay at or below
  ``--max-trace-overhead`` (default 1.10).

``repro-bench-scale/v1`` (from ``run_scale_bench.py``):

- **memory** — the 1M-query streaming serve's peak RSS and the
  tracemalloc pass's peak Python heap must both stay under the hard
  ceilings the run was invoked with (``under_*_ceiling`` flags);
- **throughput** — simulated queries per wall-clock second must not
  fall more than ``--max-regression`` below the baseline's.  Wall clock
  is *not* hardware-normalized here (there is no same-machine
  reference pass), so CI invokes this schema with a loose
  ``--max-regression`` and the real guard is the memory ceiling;
- **parity** — the streaming serve must agree with the record-based
  serve (exact fields equal, percentiles within the sketch bound), and
  the multiprocess merge must equal the single-process sharded serve
  bit for bit.

``repro-bench-adapt/v1`` (from ``run_adapt_bench.py``):

- **wins** — across the mid-stream input-size shift, the adaptive serve
  must beat the frozen serve on p95 latency AND on total dollar cost
  with the retraining bill included;
- **drift** — at least one ``drift_alarm`` must fire, and the first
  alarm must land after the shift instant (the in-regime prefix of the
  stream must not trip the detector);
- **zero-retrain parity** — an attached controller whose thresholds can
  never trigger must serve bit-identically to no controller at all (the
  feedback hook's observe-without-perturbing contract);
- **margins** — the frozen-over-adaptive improvement ratios (p95 and
  cost) must not fall more than ``--max-regression`` below the
  baseline's.  Both serves are simulation-clock deterministic
  (``charge_prediction_overhead=False``), so these ratios only move
  when code changes behavior — the tolerance absorbs intentional
  retuning, not hardware noise.

``repro-bench-serve/v1`` (from ``run_serve_bench.py``):

- **volume** — at least 1,000 requests must have gone through the live
  HTTP server, all answered 200 (no sheds, timeouts, or errors);
- **latency** — the client-observed p99 must stay under the budget the
  run was invoked with (``under_p99_budget``);
- **batching** — the server-reported mean batch size must exceed 1
  under the benchmark's concurrency (``batching_active``);
- **fidelity** — every served recommendation must equal direct
  ``predict_ppm_batch`` + elbow selection bit-for-bit
  (``parity.bit_identical``);
- **throughput** — requests per wall-clock second must not fall more
  than ``--max-regression`` below the baseline's.  Like the scale
  schema, wall clock is not hardware-normalized, so CI passes a loose
  ``--max-regression`` and the real guards are the budget flags above.

Usage:

    python benchmarks/perf/compare.py \
        --baseline benchmarks/perf/baseline.json \
        --candidate benchmarks/perf/output/BENCH_sweep.json

    python benchmarks/perf/compare.py \
        --baseline benchmarks/perf/baseline_fleet.json \
        --candidate benchmarks/perf/output/BENCH_fleet.json

    python benchmarks/perf/compare.py --max-regression 0.6 \
        --baseline benchmarks/perf/baseline_scale.json \
        --candidate benchmarks/perf/output/BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SWEEP_SCHEMA = "repro-bench-sweep/v2"
FLEET_SCHEMA = "repro-bench-fleet/v3"
SCALE_SCHEMA = "repro-bench-scale/v1"
SERVE_SCHEMA = "repro-bench-serve/v1"
ADAPT_SCHEMA = "repro-bench-adapt/v1"
SCHEMAS = (SWEEP_SCHEMA, FLEET_SCHEMA, SCALE_SCHEMA, SERVE_SCHEMA, ADAPT_SCHEMA)


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") not in SCHEMAS:
        msg = (
            f"{path}: unexpected schema {data.get('schema')!r} "
            f"(want one of {SCHEMAS!r})"
        )
        raise SystemExit(msg)
    return data


def check_params(baseline: dict, candidate: dict) -> bool:
    """Gated quantities are only comparable on the same workload grid;
    "repeats" is a timing knob, not part of the workload."""

    def grid(params: dict) -> dict:
        return {k: v for k, v in params.items() if k != "repeats"}

    if grid(baseline["params"]) != grid(candidate["params"]):
        print("FAIL: bench params drifted from the baseline's", file=sys.stderr)
        print(f"  baseline : {grid(baseline['params'])}", file=sys.stderr)
        print(f"  candidate: {grid(candidate['params'])}", file=sys.stderr)
        print("  regenerate the checked-in baseline", file=sys.stderr)
        return False
    return True


def note_machine_drift(baseline: dict, candidate: dict) -> None:
    if baseline["machine"] != candidate["machine"]:
        # Advisory only: the gated ratios are mostly but not perfectly
        # machine-invariant.  If the gate trips right after an
        # interpreter/runner change, re-anchor the baseline from the CI
        # artifact (see benchmarks/perf/README.md).
        print(f"note: baseline machine {baseline['machine']}")
        print(f"      candidate machine {candidate['machine']}")


def compare_sweep(baseline: dict, candidate: dict, args) -> list[str]:
    base_speedup = float(baseline["speedup"])
    cand_speedup = float(candidate["speedup"])
    threshold = base_speedup * (1.0 - args.max_regression)
    equivalent = bool(candidate["equivalence"]["bit_identical"])
    parity = bool(candidate["parity"]["bit_identical"])

    print(f"baseline  speedup: {base_speedup:6.2f}x  ({args.baseline})")
    print(f"candidate speedup: {cand_speedup:6.2f}x  ({args.candidate})")
    gate_line = (
        f"gate: >= {threshold:.2f}x (baseline - {args.max_regression:.0%}) "
        f"and >= {args.min_speedup:.2f}x floor, bit-identical results, "
        f"fleet-of-one parity"
    )
    print(gate_line)

    failures = []
    if not equivalent:
        failures.append("sweep results no longer match the event loop bit-for-bit")
    if not parity:
        failures.append(
            "fleet-of-one no longer matches simulate_query bit-for-bit "
            "(shared execution core parity lost)"
        )
    if cand_speedup < threshold:
        detail = (
            f"sweep throughput regressed: {cand_speedup:.2f}x < "
            f"{threshold:.2f}x ({args.max_regression:.0%} below baseline "
            f"{base_speedup:.2f}x)"
        )
        failures.append(detail)
    if cand_speedup < args.min_speedup:
        detail = (
            f"sweep speedup {cand_speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x acceptance floor"
        )
        failures.append(detail)
    return failures


def compare_fleet(baseline: dict, candidate: dict, args) -> list[str]:
    base_ratio = float(baseline["overhead"]["ratio"])
    cand_ratio = float(candidate["overhead"]["ratio"])
    threshold = base_ratio * (1.0 + args.max_regression)
    parity = bool(candidate["parity"]["bit_identical"])
    zero_fault = bool(candidate["parity"].get("zero_fault_bit_identical"))
    wins = candidate["wins"]
    tracing = candidate["tracing"]
    trace_ratio = float(tracing["ratio"])

    print(f"baseline  overhead ratio: {base_ratio:5.2f}x  ({args.baseline})")
    print(f"candidate overhead ratio: {cand_ratio:5.2f}x  ({args.candidate})")
    print(f"candidate tracing  ratio: {trace_ratio:5.2f}x")
    gate_line = (
        f"gate: <= {threshold:.2f}x (baseline + {args.max_regression:.0%}), "
        f"sharded-of-one parity, zero-fault parity, traced-serve parity, "
        f"tracing overhead <= {args.max_trace_overhead:.2f}x, p95 + cost "
        f"wins at peak rate, spot cost win at matched p95"
    )
    print(gate_line)

    failures = []
    if not parity:
        failures.append(
            "sharded-of-one no longer matches FleetEngine.serve bit-for-bit "
            "(cluster layer parity lost)"
        )
    if not zero_fault:
        failures.append(
            "an inert FaultPlan no longer serves bit-identically to the "
            "unperturbed engine (zero-fault parity lost)"
        )
    if not bool(tracing["traced_bit_identical"]):
        failures.append(
            "a traced serve no longer reproduces the untraced serve "
            "bit-for-bit (zero-cost tracing contract lost)"
        )
    if trace_ratio > args.max_trace_overhead:
        failures.append(
            f"tracing overhead too high: {trace_ratio:.2f}x > "
            f"{args.max_trace_overhead:.2f}x (ring-buffer tracing must "
            "stay near-free)"
        )
    if not bool(wins.get("p95_at_peak")):
        failures.append(
            "cost-aware routing + autoscaling no longer beats static "
            "single-pool provisioning on p95 latency at the peak rate"
        )
    if not bool(wins.get("cost_at_peak")):
        failures.append(
            "cost-aware routing + autoscaling no longer beats static "
            "single-pool provisioning on provisioned $ cost at the peak rate"
        )
    if not bool(wins.get("spot_at_matched_p95")):
        failures.append(
            "spot capacity + retries no longer beats on-demand on total $ "
            "cost at matched p95 (base reclamation rate)"
        )
    if cand_ratio > threshold:
        detail = (
            f"cluster-layer overhead regressed: {cand_ratio:.2f}x > "
            f"{threshold:.2f}x ({args.max_regression:.0%} above baseline "
            f"{base_ratio:.2f}x)"
        )
        failures.append(detail)
    for scenario in candidate.get("scenarios", []):
        for side in ("static_single_pool", "sharded_autoscaled"):
            if not bool(scenario[side].get("capacity_respected", True)):
                failures.append(
                    f"capacity invariant violated: {side} at "
                    f"{scenario['rate_qps']} qps exceeded its provisioned "
                    "pool"
                )
    for entry in candidate.get("faults", {}).get("sweep", []):
        if not bool(entry["spot"].get("capacity_respected", True)):
            failures.append(
                "capacity invariant violated: spot pool at reclaim rate "
                f"{entry['reclaim_rate_per_s']} exceeded its provisioned "
                "pool"
            )
    return failures


def compare_scale(baseline: dict, candidate: dict, args) -> list[str]:
    base_qps = float(baseline["scale"]["throughput_qps"])
    cand_qps = float(candidate["scale"]["throughput_qps"])
    threshold = base_qps * (1.0 - args.max_regression)
    scale = candidate["scale"]
    heap = candidate["tracemalloc"]
    streaming = candidate["parity"]["streaming"]
    multiprocess = candidate["parity"]["multiprocess"]

    print(f"baseline  throughput: {base_qps:10,.0f} q/s  ({args.baseline})")
    print(f"candidate throughput: {cand_qps:10,.0f} q/s  ({args.candidate})")
    print(
        f"candidate peak RSS:   {scale['peak_rss_mb']} MiB "
        f"(ceiling {scale['rss_ceiling_mb']} MiB); peak heap "
        f"{heap['peak_heap_mb']} MiB (ceiling {heap['heap_ceiling_mb']} MiB)"
    )
    gate_line = (
        f"gate: >= {threshold:,.0f} q/s (baseline - "
        f"{args.max_regression:.0%}), RSS + heap under ceiling, streaming "
        f"parity, multiprocess merge bit-identical"
    )
    print(gate_line)

    failures = []
    if not bool(scale.get("under_rss_ceiling")):
        failures.append(
            f"streaming serve peak RSS {scale['peak_rss_mb']} MiB broke the "
            f"{scale['rss_ceiling_mb']} MiB ceiling (O(1)-memory contract "
            "lost)"
        )
    if not bool(heap.get("under_heap_ceiling")):
        failures.append(
            f"tracemalloc peak {heap['peak_heap_mb']} MiB broke the "
            f"{heap['heap_ceiling_mb']} MiB ceiling (per-query Python-heap "
            "leak in streaming mode)"
        )
    if not bool(streaming.get("exact_fields_equal")):
        failures.append(
            "streaming summary drifted from the record-based serve on an "
            "exact (non-percentile) field"
        )
    if not bool(streaming.get("percentiles_within_bound")):
        failures.append(
            "a streaming latency percentile left the sketch's rank-error "
            "bound around the record-based order statistic"
        )
    if not bool(multiprocess.get("bit_identical")):
        failures.append(
            "multiprocess merge no longer equals the single-process sharded "
            "serve bit-for-bit (determinism contract lost)"
        )
    if cand_qps < threshold:
        failures.append(
            f"streaming throughput regressed: {cand_qps:,.0f} q/s < "
            f"{threshold:,.0f} q/s ({args.max_regression:.0%} below "
            f"baseline {base_qps:,.0f} q/s)"
        )
    return failures


def compare_serve(baseline: dict, candidate: dict, args) -> list[str]:
    serve = candidate["serve"]
    batch = candidate["batch"]
    parity = candidate["parity"]
    base_rps = float(baseline["serve"]["throughput_rps"])
    cand_rps = float(serve["throughput_rps"])
    threshold = base_rps * (1.0 - args.max_regression)

    print(f"baseline  throughput: {base_rps:10,.0f} req/s  ({args.baseline})")
    print(f"candidate throughput: {cand_rps:10,.0f} req/s  ({args.candidate})")
    print(
        f"candidate p99: {serve['p99_ms']} ms "
        f"(budget {serve['p99_budget_ms']} ms); mean batch size "
        f"{batch['mean_size']} over {batch['batches']} batches"
    )
    gate_line = (
        f"gate: >= {threshold:,.0f} req/s (baseline - "
        f"{args.max_regression:.0%}), >= 1000 requests, zero errors, p99 "
        f"under budget, batching active, recommendations bit-identical to "
        f"direct batch scoring"
    )
    print(gate_line)

    failures = []
    if int(serve["n_requests"]) < 1000:
        failures.append(
            f"load test drove only {serve['n_requests']} requests; the "
            "serving gate requires at least 1,000 through the live server"
        )
    if int(serve["errors"]) != 0:
        failures.append(
            f"{serve['errors']} of {serve['n_requests']} requests were not "
            "answered 200 at the benchmarked rate"
        )
    if not bool(serve.get("under_p99_budget")):
        failures.append(
            f"client-observed p99 {serve['p99_ms']} ms broke the "
            f"{serve['p99_budget_ms']} ms budget"
        )
    if not bool(batch.get("batching_active")):
        failures.append(
            f"micro-batching is inactive: mean batch size "
            f"{batch['mean_size']} <= 1 under {candidate['params']['concurrency']} "
            "concurrent clients (coalescing contract lost)"
        )
    if not bool(parity.get("bit_identical")):
        failures.append(
            f"{parity['mismatches']} served recommendations diverged from "
            "direct predict_ppm_batch + elbow selection (serving fidelity "
            "lost)"
        )
    if cand_rps < threshold:
        failures.append(
            f"serving throughput regressed: {cand_rps:,.0f} req/s < "
            f"{threshold:,.0f} req/s ({args.max_regression:.0%} below "
            f"baseline {base_rps:,.0f} req/s)"
        )
    return failures


def compare_adapt(baseline: dict, candidate: dict, args) -> list[str]:
    base_imp = baseline["improvement"]
    cand_imp = candidate["improvement"]
    wins = candidate["wins"]
    drift = candidate["drift"]
    parity = candidate["parity"]
    p95_threshold = float(base_imp["p95_ratio"]) * (1.0 - args.max_regression)
    cost_threshold = float(base_imp["cost_ratio"]) * (1.0 - args.max_regression)

    print(
        f"baseline  improvement: p95 {float(base_imp['p95_ratio']):5.2f}x, "
        f"cost {float(base_imp['cost_ratio']):5.2f}x  ({args.baseline})"
    )
    print(
        f"candidate improvement: p95 {float(cand_imp['p95_ratio']):5.2f}x, "
        f"cost {float(cand_imp['cost_ratio']):5.2f}x  ({args.candidate})"
    )
    gate_line = (
        f"gate: adaptive beats frozen on p95 and on total $ (retrain bill "
        f"included), drift alarm after the shift, zero-retrain parity, "
        f"improvement >= {p95_threshold:.2f}x / {cost_threshold:.2f}x "
        f"(baseline - {args.max_regression:.0%})"
    )
    print(gate_line)

    failures = []
    if not bool(parity.get("zero_retrain_bit_identical")):
        failures.append(
            "a never-retraining controller no longer serves bit-identically "
            "to a frozen fleet (the feedback hook perturbs the serve)"
        )
    if not bool(wins.get("p95")):
        failures.append(
            "the adaptive serve no longer beats the frozen serve on p95 "
            "latency across the input-size shift"
        )
    if not bool(wins.get("cost")):
        failures.append(
            "the adaptive serve no longer beats the frozen serve on total "
            "dollar cost with the retraining bill included"
        )
    if int(drift.get("alarms", 0)) < 1:
        failures.append(
            "no drift alarm fired across the input-size shift (detector "
            "or feedback path dead)"
        )
    elif not bool(drift.get("fired_after_shift")):
        failures.append(
            f"the first drift alarm (t={drift.get('first_alarm_time_s')}s) "
            f"fired before the shift (t={drift.get('shift_time_s')}s): the "
            "in-regime prefix tripped the detector"
        )
    if float(cand_imp["p95_ratio"]) < p95_threshold:
        failures.append(
            f"p95 improvement regressed: {float(cand_imp['p95_ratio']):.2f}x "
            f"< {p95_threshold:.2f}x ({args.max_regression:.0%} below "
            f"baseline {float(base_imp['p95_ratio']):.2f}x)"
        )
    if float(cand_imp["cost_ratio"]) < cost_threshold:
        failures.append(
            f"cost improvement regressed: {float(cand_imp['cost_ratio']):.2f}x "
            f"< {cost_threshold:.2f}x ({args.max_regression:.0%} below "
            f"baseline {float(base_imp['cost_ratio']):.2f}x)"
        )
    for side in ("frozen", "adaptive"):
        if not bool(candidate[side].get("capacity_respected", True)):
            failures.append(
                f"capacity invariant violated: the {side} serve exceeded "
                "its provisioned pool"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional drift of the gated ratio vs baseline "
        "(default 0.20)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="absolute sweep-vs-loop speedup floor (sweep schema only, "
        "default 5.0)",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=1.10,
        help="absolute ceiling on the tracing-on/tracing-off wall-clock "
        "ratio (fleet schema only, default 1.10)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    if baseline["schema"] != candidate["schema"]:
        print(
            f"FAIL: schema mismatch: baseline {baseline['schema']!r} vs "
            f"candidate {candidate['schema']!r}",
            file=sys.stderr,
        )
        return 1
    if not check_params(baseline, candidate):
        return 1
    note_machine_drift(baseline, candidate)

    if baseline["schema"] == SWEEP_SCHEMA:
        failures = compare_sweep(baseline, candidate, args)
    elif baseline["schema"] == FLEET_SCHEMA:
        failures = compare_fleet(baseline, candidate, args)
    elif baseline["schema"] == SERVE_SCHEMA:
        failures = compare_serve(baseline, candidate, args)
    elif baseline["schema"] == ADAPT_SCHEMA:
        failures = compare_adapt(baseline, candidate, args)
    else:
        failures = compare_scale(baseline, candidate, args)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: no benchmark regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

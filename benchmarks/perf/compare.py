#!/usr/bin/env python
"""Benchmark-regression gate for CI.

Compares a fresh ``BENCH_sweep.json`` (see ``run_bench.py``) against the
checked-in ``baseline.json`` and exits non-zero when the sweep backend
regressed:

- **relative throughput** — the sweep/loop *speedup* ratio is
  hardware-normalized (both passes run on the same machine), so it is
  the gated quantity: a candidate speedup more than ``--max-regression``
  below the baseline's fails the build;
- **absolute floor** — the speedup must also clear ``--min-speedup``
  (the repository's acceptance bar of 5x over the event loop);
- **exactness** — the run's sweep-vs-loop bit-identity check must hold;
- **parity** — the run's fleet-of-one vs ``simulate_query`` bit-identity
  check (the shared execution core's contract) must hold.

Usage:

    python benchmarks/perf/compare.py \
        --baseline benchmarks/perf/baseline.json \
        --candidate benchmarks/perf/output/BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro-bench-sweep/v2"


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA:
        msg = (
            f"{path}: unexpected schema {data.get('schema')!r} "
            f"(want {SCHEMA!r})"
        )
        raise SystemExit(msg)
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional speedup drop vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="absolute sweep-vs-loop speedup floor (default 5.0)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    # Speedups are only comparable when measured on the same workload
    # grid; "repeats" is a timing knob, not part of the workload.
    def grid(params: dict) -> dict:
        return {k: v for k, v in params.items() if k != "repeats"}

    if grid(baseline["params"]) != grid(candidate["params"]):
        print("FAIL: bench params drifted from the baseline's", file=sys.stderr)
        print(f"  baseline : {grid(baseline['params'])}", file=sys.stderr)
        print(f"  candidate: {grid(candidate['params'])}", file=sys.stderr)
        print("  regenerate benchmarks/perf/baseline.json", file=sys.stderr)
        return 1

    if baseline["machine"] != candidate["machine"]:
        # Advisory only: the ratio is mostly but not perfectly
        # machine-invariant.  If the gate trips right after an
        # interpreter/runner change, re-anchor the baseline from the CI
        # artifact (see benchmarks/perf/README.md).
        print(f"note: baseline machine {baseline['machine']}")
        print(f"      candidate machine {candidate['machine']}")

    base_speedup = float(baseline["speedup"])
    cand_speedup = float(candidate["speedup"])
    threshold = base_speedup * (1.0 - args.max_regression)
    equivalent = bool(candidate["equivalence"]["bit_identical"])
    parity = bool(candidate["parity"]["bit_identical"])

    print(f"baseline  speedup: {base_speedup:6.2f}x  ({args.baseline})")
    print(f"candidate speedup: {cand_speedup:6.2f}x  ({args.candidate})")
    gate_line = (
        f"gate: >= {threshold:.2f}x (baseline - {args.max_regression:.0%}) "
        f"and >= {args.min_speedup:.2f}x floor, bit-identical results, "
        f"fleet-of-one parity"
    )
    print(gate_line)

    failures = []
    if not equivalent:
        failures.append("sweep results no longer match the event loop bit-for-bit")
    if not parity:
        failures.append(
            "fleet-of-one no longer matches simulate_query bit-for-bit "
            "(shared execution core parity lost)"
        )
    if cand_speedup < threshold:
        detail = (
            f"sweep throughput regressed: {cand_speedup:.2f}x < "
            f"{threshold:.2f}x ({args.max_regression:.0%} below baseline "
            f"{base_speedup:.2f}x)"
        )
        failures.append(detail)
    if cand_speedup < args.min_speedup:
        detail = (
            f"sweep speedup {cand_speedup:.2f}x is below the "
            f"{args.min_speedup:.2f}x acceptance floor"
        )
        failures.append(detail)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: no benchmark regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 12: executor allocation skylines for q94 under four policies.

Paper numbers (q94 SF=100): SA(48) and SA(25) run in similar time but the
latter slashes AUC 1904 -> 1022; the Rule request (25 during optimization,
from n=5) lands at AUC 729 vs DA's 1250, with a ~27 s lag between the
request and the full allocation.  The reproduction targets the ordering
SA(48) > DA > SA(rule) ~ Rule on AUC and the visible provisioning ramp.
"""

import numpy as np

from repro.core.selection import limited_slowdown
from repro.engine.allocation import DynamicAllocation, PredictiveAllocation
from repro.engine.scheduler import simulate_query
from repro.engine.sweep import compile_plan


def test_fig12_skylines(ctx, report, benchmark):
    workload = ctx.workload(100)
    cluster = ctx.cluster
    cv = ctx.cross_validation(100)
    graph = workload.stage_graph("q94")

    # the Rule's executor count: AE_PL prediction at H=1.05, as in the paper
    fold = next(f for f in cv.folds if "q94" in f.test_ids)
    rule_n = limited_slowdown(
        cv.n_grid, fold.predicted_curves["power_law"]["q94"], 1.05
    )

    # Static skylines come from the batched sweep backend (bit-identical
    # to the event loop); the scaling policies need the event loop.
    compiled = compile_plan(graph)
    sa48, sa_rule_r = compiled.sweep([48, rule_n], cluster)
    results = {
        "DA(1,48)": simulate_query(graph, DynamicAllocation(1, 48), cluster),
        "SA(48)": sa48,
        f"SA({rule_n})": sa_rule_r,
        f"Rule({rule_n})": simulate_query(
            graph, PredictiveAllocation(rule_n, initial_executors=5), cluster
        ),
    }

    lines = [
        f"Figure 12 — q94 SF=100 skylines (Rule predicted n={rule_n})",
        f"{'policy':>10} {'time_s':>8} {'AUC_es':>8} {'max_n':>6}  skyline steps",
    ]
    for name, r in results.items():
        steps = ", ".join(
            f"{t:.0f}s:{c}" for t, c in r.skyline.points[:8]
        )
        lines.append(
            f"{name:>10} {r.runtime:8.1f} {r.auc:8.0f} "
            f"{r.max_executors:6d}  [{steps}]"
        )
    lines.append(
        "paper: SA(48) AUC 1904, SA(25) 1022, DA 1250, Rule 729; Rule's "
        "full allocation lags the request by ~27 s"
    )
    report("fig12_skylines", "\n".join(lines))

    rule = results[f"Rule({rule_n})"]
    da = results["DA(1,48)"]
    sa48 = results["SA(48)"]
    sa_rule = results[f"SA({rule_n})"]

    # AUC ordering: SA(48) worst, Rule best
    assert sa48.auc > da.auc > rule.auc
    assert sa_rule.auc >= rule.auc * 0.9
    # SA(48) and SA(rule) runtimes are close (the plateau premise)
    assert sa_rule.runtime < sa48.runtime * 1.4
    # the Rule run shows a provisioning ramp: starts at 5, ends at rule_n
    assert rule.skyline.value_at(0.0) == 5
    assert rule.max_executors == rule_n
    ramp_end = max(t for t, _ in rule.skyline.points)
    assert 2.0 <= ramp_end <= 35.0  # the paper's ~20-30 s lag

    benchmark(
        lambda: simulate_query(graph, DynamicAllocation(1, 48), cluster).auc
    )

"""Fleet concurrency: AutoExecutor vs static-default vs oracle on a
shared pool under rising arrival rates.

The paper's production setting (Section 2) is a shared serverless pool
serving many concurrent queries.  This bench serves a 120-query Poisson
stream through a 160-executor pool at three arrival rates and compares
per-query allocation strategies end to end:

- **AutoExecutor** — the online :class:`repro.fleet.PredictionService`
  (portable exported model, plan-signature cache, measured selection
  overhead charged to each query);
- **static-default** — one size for every query, provisioned for the
  workload's big queries: the over-allocation the paper's Figure 13
  measures its savings against;
- **Spark-default SA(2)** — the bare default 80 % of non-DA production
  apps run with (Figure 3b): cheap, but painfully slow;
- **oracle** — the selection objective applied to each query's *true*
  simulated curve (zero prediction error).

Expected shape: right-sizing wins on *both* axes against the
over-provisioned default — lower dollar cost at equal-or-better tail
latency — and stays close to the oracle; the pool is never overcommitted
at any instant.
"""

import numpy as np
import pytest

from repro import AutoExecutor, Workload
from repro.engine.cluster import Cluster
from repro.export.format import save_parameter_model
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer
from repro.fleet import (
    FleetEngine,
    PredictionService,
    oracle_allocator,
    poisson_arrivals,
    static_allocator,
)

QUERY_IDS = tuple(
    f"q{i}"
    for i in (1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 19, 21, 25,
              27, 40, 46, 52, 64, 72, 82, 94)
)
N_QUERIES = 120
CAPACITY = 160
RATES = (0.2, 0.5, 1.0)
STATIC_DEFAULT = 32


@pytest.fixture(scope="module")
def fleet_setup(tmp_path_factory):
    workload = Workload(scale_factor=50, query_ids=QUERY_IDS)
    cluster = Cluster()
    system = AutoExecutor(family="power_law").train(workload, cluster)

    # Deploy through the portable runtime, as the paper's optimizer does.
    registry = tmp_path_factory.mktemp("registry")
    save_parameter_model(system.model, registry / "ppm.json")
    scorer = PortablePPMScorer(PortableModelRuntime(registry), "ppm")
    service = PredictionService(scorer, n_grid=system.n_grid)
    oracle = oracle_allocator(workload)
    return workload, service, oracle


def test_fleet_concurrency(fleet_setup, report, benchmark):
    workload, service, oracle = fleet_setup
    strategies = [
        ("autoexec", service.allocate),
        (f"SA({STATIC_DEFAULT})", static_allocator(STATIC_DEFAULT)),
        ("SA(2)", static_allocator(2)),
        ("oracle", oracle),
    ]

    results: dict[tuple[float, str], object] = {}
    for rate in RATES:
        arrivals = poisson_arrivals(
            QUERY_IDS, n_queries=N_QUERIES, rate_qps=rate, seed=7
        )
        for name, allocator in strategies:
            engine = FleetEngine(
                workload, capacity=CAPACITY, allocator=allocator
            )
            results[(rate, name)] = engine.serve(arrivals)

    lines = [
        f"Fleet serving — {N_QUERIES} concurrent queries, pool of "
        f"{CAPACITY} executors, Poisson arrivals",
        f"{'rate':>6} {'strategy':>9} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'queue':>8} {'util':>6} {'peak':>5} {'cost':>8}",
    ]
    for rate in RATES:
        for name, _ in strategies:
            m = results[(rate, name)]
            s = m.summary()
            lines.append(
                f"{rate:>6.1f} {name:>9} {s['p50_latency_s']:>8.1f} "
                f"{s['p95_latency_s']:>8.1f} {s['p99_latency_s']:>8.1f} "
                f"{s['mean_queue_delay_s']:>8.1f} {s['utilization']:>6.0%} "
                f"{m.peak_pool_usage:>5.0f} ${s['total_dollar_cost']:>7.2f}"
            )
    lines.append(
        f"prediction service: cache {service.cache_size} entries, "
        f"{service.hits} hits / {service.misses} misses, mean selection "
        f"overhead {1e3 * service.mean_overhead_seconds():.2f} ms"
    )
    report("fleet_concurrency", "\n".join(lines))

    # The pool is never overcommitted, at any rate, under any strategy.
    for m in results.values():
        assert m.capacity_respected
        assert m.n_queries == N_QUERIES

    for rate in RATES:
        auto = results[(rate, "autoexec")]
        static = results[(rate, f"SA({STATIC_DEFAULT})")]
        spark_default = results[(rate, "SA(2)")]
        best = results[(rate, "oracle")]
        # The headline: lower total cost than the static default at
        # equal-or-better tail latency.
        assert auto.total_dollar_cost < static.total_dollar_cost
        assert auto.p95_latency <= static.p95_latency
        # Against the bare Spark default, right-sizing buys tail latency
        # (dramatically so at the p99 straggler tail).
        assert auto.p95_latency < spark_default.p95_latency
        assert auto.p99_latency < spark_default.p99_latency
        # And predictions land near the perfect-knowledge bound.
        assert auto.total_dollar_cost < 1.5 * best.total_dollar_cost

    # Under load, recurring plans hit the memo cache, so selection stays
    # far below the per-query optimization budget (Section 5.6).
    assert service.hits > 0
    assert service.mean_overhead_seconds() < 0.1

    # Queueing delay grows with the arrival rate (the fleet actually
    # contends) for the static default.
    delays = [
        results[(rate, f"SA({STATIC_DEFAULT})")].mean_queue_delay
        for rate in RATES
    ]
    assert delays[0] < delays[-1]

    # Timed kernel: one fleet run at the middle rate.
    arrivals = poisson_arrivals(
        QUERY_IDS, n_queries=N_QUERIES, rate_qps=0.5, seed=7
    )
    engine = FleetEngine(
        workload, capacity=CAPACITY, allocator=service.allocate
    )
    benchmark(lambda: engine.serve(arrivals).total_executor_seconds)


def test_fleet_fair_share_vs_fifo(fleet_setup, report):
    """Fair-share admission recovers capacity FIFO strands behind big
    requests: same stream, same budgets, better queueing."""
    from repro.fleet import FairShareAdmission

    workload, service, _ = fleet_setup
    arrivals = poisson_arrivals(
        QUERY_IDS, n_queries=N_QUERIES, rate_qps=1.0, n_apps=6, seed=13
    )
    mixed = {
        qid: (4 if i % 3 else 40)
        for i, qid in enumerate(QUERY_IDS)
    }

    def allocator(query_id, plan):
        return mixed[query_id]

    fifo = FleetEngine(
        workload, capacity=CAPACITY, allocator=allocator
    ).serve(arrivals)
    fair = FleetEngine(
        workload,
        capacity=CAPACITY,
        allocator=allocator,
        admission=FairShareAdmission(),
    ).serve(arrivals)

    report(
        "fleet_fair_share",
        "Fair-share vs FIFO admission (mixed 4/40-executor budgets, "
        "rate 1.0 q/s)\n"
        f"  FIFO:       mean queue {fifo.mean_queue_delay:8.1f} s, "
        f"p95 latency {fifo.p95_latency:8.1f} s\n"
        f"  fair-share: mean queue {fair.mean_queue_delay:8.1f} s, "
        f"p95 latency {fair.p95_latency:8.1f} s",
    )
    assert fifo.capacity_respected and fair.capacity_respected
    assert fair.mean_queue_delay <= fifo.mean_queue_delay
    assert np.median(
        [r.queue_delay for r in fair.records]
    ) <= np.median([r.queue_delay for r in fifo.records])

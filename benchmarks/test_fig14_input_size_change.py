"""Figure 14: generalization across input data sizes (scale factors).

Train the models on one TPC-DS scale factor and test on the other.  Paper
observations reproduced:

  - the error pattern matches the query-template generalization case
    (largest at small n);
  - the models — whose features include the input sizes — can beat
    Sparklens estimates carried over from the *training* scale factor,
    because Sparklens does not account for data-size changes at all.
"""

import numpy as np

from repro.core.errors import e_metric
from repro.experiments.figures import render_series_table

REPORT_N = (1, 3, 8, 16, 32, 48)


def _cross_sf_errors(ctx, train_sf, test_sf):
    """E(n) series for models trained on train_sf, tested on test_sf."""
    train_ds = ctx.training_dataset(train_sf)
    test_ds = ctx.training_dataset(test_sf)
    actuals = ctx.actuals(test_sf)
    grid = train_ds.n_grid
    cols = np.searchsorted(grid, REPORT_N)

    series = {}
    for label, family in (("AE_PL", "power_law"), ("AE_AL", "amdahl")):
        model = train_ds.fit_parameter_model(family)
        params = model.predict_params(test_ds.features)
        errs = []
        for j, n in zip(cols, REPORT_N):
            actual = actuals.times_by_query(n)
            predicted = {
                qid: float(
                    model.ppm_class.from_parameters(row).predict(n)
                )
                for qid, row in zip(test_ds.query_ids, params)
            }
            errs.append(e_metric(actual, predicted))
        series[label] = np.array(errs)

    # Sparklens reference curves from each scale factor's own logs
    for label, sf in (("S_10", 10), ("S_100", 100)):
        source = ctx.training_dataset(sf)
        errs = []
        for j, n in zip(cols, REPORT_N):
            actual = actuals.times_by_query(n)
            predicted = {
                qid: float(source.sparklens_curves[qid][j])
                for qid in test_ds.query_ids
            }
            errs.append(e_metric(actual, predicted))
        series[label] = np.array(errs)
    return series


def test_fig14_input_size_change(ctx, report, benchmark):
    blocks = []
    all_series = {}
    for train_sf, test_sf, tag in ((100, 10, "a"), (10, 100, "b")):
        series = _cross_sf_errors(ctx, train_sf, test_sf)
        all_series[(train_sf, test_sf)] = series
        blocks.append(
            f"({tag}) train SF={train_sf}, test SF={test_sf}:\n"
            + render_series_table(
                "n", REPORT_N, series, float_format="{:10.3f}"
            )
        )
    report(
        "fig14_input_size_change",
        "Figure 14 — E(n) across scale-factor changes\n"
        + "\n\n".join(blocks)
        + "\npaper: same pattern as template generalization; Sparklens "
        "estimates from the training SF miss data-size changes entirely",
    )

    for (train_sf, test_sf), series in all_series.items():
        # errors largest at small n, like Figure 9
        for label in ("AE_PL", "AE_AL"):
            assert series[label][0] >= series[label][1:4].min()
        # Sparklens carried over from the *training* SF is far off the
        # testing SF at scale-sensitive points (it ignores data sizes)
        stale = f"S_{train_sf}"
        fresh = f"S_{test_sf}"
        assert series[stale][2:].mean() > series[fresh][2:].mean()
        # the trained models (which see input sizes) beat the stale
        # Sparklens reference somewhere in the operating range
        assert series["AE_PL"][2:].min() < series[stale][2:].max()

    benchmark(
        lambda: ctx.training_dataset(10).fit_parameter_model(
            "amdahl"
        ).predict_params(ctx.training_dataset(100).features[:10])
    )

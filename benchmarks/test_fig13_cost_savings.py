"""Figure 13: per-query ratios of DA(1,48) and SA(48) to the Rule.

The paper's headline table: across all TPC-DS SF=100 queries (Rule = AE_PL
prediction at H=1.05),

  - n ratios:   SA/Rule avg 3.5,  DA/Rule avg 2.6;
  - AUC ratios: SA/Rule avg 4.9,  DA/Rule avg 2.1;
  - speedups:   Rule ~16 % slower than SA(48) (allocation lag), only ~4 %
    slower than DA;
  - **AutoExecutor saves 48 % of executor occupancy vs dynamic allocation
    and 73 % vs static allocation.**
"""

import numpy as np

from repro.core.selection import limited_slowdown
from repro.engine.allocation import DynamicAllocation, PredictiveAllocation
from repro.engine.scheduler import simulate_query
from repro.engine.sweep import simulate_query_sweep


def test_fig13_cost_savings(ctx, report, benchmark):
    workload = ctx.workload(100)
    cluster = ctx.cluster
    cv = ctx.cross_validation(100)
    grid = cv.n_grid

    # Rule counts from one CV repeat's test predictions (every query is a
    # test query exactly once per repeat — the paper's setup)
    rule_n = {}
    for fold in cv.folds[:5]:
        for qid in fold.test_ids:
            rule_n[qid] = limited_slowdown(
                grid, fold.predicted_curves["power_law"][qid], 1.05
            )

    totals = {"da": 0.0, "sa": 0.0, "rule": 0.0}
    n_ratios, auc_ratios, speed_sa, speed_da, fully = [], [], [], [], 0
    for qid in workload:
        graph = workload.stage_graph(qid)
        r_da = simulate_query(graph, DynamicAllocation(1, 48), cluster)
        r_sa = simulate_query_sweep(graph, [48], cluster)[0]
        r_rule = simulate_query(
            graph,
            PredictiveAllocation(rule_n[qid], initial_executors=5),
            cluster,
        )
        totals["da"] += r_da.auc
        totals["sa"] += r_sa.auc
        totals["rule"] += r_rule.auc
        n_ratios.append(
            (r_sa.max_executors / r_rule.max_executors,
             r_da.max_executors / r_rule.max_executors)
        )
        auc_ratios.append((r_sa.auc / r_rule.auc, r_da.auc / r_rule.auc))
        speed_sa.append(r_sa.runtime / r_rule.runtime)
        speed_da.append(r_da.runtime / r_rule.runtime)
        fully += int(r_rule.fully_allocated)

    n_ratios = np.array(n_ratios)
    auc_ratios = np.array(auc_ratios)
    saving_da = 100 * (1 - totals["rule"] / totals["da"])
    saving_sa = 100 * (1 - totals["rule"] / totals["sa"])

    report(
        "fig13_cost_savings",
        "Figure 13 — DA(1,48) and SA(48) vs Rule (AE_PL, H=1.05), all "
        "queries SF=100\n"
        f"  avg n_ratio:   SA/Rule {n_ratios[:, 0].mean():.1f}  "
        f"(paper 3.5),  DA/Rule {n_ratios[:, 1].mean():.1f}  (paper 2.6)\n"
        f"  avg AUC_ratio: SA/Rule {auc_ratios[:, 0].mean():.1f}  "
        f"(paper 4.9),  DA/Rule {auc_ratios[:, 1].mean():.1f}  (paper 2.1)\n"
        f"  Rule slowdown vs SA(48): "
        f"{100 * (1 / np.mean(speed_sa) - 1):.0f}%  (paper 16%), "
        f"vs DA: {100 * (1 / np.mean(speed_da) - 1):.0f}%  (paper 4%)\n"
        f"  TOTAL AUC saving vs DA: {saving_da:.0f}%  (paper 48%), "
        f"vs SA(48): {saving_sa:.0f}%  (paper 73%)\n"
        f"  queries fully allocated before finishing: {fully}/103 "
        "(paper: 55/103 marked with diamonds)",
    )

    # the headline: substantial occupancy savings with small slowdown
    assert saving_da > 25.0
    assert saving_sa > 35.0
    assert n_ratios[:, 0].mean() > 2.5
    assert n_ratios[:, 1].mean() > 1.8
    assert auc_ratios[:, 1].mean() > 1.3
    assert 1 / np.mean(speed_da) - 1 < 0.15  # ~4% in the paper

    graph = workload.stage_graph("q1")
    benchmark(
        lambda: simulate_query(
            graph, PredictiveAllocation(rule_n["q1"], initial_executors=5),
            cluster,
        ).auc
    )

"""Benchmark-suite fixtures.

One :class:`ExperimentContext` is shared by every bench so the expensive
artifacts (ground truth, Sparklens-augmented training data, the repeated
cross-validation) are computed once per run.

Every bench renders the paper-format series it regenerates through the
``report`` fixture, which writes ``benchmarks/output/<name>.txt`` and
echoes everything into the terminal summary — so the rows behind each
figure are visible in ``bench_output.txt`` alongside pytest-benchmark's
timing table.

Set ``REPRO_FULL_PROTOCOL=1`` to run the paper's full protocol sizes
(10-repeated 5-fold CV, 5 ground-truth repeats) instead of the reduced
defaults.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentContext

OUTPUT_DIR = Path(__file__).parent / "output"

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(seed=0)


@pytest.fixture(scope="session")
def report():
    """Callable ``report(name, text)``: persist + echo a rendered figure."""

    def _report(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        _REPORTS.append((name, text))

    return _report


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced figures and tables")
    for name, text in _REPORTS:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)

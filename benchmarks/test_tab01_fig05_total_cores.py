"""Table 1 + Figure 5: the impact of total cores k = n x ec.

The paper runs the Table 1 grid of (cores-per-executor, executors)
configurations and shows that run times line up on the total-core count
``k`` regardless of how it factorizes (Figure 5a/5b), with the relative
error of interpolating from the ec=4 series averaging 8.8 % — 68.4 % of
points within ±10 % and 92.9 % within ±20 % (Figure 5c).
"""

import numpy as np

from repro.core.cores import CONFIG_GRID_TABLE1
from repro.engine.allocation import StaticAllocation
from repro.engine.cluster import Cluster, ExecutorSpec, NodeSpec
from repro.engine.scheduler import simulate_query
from repro.experiments.figures import render_series_table
from repro.experiments.runtime_data import noise_sigma


def _cluster_for(ec: int) -> Cluster:
    """A pool whose executors are ec cores wide, memory held at 7 GB/core."""
    return Cluster(
        node=NodeSpec(cores=8, memory_gb=64.0),
        executor=ExecutorSpec(cores=ec, memory_gb=7.0 * ec),
        max_nodes=96,
        max_executors_per_node=max(1, 8 // ec),
    )


def _runtime(graph, n: int, ec: int, rng, repeats: int = 3) -> float:
    """Averaged noisy runtime, mirroring the paper's repeated runs."""
    result = simulate_query(graph, StaticAllocation(n), _cluster_for(ec))
    k = n * ec
    sigma = noise_sigma(max(k // 4, 1))
    factors = rng.lognormal(0.0, sigma, size=repeats)
    return result.runtime * float(factors.mean())


def test_tab01_fig05ab_example_queries(ctx, report, benchmark):
    workload = ctx.workload(100)
    rng = np.random.default_rng(0)

    lines = [
        "Table 1 grid + Figure 5a/5b — run time vs total cores k "
        "for q94 and q69 (SF=100)",
        f"{'ec':>4} {'n':>4} {'k':>5} {'q94_t':>9} {'q69_t':>9}",
    ]
    series = {}
    for ec, n, k in CONFIG_GRID_TABLE1:
        t94 = _runtime(workload.stage_graph("q94"), n, ec, rng)
        t69 = _runtime(workload.stage_graph("q69"), n, ec, rng)
        series[(ec, k)] = (t94, t69)
        lines.append(f"{ec:>4} {n:>4} {k:>5} {t94:9.1f} {t69:9.1f}")
    lines.append(
        "paper: points with different ec land on (or near) the ec=4 trend "
        "line for the same k"
    )
    report("tab01_fig05ab_total_cores", "\n".join(lines))

    # same k, different factorization -> similar time (q94, k=32):
    t_2x16 = series[(2, 32)][0]
    t_4x8 = series[(4, 32)][0]
    assert abs(t_2x16 - t_4x8) / t_4x8 < 0.25

    benchmark(
        lambda: simulate_query(
            workload.stage_graph("q69"), StaticAllocation(3), _cluster_for(6)
        ).runtime
    )


def test_fig05c_error_distribution(ctx, report, benchmark):
    """Interpolation error from the ec=4 series, all queries x 6 configs."""
    workload = ctx.workload(100)
    rng = np.random.default_rng(1)
    ec4_grid = [(n, n * 4) for ec, n, k in CONFIG_GRID_TABLE1 if ec == 4]
    other = [(ec, n, k) for ec, n, k in CONFIG_GRID_TABLE1 if ec != 4]

    errors = []
    for qid in workload:
        graph = workload.stage_graph(qid)
        base_k = np.array([k for _, k in ec4_grid], dtype=float)
        base_t = np.array(
            [_runtime(graph, n, 4, rng) for n, _ in ec4_grid]
        )
        order = np.argsort(base_k)
        for ec, n, k in other:
            t = _runtime(graph, n, ec, rng)
            t_interp = float(np.interp(k, base_k[order], base_t[order]))
            errors.append(1.0 - t / t_interp)
    errors = 100.0 * np.array(errors)

    abs_err = np.abs(errors)
    within10 = float(np.mean(abs_err <= 10.0))
    within20 = float(np.mean(abs_err <= 20.0))
    report(
        "fig05c_error_distribution",
        "Figure 5c — relative error of estimating ec!=4 runs from the "
        "ec=4 trend (all queries, 6 configs each)\n"
        f"  points: {errors.size}\n"
        f"  mean |error|: {abs_err.mean():.1f}%   (paper: 8.8%)\n"
        f"  within [-10%, +10%]: {100 * within10:.1f}%   (paper: 68.4%)\n"
        f"  within [-20%, +20%]: {100 * within20:.1f}%   (paper: 92.9%)",
    )

    assert abs_err.mean() < 15.0
    assert within10 > 0.55
    assert within20 > 0.85

    graph = workload.stage_graph("q42")
    benchmark(lambda: _runtime(graph, 16, 8, np.random.default_rng(2)))

"""Figure 10: limited-slowdown configuration selection.

For each slowdown budget H, select the smallest n with t(n) <= H * t_min
on each series' own curve, then account the *actual* slowdown and the
executor cost.  Paper findings reproduced:

  - at H=1, AE_AL always selects the maximum n=48 (no saturation term)
    while AE_PL realizes most of the savings with a small added slowdown;
  - models get conservative at larger H (they save fewer executors than
    the oracle would);
  - selections are far faster than the static defaults (the paper quotes
    69-70 % speedup over static n=3 and an expected ~2.6x over n=2).
"""

import numpy as np

from repro.core.selection import limited_slowdown
from repro.experiments.figures import render_series_table

H_VALUES = (1.0, 1.05, 1.1, 1.2, 1.5, 2.0)


def _selection_stats(cv, actuals, source, dataset, h):
    grid = cv.n_grid
    ns, slows = [], []
    for fold in cv.folds:
        for qid in fold.test_ids:
            if source == "actual":
                curve = actuals.curve(qid, grid)
            elif source == "sparklens":
                curve = dataset.sparklens_curves[qid]
            else:
                curve = fold.predicted_curves[source][qid]
            n_sel = limited_slowdown(grid, curve, h)
            actual_curve = actuals.curve(qid, grid)
            ns.append(n_sel)
            slows.append(actual_curve[n_sel - 1] / actual_curve.min())
    return float(np.mean(ns)), float(np.mean(slows))


def test_fig10_config_selection(ctx, report, benchmark):
    cv = ctx.cross_validation(100)
    actuals = ctx.actuals(100)
    dataset = ctx.training_dataset(100)

    sources = ("S", "AE_PL", "AE_AL", "Actual")
    keys = {"S": "sparklens", "AE_PL": "power_law", "AE_AL": "amdahl",
            "Actual": "actual"}
    n_table = {s: [] for s in sources}
    slow_table = {s: [] for s in sources}
    for h in H_VALUES:
        for s in sources:
            n_avg, slow_avg = _selection_stats(
                cv, actuals, keys[s], dataset, h
            )
            n_table[s].append(n_avg)
            slow_table[s].append(slow_avg)

    report(
        "fig10_config_selection",
        "Figure 10 — limited-slowdown selection "
        "(test queries, TPC-DS SF=100)\n"
        "(a) actual slowdown of the selected configuration:\n"
        + render_series_table(
            "H", H_VALUES,
            {s: np.array(v) for s, v in slow_table.items()},
            float_format="{:10.2f}",
        )
        + "\n\n(b) selected executor count:\n"
        + render_series_table(
            "H", H_VALUES,
            {s: np.array(v) for s, v in n_table.items()},
            float_format="{:10.1f}",
        )
        + "\npaper (H=1): n = 32.9 (S), 21.5 (AE_PL), 48 (AE_AL), 24 "
        "(Actual); slowdowns ~5-9%",
    )

    # AE_AL pins the maximum at H=1
    assert n_table["AE_AL"][0] == 48.0
    # AE_PL selects fewer executors than AE_AL at H=1 with bounded slowdown
    assert n_table["AE_PL"][0] < 30
    assert slow_table["AE_PL"][0] < 1.35
    # larger budgets monotonically save executors for every series
    for s in sources:
        assert n_table[s] == sorted(n_table[s], reverse=True)

    # headline speedups over static defaults (paper Section 5.3)
    grid = cv.n_grid
    speedup_vs_2, speedup_vs_3 = [], []
    fold = cv.folds[0]
    for qid in fold.test_ids:
        n_sel = limited_slowdown(
            grid, fold.predicted_curves["power_law"][qid], 1.0
        )
        curve = actuals.curve(qid, grid)
        speedup_vs_2.append(curve[1] / curve[n_sel - 1])
        speedup_vs_3.append(curve[2] / curve[n_sel - 1])
    assert np.mean(speedup_vs_2) > 1.8  # paper: expected ~2.6x over n=2
    assert np.mean(speedup_vs_3) > 1.4  # paper: 69-70% over n=3

    benchmark(
        lambda: _selection_stats(cv, actuals, "power_law", dataset, 1.05)
    )

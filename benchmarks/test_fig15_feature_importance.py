"""Figure 15 + the Section 5.7 feature ablation.

Paper findings reproduced:

  - permutation importance ranks the two data-size features —
    TotalInputBytes and TotalRowsProcessed — at the top, followed by
    MaxDepth, NumOps, and then specific operator counts (Project, Filter,
    Aggregate, Sort, Union, NumInputs close out the top 10);
  - the F0..F3 ablation: the top-6 feature set F1 performs like the full
    set F0; dropping the data-size features (F3) hurts; data-size features
    alone (F2) hurt more at mid-range n — "both input sizes and plan
    features together impact query run times".
"""

import numpy as np

from repro.core.features import FEATURE_NAMES
from repro.experiments.crossval import run_cross_validation
from repro.ml.importance import permutation_importance
from repro.ml.metrics import r2_score
from repro.ml.model_selection import KFold


def _importance_scores(dataset, n_repeats=25, seed=0):
    """Mean permutation importance over folds and both families."""
    X = dataset.features
    total = np.zeros(len(FEATURE_NAMES))
    kf = KFold(5, shuffle=True, random_state=seed)
    per_family = {}
    for family, targets in (
        ("power_law", dataset.power_law_params),
        ("amdahl", dataset.amdahl_params),
    ):
        acc = np.zeros(len(FEATURE_NAMES))
        for train_idx, test_idx in kf.split(X.shape[0]):
            model = dataset.subset(train_idx).fit_parameter_model(family)
            result = permutation_importance(
                model.estimator,
                X[test_idx],
                _to_targets(family, targets[test_idx]),
                n_repeats=n_repeats,
                random_state=seed,
            )
            acc += result.importances_mean
        per_family[family] = acc / kf.n_splits
        total += per_family[family]
    return total, per_family


def _to_targets(family, params):
    """Mirror the parameter model's log-space target transform."""
    from repro.core.parameter_model import _LOG_PARAMS, _to_target_space

    return _to_target_space(params, _LOG_PARAMS[family])


def test_fig15_feature_importance(ctx, report, benchmark):
    dataset = ctx.training_dataset(100)
    total, per_family = _importance_scores(dataset)

    order = np.argsort(total)[::-1]
    top10 = [(FEATURE_NAMES[i], total[i]) for i in order[:10]]
    lines = [
        "Figure 15 — top-10 features by permutation importance "
        "(AE_PL + AE_AL, 5-fold, 25 permutations)",
    ]
    for name, score in top10:
        lines.append(f"  {name:>20s}  {score:8.4f}")
    lines.append(
        "paper order: TotalInputBytes, TotalRowsProcessed, MaxDepth, "
        "NumOps, Project, Filter, Aggregate, Sort, Union, NumInputs"
    )
    lines.append(
        "note: in our workload the two data-size features are strongly "
        "correlated, so permutation importance concentrates their shared "
        "signal on TotalRowsProcessed (see EXPERIMENTS.md)"
    )
    report("fig15_feature_importance", "\n".join(lines))

    top_names = [name for name, _ in top10]
    # a data-size feature dominates, as in the paper
    assert top_names[0] == "TotalRowsProcessed"
    assert "TotalInputBytes" in top_names[:6]
    # structural features appear in the top 10
    assert {"MaxDepth", "NumOps"} & set(top_names)

    benchmark(lambda: _importance_scores(dataset, n_repeats=2, seed=1))


F1 = (
    "TotalInputBytes",
    "TotalRowsProcessed",
    "MaxDepth",
    "NumOps",
    "Project",
    "Filter",
)
F2 = ("TotalInputBytes", "TotalRowsProcessed")
F3 = tuple(f for f in F1 if f not in F2)


def test_sec57_feature_ablation(ctx, report, benchmark):
    dataset = ctx.training_dataset(100)
    actuals = ctx.actuals(100)

    results = {}
    for label, names in (
        ("F0", FEATURE_NAMES),
        ("F1", F1),
        ("F2", F2),
        ("F3", F3),
    ):
        cv = run_cross_validation(
            dataset,
            actuals,
            n_repeats=1,
            n_splits=5,
            seed=0,
            model_kwargs={"feature_names": tuple(names)},
        )
        results[label] = {
            family: cv.mean_error_at(family, 8)
            for family in ("power_law", "amdahl")
        }

    lines = [
        "Section 5.7 ablation — E(8) by feature set "
        "(paper: F0 0.27/0.24, F1 0.26/0.24, F2 0.35/0.30, F3 0.31/0.27 "
        "for AE_PL/AE_AL)",
        f"{'set':>4} {'AE_PL':>8} {'AE_AL':>8}",
    ]
    for label in ("F0", "F1", "F2", "F3"):
        lines.append(
            f"{label:>4} {results[label]['power_law']:8.3f} "
            f"{results[label]['amdahl']:8.3f}"
        )
    report("sec57_feature_ablation", "\n".join(lines))

    for family in ("power_law", "amdahl"):
        # F1 (top six) performs like the full set
        assert results["F1"][family] < results["F0"][family] * 1.3
        # reduced sets are no better than the full set (both halves matter)
        assert results["F2"][family] >= results["F0"][family] * 0.9
        assert results["F3"][family] >= results["F0"][family] * 0.9

    benchmark(
        lambda: run_cross_validation(
            dataset, actuals, n_repeats=1, n_splits=2, seed=1,
            families=("amdahl",),
            model_kwargs={"feature_names": F2},
        ).mean_error_at("amdahl", 8)
    )

"""Design ablation: the parametric PPM vs a non-parametric regressor.

Section 3.4 argues for the parametric approach: one training row per query
(103 rows) instead of one per (query, configuration) (103 x c rows), and
one model score per query instead of one per candidate configuration.
This bench quantifies the trade on our stack:

  - dataset size: 103 vs 103 x 48 rows;
  - training time and model size;
  - scoring cost per query for 48 candidate configurations;
  - accuracy of both at the sampled evaluation points.
"""

import time

import numpy as np

from repro.core.errors import e_metric
from repro.core.features import FEATURE_NAMES
from repro.export.format import export_model
from repro.ml.forest import RandomForestRegressor
from repro.ml.model_selection import KFold

REPORT_N = (1, 3, 8, 16, 32, 48)


def _nonparametric_rows(dataset):
    """One row per (query, n): features + n -> Sparklens time."""
    grid = dataset.n_grid
    X, y = [], []
    for i, qid in enumerate(dataset.query_ids):
        curve = dataset.sparklens_curves[qid]
        for j, n in enumerate(grid):
            X.append(np.append(dataset.features[i], float(n)))
            y.append(curve[j])
    return np.asarray(X), np.asarray(y)


def test_ablation_parametric_vs_nonparametric(ctx, report, benchmark):
    dataset = ctx.training_dataset(100)
    actuals = ctx.actuals(100)
    grid = dataset.n_grid

    # --- train both on the same fold split -------------------------------
    kf = KFold(5, shuffle=True, random_state=0)
    train_idx, test_idx = next(kf.split(len(dataset.query_ids)))
    train = dataset.subset(train_idx)
    test_ids = [dataset.query_ids[i] for i in test_idx]

    start = time.perf_counter()
    parametric = train.fit_parameter_model("power_law")
    t_param = time.perf_counter() - start

    X_np, y_np = _nonparametric_rows(train)
    start = time.perf_counter()
    nonparametric = RandomForestRegressor(
        n_estimators=100, random_state=0
    ).fit(X_np, np.log(y_np))
    t_nonparam = time.perf_counter() - start

    size_param = len(str(export_model(parametric.estimator)))
    size_nonparam = len(str(export_model(nonparametric)))

    # --- score the test queries at all 48 candidates ----------------------
    test_rows = np.stack(
        [dataset.features[dataset.query_ids.index(q)] for q in test_ids]
    )
    start = time.perf_counter()
    param_curves = {}
    for qid, row in zip(test_ids, test_rows):
        param_curves[qid] = parametric.predict_ppm(row).predict_curve(grid)
    s_param = time.perf_counter() - start

    start = time.perf_counter()
    nonparam_curves = {}
    for qid, row in zip(test_ids, test_rows):
        batch = np.column_stack(
            [np.tile(row, (len(grid), 1)), grid.astype(float)]
        )
        nonparam_curves[qid] = np.exp(nonparametric.predict(batch))
    s_nonparam = time.perf_counter() - start

    # --- accuracy ----------------------------------------------------------
    errs = {"parametric": [], "nonparametric": []}
    for n in REPORT_N:
        col = int(np.nonzero(grid == n)[0][0])
        actual = {q: actuals.times_by_query(n)[q] for q in test_ids}
        errs["parametric"].append(
            e_metric(actual, {q: float(param_curves[q][col]) for q in test_ids})
        )
        errs["nonparametric"].append(
            e_metric(
                actual, {q: float(nonparam_curves[q][col]) for q in test_ids}
            )
        )

    report(
        "ablation_parametric",
        "Ablation — parametric PPM vs non-parametric (features + n) "
        "regressor\n"
        f"  training rows:   {len(train.query_ids)} vs {len(y_np)}\n"
        f"  training time:   {1e3 * t_param:.0f} ms vs "
        f"{1e3 * t_nonparam:.0f} ms\n"
        f"  model size:      {size_param / 1e6:.2f} MB vs "
        f"{size_nonparam / 1e6:.2f} MB (exported)\n"
        f"  scoring (48 configs x {len(test_ids)} queries): "
        f"{1e3 * s_param:.1f} ms vs {1e3 * s_nonparam:.1f} ms\n"
        f"  E(n) parametric:    "
        + " ".join(f"{e:.2f}" for e in errs["parametric"])
        + f"\n  E(n) nonparametric: "
        + " ".join(f"{e:.2f}" for e in errs["nonparametric"])
        + "\npaper's argument: the parametric approach shrinks datasets, "
        "models, and scoring cost; accuracy stays comparable",
    )

    assert len(y_np) == len(train.query_ids) * len(grid)
    assert t_param < t_nonparam  # 48x fewer rows
    assert size_param < size_nonparam
    # parametric accuracy is not catastrophically worse anywhere
    ratio = np.array(errs["parametric"]) / np.maximum(
        np.array(errs["nonparametric"]), 1e-9
    )
    assert np.median(ratio) < 2.0

    row = test_rows[0]
    benchmark(lambda: parametric.predict_ppm(row).predict_curve(grid))

"""Figure 1: the price-performance trade-off for TPC-DS q94, SF=100.

The paper's motivating plot: average run time falls as executors are
added and then plateaus, while the executor occupancy (AUC, the red data
labels) keeps climbing — so past the knee you pay more for nothing.

Paper numbers (Azure Synapse): t drops from ~500 s to a ~100 s plateau
over n = 5..50; AUC climbs 507 → 2575 executor-seconds.  The shape —
monotone-ish descent, plateau past the knee, monotone AUC growth — is the
reproduction target.
"""

import numpy as np

from repro.engine.sweep import compile_plan, simulate_query_sweep
from repro.experiments.figures import render_series_table

N_SWEEP = (2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


def test_fig01_q94_tradeoff(ctx, report, benchmark):
    workload = ctx.workload(100)
    graph = workload.stage_graph("q94")
    cluster = ctx.cluster

    results = simulate_query_sweep(graph, N_SWEEP, cluster)
    times = np.array([r.runtime for r in results])
    aucs = np.array([r.auc for r in results])

    report(
        "fig01_price_perf_tradeoff",
        "Figure 1 — q94 SF=100: run time vs executors, AUC labels\n"
        + render_series_table(
            "executors", N_SWEEP, {"time_s": times, "AUC_es": aucs}
        )
        + f"\npaper: t ~500->~100s plateau, AUC 507->2575 monotone rising",
    )

    # shape assertions
    assert times[0] > 2.5 * times[-1]  # strong initial speedup
    knee_idx = int(np.argmin(times))
    assert times[knee_idx] * 1.25 > times[-1]  # plateau after the knee
    # occupancy climbs overall (wave quantization can dent single steps)
    assert aucs[-1] > 3 * aucs[0]
    assert np.mean(np.diff(aucs) > 0) >= 0.8

    # benchmark kernel: the whole q94 price-performance sweep off one
    # compiled plan (the figure's actual workload)
    compiled = compile_plan(graph)
    benchmark(
        lambda: compiled.sweep(N_SWEEP, cluster)[-1].runtime
    )

"""Figure 11: the distribution of elbow points L (Equations 7-9).

Paper findings reproduced: the vast majority of queries have L = 8 on the
actual curves (a handful land lower); AE_AL's predicted elbow is *always*
7 (a closed-form property of s + p/n on the [1, 48] grid); AE_PL's elbows
land on 8, 9, or 10.
"""

from collections import Counter

import numpy as np

from repro.core.selection import elbow_point


def _elbow_distribution(cv, actuals, dataset, source):
    grid = cv.n_grid
    elbows = []
    for fold in cv.folds:
        for qid in fold.test_ids:
            if source == "actual":
                curve = actuals.curve(qid, grid)
            elif source == "sparklens":
                curve = dataset.sparklens_curves[qid]
            else:
                curve = fold.predicted_curves[source][qid]
            elbows.append(elbow_point(grid, curve))
    return elbows


def test_fig11_elbow_points(ctx, report, benchmark):
    cv = ctx.cross_validation(100)
    actuals = ctx.actuals(100)
    dataset = ctx.training_dataset(100)

    lines = ["Figure 11 — elbow point L distribution (TPC-DS SF=100)"]
    dists = {}
    for label, source in (
        ("Actual", "actual"),
        ("S", "sparklens"),
        ("AE_PL", "power_law"),
        ("AE_AL", "amdahl"),
    ):
        elbows = _elbow_distribution(cv, actuals, dataset, source)
        dists[label] = elbows
        counts = Counter(elbows)
        dist = ", ".join(
            f"L={l}: {100 * c / len(elbows):.0f}%"
            for l, c in sorted(counts.items())
        )
        lines.append(f"  {label:>7s}: median {np.median(elbows):.0f}  ({dist})")
    lines.append(
        "paper: Actual mostly L=8 (13/103 lower); Sparklens ~8; AE_AL "
        "always 7; AE_PL in {8, 9, 10}"
    )
    report("fig11_elbow_points", "\n".join(lines))

    assert set(dists["AE_AL"]) == {7}  # the closed-form property
    assert 7 <= np.median(dists["Actual"]) <= 9
    counts_pl = Counter(dists["AE_PL"])
    in_8_10 = sum(c for l, c in counts_pl.items() if 8 <= l <= 10)
    assert in_8_10 / len(dists["AE_PL"]) > 0.7
    # elbows cluster tightly: predictions usable as the default strategy
    assert np.percentile(np.abs(
        np.array(dists["AE_PL"]) - np.median(dists["Actual"])
    ), 90) <= 3

    curve = actuals.curve("q94", cv.n_grid)
    benchmark(lambda: elbow_point(cv.n_grid, curve))

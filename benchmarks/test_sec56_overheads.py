"""Section 5.6: training and scoring overheads.

Paper numbers (103 TPC-DS queries / scale factor):
  - PPM fit on Sparklens estimates: ~0.3 ms per training data point;
  - random-forest training (single-threaded): ~79 ms;
  - model files: pickled 0.8/0.9 MB, ONNX 1.0/1.1 MB (AE_AL / AE_PL);
  - scikit-learn scoring: ~3.6 ms; ONNX inference: ~0.9 ms per query;
  - plan featurization: ~10.3 ms;
  - one-time ONNX load/setup: ~88.1 / ~47.1 ms.

Absolute numbers differ across hardware and stacks; the reproduction
targets the *profile*: sub-millisecond-to-millisecond per-query scoring,
~1 MB model files, one-time costs dominated by load.
"""

import time

import numpy as np

from repro.core.features import QueryFeatures
from repro.export.format import save_parameter_model
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer


def test_sec56_overheads(ctx, report, benchmark, tmp_path):
    dataset = ctx.training_dataset(100)

    # --- training ---------------------------------------------------------
    start = time.perf_counter()
    model_pl = dataset.fit_parameter_model("power_law")
    train_pl_ms = 1e3 * (time.perf_counter() - start)
    start = time.perf_counter()
    model_al = dataset.fit_parameter_model("amdahl")
    train_al_ms = 1e3 * (time.perf_counter() - start)

    # --- export (the ONNX stand-in) ---------------------------------------
    size_pl = save_parameter_model(model_pl, tmp_path / "ae_pl.json")
    size_al = save_parameter_model(model_al, tmp_path / "ae_al.json")

    # --- scoring -----------------------------------------------------------
    row = dataset.features[0]
    start = time.perf_counter()
    for _ in range(50):
        model_pl.predict_ppm(row)
    direct_ms = 1e3 * (time.perf_counter() - start) / 50

    runtime = PortableModelRuntime(tmp_path)
    scorer = PortablePPMScorer(runtime, "ae_pl")
    scorer.predict_ppm(row)  # triggers load + setup
    start = time.perf_counter()
    for _ in range(50):
        scorer.predict_ppm(row)
    portable_ms = 1e3 * (time.perf_counter() - start) / 50

    plan = ctx.workload(100).optimized_plan("q42")
    start = time.perf_counter()
    for _ in range(50):
        QueryFeatures.from_plan(plan)
    featurize_ms = 1e3 * (time.perf_counter() - start) / 50

    report(
        "sec56_overheads",
        "Section 5.6 — overheads (103 queries, SF=100)\n"
        f"  PPM fit per training point:  "
        f"{1e3 * dataset.fit_seconds_per_point:7.3f} ms   (paper ~0.3 ms)\n"
        f"  train AE_PL forest:          {train_pl_ms:7.1f} ms   (paper ~79 ms)\n"
        f"  train AE_AL forest:          {train_al_ms:7.1f} ms\n"
        f"  model file AE_PL:            {size_pl / 1024**2:7.2f} MB   "
        "(paper 0.9-1.1 MB)\n"
        f"  model file AE_AL:            {size_al / 1024**2:7.2f} MB   "
        "(paper 0.8-1.0 MB)\n"
        f"  direct (sklearn-style) score:{direct_ms:7.2f} ms   (paper ~3.6 ms)\n"
        f"  portable-runtime inference:  {portable_ms:7.2f} ms   (paper ~0.9 ms)\n"
        f"  one-time load / setup:       "
        f"{1e3 * runtime.mean_timing('load'):.1f} / "
        f"{1e3 * runtime.mean_timing('setup'):.1f} ms   (paper 88 / 47 ms)\n"
        f"  plan featurization:          {featurize_ms:7.2f} ms   "
        "(paper ~10.3 ms)",
    )

    # the profile the paper's design relies on
    assert dataset.fit_seconds_per_point < 0.005  # ms-scale label fitting
    assert 0.2e6 < size_pl < 5e6  # ~1 MB-scale model files
    assert 0.2e6 < size_al < 5e6
    assert size_al <= size_pl  # 2 outputs vs 3 -> smaller file
    assert portable_ms < 50.0  # fast enough for the live query path
    assert featurize_ms < 50.0

    benchmark(lambda: scorer.predict_ppm(row))

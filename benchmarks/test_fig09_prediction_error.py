"""Figure 9: E(n) for Sparklens, AE_PL, AE_AL — training and testing.

Paper observations being reproduced (Section 5.2):
  - errors are largest at small n, smallest at intermediate n,
    intermediate at large n — for fit (train) and prediction (test) alike;
  - the pattern matches Sparklens's own estimation error because the
    models are trained on Sparklens-augmented data (bias, not variance);
  - AE_AL fits better than AE_PL at small n, but AE_PL predicts better at
    n = 1 and 48.
"""

import numpy as np

from repro.experiments.figures import render_series_table

REPORT_N = (1, 3, 8, 16, 32, 48)


def test_fig09_prediction_error(ctx, report, benchmark):
    cv = ctx.cross_validation(100)

    tables = []
    series_by_split = {}
    for split in ("train", "test"):
        series = {
            "S": np.array(
                [cv.mean_error_at("sparklens", n, "test") for n in REPORT_N]
            ),
            "AE_PL": np.array(
                [cv.mean_error_at("power_law", n, split) for n in REPORT_N]
            ),
            "AE_AL": np.array(
                [cv.mean_error_at("amdahl", n, split) for n in REPORT_N]
            ),
        }
        series_by_split[split] = series
        std = {
            f"{k}_sd": np.array(
                [
                    cv.error_at(
                        "power_law" if k == "AE_PL" else "amdahl", n, split
                    ).std()
                    for n in REPORT_N
                ]
            )
            for k in ("AE_PL", "AE_AL")
        }
        tables.append(
            f"({'a' if split == 'train' else 'b'}) {split} dataset E(n):\n"
            + render_series_table(
                "n", REPORT_N, {**series, **std}, float_format="{:10.3f}"
            )
        )
    report(
        "fig09_prediction_error",
        "Figure 9 — E(n), "
        f"{ctx.cv_repeats}-repeated 5-fold cross-validation, TPC-DS SF=100\n"
        + "\n\n".join(tables)
        + "\npaper: errors largest at small n, smallest mid-range; models "
        "track Sparklens bias; not over-fitted",
    )

    test = series_by_split["test"]
    train = series_by_split["train"]
    for family in ("AE_PL", "AE_AL"):
        errs = test[family]
        assert errs[0] == errs.max()  # n=1 dominates
        assert errs[1:3].min() < 0.75 * errs[0]  # mid-range dip
        # bias-dominated: test errors within ~2x of train errors
        assert np.all(test[family] <= train[family] * 2.0 + 0.05)
    # AE_PL better than AE_AL at the extremes (paper's closing remark)
    assert test["AE_PL"][-1] < test["AE_AL"][-1]

    # benchmark kernel: one fold's error evaluation
    benchmark(lambda: [cv.mean_error_at("power_law", n) for n in REPORT_N])

"""Cross-validation splitters.

The paper's evaluation protocol (Section 5.1) is a 5-fold cross-validation
(80:20 train/test split over TPC-DS query templates) repeated 10 times with
different shuffles; no test query ever appears in the corresponding training
fold.  :class:`RepeatedKFold` implements exactly that protocol.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["KFold", "RepeatedKFold", "train_test_split"]


class KFold:
    """K-fold cross-validation splitter.

    Args:
        n_splits: number of folds (paper: 5).
        shuffle: shuffle sample indices before folding.
        random_state: seed for the shuffle.

    ``split`` yields ``(train_indices, test_indices)`` pairs; the test
    folds partition the dataset.
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = False,
        random_state: int | None = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        if not shuffle and random_state is not None:
            raise ValueError("random_state only makes sense with shuffle=True")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples_or_X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield train/test index pairs.

        Accepts either the sample count or an array-like whose first
        dimension is the sample count.
        """
        n = _n_samples(n_samples_or_X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n} samples"
            )
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


class RepeatedKFold:
    """K-fold CV repeated with different shuffles (paper: 10 × 5-fold).

    Args:
        n_splits: folds per repeat.
        n_repeats: number of repeats.
        random_state: seed; each repeat derives its own shuffle seed.
    """

    def __init__(
        self,
        n_splits: int = 5,
        n_repeats: int = 10,
        random_state: int | None = None,
    ) -> None:
        if n_repeats < 1:
            raise ValueError("n_repeats must be >= 1")
        self.n_splits = n_splits
        self.n_repeats = n_repeats
        self.random_state = random_state

    def split(self, n_samples_or_X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = _n_samples(n_samples_or_X)
        seed_rng = np.random.default_rng(self.random_state)
        for _ in range(self.n_repeats):
            fold_seed = int(seed_rng.integers(0, 2**31 - 1))
            kf = KFold(self.n_splits, shuffle=True, random_state=fold_seed)
            yield from kf.split(n)

    def split_by_repeat(
        self, n_samples_or_X
    ) -> Iterator[list[tuple[np.ndarray, np.ndarray]]]:
        """Yield one list of fold pairs per repeat (grouping used when the
        paper averages within each repeat before reporting spread)."""
        n = _n_samples(n_samples_or_X)
        seed_rng = np.random.default_rng(self.random_state)
        for _ in range(self.n_repeats):
            fold_seed = int(seed_rng.integers(0, 2**31 - 1))
            kf = KFold(self.n_splits, shuffle=True, random_state=fold_seed)
            yield list(kf.split(n))


def train_test_split(
    *arrays: np.ndarray,
    test_size: float = 0.2,
    random_state: int | None = None,
    shuffle: bool = True,
) -> list[np.ndarray]:
    """Split arrays into random train and test subsets.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` matching the input
    order, like scikit-learn.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = _n_samples(arrays[0])
    for arr in arrays[1:]:
        if _n_samples(arr) != n:
            raise ValueError("all arrays must have the same length")
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError("test_size leaves no training samples")
    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(indices)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    out: list[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.append(arr[train_idx])
        out.append(arr[test_idx])
    return out


def _n_samples(n_samples_or_X) -> int:
    if isinstance(n_samples_or_X, (int, np.integer)):
        return int(n_samples_or_X)
    return int(np.asarray(n_samples_or_X).shape[0])

"""Machine-learning substrate for the AutoExecutor reproduction.

The paper trains its parameter model with scikit-learn's
``RandomForestRegressor`` (100 estimators, default settings) and evaluates
feature relevance with permutation importance.  Scikit-learn is not available
in this environment, so this subpackage provides a from-scratch,
numpy-backed implementation of the pieces the paper uses:

- :class:`~repro.ml.tree.DecisionTreeRegressor` — CART regression trees with
  multi-output support (the PPM has 2–3 scalar targets per query).
- :class:`~repro.ml.forest.RandomForestRegressor` — bagged ensembles of the
  above, mirroring scikit-learn's regression defaults.
- :class:`~repro.ml.linear.LinearRegression` — ordinary least squares, used
  to fit the PPM functional forms (Section 3.4 of the paper).
- :mod:`~repro.ml.model_selection` — KFold / RepeatedKFold splitters and
  ``train_test_split`` for the paper's 10-repeated 5-fold cross-validation.
- :mod:`~repro.ml.importance` — permutation feature importance (Section 5.7).
- :mod:`~repro.ml.metrics` — regression metrics, including the paper's
  normalized total-absolute-error ``E(n)`` building block.
"""

from repro.ml.forest import RandomForestRegressor
from repro.ml.importance import permutation_importance
from repro.ml.linear import LinearRegression
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    total_absolute_error_ratio,
)
from repro.ml.model_selection import KFold, RepeatedKFold, train_test_split
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "LinearRegression",
    "KFold",
    "RepeatedKFold",
    "train_test_split",
    "permutation_importance",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "total_absolute_error_ratio",
]

"""Ordinary least-squares linear regression.

Used to fit the PPM functional forms (Section 3.4 of the paper):

- AE_PL: linear regression of ``log t(n)`` on ``log n`` over the
  non-saturating region yields ``log b`` (intercept) and ``a`` (slope).
- AE_AL: linear regression of ``t(n)`` on ``1/n`` yields ``s`` (intercept)
  and ``p`` (slope).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression"]


class LinearRegression:
    """Least-squares linear model ``y = X @ coef_ + intercept_``.

    Args:
        fit_intercept: include a bias term (default True).

    Supports multi-output ``y``; solved with :func:`numpy.linalg.lstsq`,
    which handles rank-deficient design matrices gracefully.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | float | None = None
        self.n_features_in_: int = 0
        self._y_was_1d = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValueError(f"X must be 1-D or 2-D, got shape {X.shape}")
        self._y_was_1d = y.ndim == 1
        y2d = y[:, None] if self._y_was_1d else y
        if X.shape[0] != y2d.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y2d, rcond=None)
        if self.fit_intercept:
            coef = solution[:-1]
            intercept = solution[-1]
        else:
            coef = solution
            intercept = np.zeros(y2d.shape[1])
        if self._y_was_1d:
            self.coef_ = coef[:, 0]
            self.intercept_ = float(intercept[0])
        else:
            self.coef_ = coef.T
            self.intercept_ = intercept
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("this LinearRegression is not fitted yet")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; the model was fit with "
                f"{self.n_features_in_}"
            )
        if self._y_was_1d:
            return X @ self.coef_ + self.intercept_
        return X @ self.coef_.T + self.intercept_

"""CART regression trees with multi-output support.

This is the tree substrate underneath :class:`repro.ml.forest.RandomForestRegressor`.
It implements the classic CART algorithm for regression:

- splits minimize the weighted sum of per-child output variance
  (equivalently, maximize variance reduction / MSE improvement);
- leaves predict the mean of the training targets that reach them;
- multi-output targets are handled by summing the variance criterion
  across outputs, exactly as scikit-learn does.

The implementation is vectorized with numpy: candidate split evaluation for
a feature is done with cumulative sums over the sorted targets, giving
``O(n log n)`` per feature per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTreeRegressor", "TreeNode"]

_LEAF = -1  # sentinel feature index marking leaf nodes


@dataclass
class TreeNode:
    """A single node in a fitted regression tree.

    Attributes:
        feature: index of the split feature, or ``-1`` for a leaf.
        threshold: split threshold; samples with ``x[feature] <= threshold``
            go left.
        left: index of the left child in the tree's node list (leaves: -1).
        right: index of the right child in the tree's node list (leaves: -1).
        value: mean target vector of the training samples at this node.
        n_samples: number of training samples that reached this node.
        impurity: total (summed over outputs) variance at this node.
    """

    feature: int
    threshold: float
    left: int
    right: int
    value: np.ndarray
    n_samples: int
    impurity: float

    @property
    def is_leaf(self) -> bool:
        return self.feature == _LEAF


@dataclass
class _Frontier:
    """Work item for the iterative tree builder."""

    indices: np.ndarray
    depth: int
    parent: int
    is_left: bool


def _best_split_all_features(
    X_node: np.ndarray,
    y_node: np.ndarray,
    candidates: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float] | None:
    """Find the best (feature, threshold) over all candidate features.

    Evaluation is fully vectorized: one column-wise argsort of the node's
    feature block, prefix sums of the (per-feature-sorted) targets, and a
    single SSE matrix of shape ``(n-1, n_candidates)`` scoring every split
    position of every candidate feature at once.  Splits minimize the
    total child sum-of-squared-deviations (summed over outputs).

    Returns ``None`` when no valid split exists (constant features, or
    ``min_samples_leaf`` unsatisfiable).
    """
    X_sub = X_node[:, candidates]
    n = X_sub.shape[0]

    order = np.argsort(X_sub, axis=0, kind="stable")
    xs = np.take_along_axis(X_sub, order, axis=0)
    ys = y_node[order]  # (n, n_candidates, n_outputs)

    csum = np.cumsum(ys, axis=0)
    csum2 = np.cumsum(ys * ys, axis=0)
    total = csum[-1]
    total2 = csum2[-1]

    counts_left = np.arange(1, n)[:, None]
    valid = xs[1:] != xs[:-1]
    valid &= counts_left >= min_samples_leaf
    valid &= (n - counts_left) >= min_samples_leaf
    if not np.any(valid):
        return None

    left_sum = csum[:-1]
    left_sum2 = csum2[:-1]
    right_sum = total - left_sum
    right_sum2 = total2 - left_sum2
    nl = counts_left[:, :, None].astype(float)
    nr = float(n) - nl

    score = (left_sum2 - left_sum * left_sum / nl).sum(axis=2)
    score += (right_sum2 - right_sum * right_sum / nr).sum(axis=2)
    score[~valid] = np.inf

    flat = int(np.argmin(score))
    pos, col = divmod(flat, score.shape[1])
    if not np.isfinite(score[pos, col]):
        return None
    threshold = 0.5 * (xs[pos, col] + xs[pos + 1, col])
    return int(candidates[col]), float(threshold)


class DecisionTreeRegressor:
    """CART regression tree.

    Args:
        max_depth: maximum tree depth; ``None`` grows until pure or until
            ``min_samples_split`` stops growth.
        min_samples_split: minimum samples required to consider splitting.
        min_samples_leaf: minimum samples in each child of a split.
        max_features: number of features examined per split.  ``None`` or
            ``1.0`` uses all features (scikit-learn's regression default);
            an ``int`` uses that many; a ``float`` in (0, 1] uses that
            fraction; ``"sqrt"`` / ``"log2"`` use the usual heuristics.
        random_state: seed (or :class:`numpy.random.Generator`) for feature
            subsampling.

    The estimator follows the scikit-learn protocol: ``fit(X, y)`` then
    ``predict(X)``.  ``y`` may be 1-D or 2-D; predictions mirror its shape.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.nodes_: list[TreeNode] = []
        self.n_features_in_: int = 0
        self.n_outputs_: int = 0
        self._y_was_1d = False
        self._compiled: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on training data ``X`` (n, d) and targets ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim == 1:
            self._y_was_1d = True
            y = y[:, None]
        elif y.ndim == 2:
            self._y_was_1d = False
        else:
            raise ValueError(f"y must be 1-D or 2-D, got shape {y.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")

        self.n_features_in_ = X.shape[1]
        self.n_outputs_ = y.shape[1]
        rng = _as_generator(self.random_state)
        n_candidates = _resolve_max_features(self.max_features, self.n_features_in_)

        self.nodes_ = []
        root_indices = np.arange(X.shape[0])
        stack = [_Frontier(root_indices, depth=0, parent=-1, is_left=False)]
        while stack:
            item = stack.pop()
            node_id = self._add_node(X, y, item)
            split = self._find_split(X, y, item, rng, n_candidates)
            if split is None:
                continue
            feature, threshold, left_idx, right_idx = split
            node = self.nodes_[node_id]
            node.feature = feature
            node.threshold = threshold
            stack.append(
                _Frontier(right_idx, item.depth + 1, parent=node_id, is_left=False)
            )
            stack.append(
                _Frontier(left_idx, item.depth + 1, parent=node_id, is_left=True)
            )
        self._compiled = None
        return self

    def _compile(self) -> tuple[np.ndarray, ...]:
        """Flatten the node list into parallel arrays for vectorized apply."""
        if self._compiled is None:
            features = np.array([n.feature for n in self.nodes_], dtype=int)
            thresholds = np.array(
                [n.threshold for n in self.nodes_], dtype=float
            )
            left = np.array([n.left for n in self.nodes_], dtype=int)
            right = np.array([n.right for n in self.nodes_], dtype=int)
            values = np.stack([n.value for n in self.nodes_])
            self._compiled = (features, thresholds, left, right, values)
        return self._compiled

    def _add_node(self, X: np.ndarray, y: np.ndarray, item: _Frontier) -> int:
        ys = y[item.indices]
        value = ys.mean(axis=0)
        impurity = float(((ys - value) ** 2).sum())
        node = TreeNode(
            feature=_LEAF,
            threshold=float("nan"),
            left=-1,
            right=-1,
            value=value,
            n_samples=int(item.indices.shape[0]),
            impurity=impurity,
        )
        self.nodes_.append(node)
        node_id = len(self.nodes_) - 1
        if item.parent >= 0:
            if item.is_left:
                self.nodes_[item.parent].left = node_id
            else:
                self.nodes_[item.parent].right = node_id
        return node_id

    def _find_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        item: _Frontier,
        rng: np.random.Generator,
        n_candidates: int,
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        indices = item.indices
        n = indices.shape[0]
        if n < self.min_samples_split or n < 2 * self.min_samples_leaf:
            return None
        if self.max_depth is not None and item.depth >= self.max_depth:
            return None
        ys = y[indices]
        if np.allclose(ys, ys[0]):
            return None

        if n_candidates >= self.n_features_in_:
            candidates = np.arange(self.n_features_in_)
        else:
            candidates = rng.choice(
                self.n_features_in_, size=n_candidates, replace=False
            )

        split = _best_split_all_features(
            X[indices], ys, candidates, self.min_samples_leaf
        )
        if split is None:
            return None
        best_feature, best_threshold = split

        mask = X[indices, best_feature] <= best_threshold
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if left_idx.size == 0 or right_idx.size == 0:  # numeric edge case
            return None
        return best_feature, best_threshold, left_idx, right_idx

    # ------------------------------------------------------------------
    # prediction / introspection
    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``; shape mirrors the training ``y``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; the tree was fit with "
                f"{self.n_features_in_}"
            )
        leaf_ids = self.apply(X)
        values = self._compile()[4][leaf_ids]
        if self._y_was_1d:
            return values[:, 0]
        return values

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf node index each row of ``X`` lands in.

        Traversal is vectorized: all rows descend one level per iteration,
        so the cost is ``O(n_rows * depth)`` numpy operations.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        features, thresholds, left, right, _ = self._compile()
        idx = np.zeros(X.shape[0], dtype=int)
        rows = np.arange(X.shape[0])
        while True:
            feats = features[idx]
            active = feats != _LEAF
            if not np.any(active):
                break
            act_rows = rows[active]
            act_idx = idx[active]
            go_left = X[act_rows, feats[active]] <= thresholds[act_idx]
            idx[active] = np.where(go_left, left[act_idx], right[act_idx])
        return idx

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (root-only tree has depth 0)."""
        self._check_fitted()
        depths = {0: 0}
        max_depth = 0
        for node_id, node in enumerate(self.nodes_):
            d = depths[node_id]
            if not node.is_leaf:
                depths[node.left] = d + 1
                depths[node.right] = d + 1
                max_depth = max(max_depth, d + 1)
        return max_depth

    @property
    def n_leaves_(self) -> int:
        self._check_fitted()
        return sum(1 for node in self.nodes_ if node.is_leaf)

    def feature_importances_raw(self) -> np.ndarray:
        """Impurity-based importances (unnormalized variance reductions)."""
        self._check_fitted()
        importances = np.zeros(self.n_features_in_)
        for node in self.nodes_:
            if node.is_leaf:
                continue
            left = self.nodes_[node.left]
            right = self.nodes_[node.right]
            gain = node.impurity - left.impurity - right.impurity
            importances[node.feature] += max(gain, 0.0)
        return importances

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized impurity-based feature importances (sum to 1)."""
        raw = self.feature_importances_raw()
        total = raw.sum()
        if total <= 0:
            return np.zeros_like(raw)
        return raw / total

    def _check_fitted(self) -> None:
        if not self.nodes_:
            raise RuntimeError("this DecisionTreeRegressor is not fitted yet")


def _as_generator(
    random_state: int | np.random.Generator | None,
) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def _resolve_max_features(
    max_features: int | float | str | None, n_features: int
) -> int:
    """Translate a scikit-learn style ``max_features`` spec to a count."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"unknown max_features spec: {max_features!r}")
    if isinstance(max_features, bool):
        raise ValueError("max_features must not be a bool")
    if isinstance(max_features, int):
        if max_features < 1:
            raise ValueError("integer max_features must be >= 1")
        return min(max_features, n_features)
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(round(max_features * n_features)))
    raise TypeError(f"unsupported max_features type: {type(max_features)!r}")

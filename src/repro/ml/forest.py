"""Random forest regression, mirroring scikit-learn's defaults.

The paper (Section 3.4, Section 5.6) trains its parameter model with
scikit-learn's ``RandomForestRegressor`` at default settings: 100
estimators, bootstrap sampling, and all features considered at each split
(the regression default).  This module reproduces that estimator on top of
:class:`repro.ml.tree.DecisionTreeRegressor`.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Args:
        n_estimators: number of trees (paper/scikit-learn default: 100).
        max_depth: per-tree depth cap.
        min_samples_split: per-tree split threshold.
        min_samples_leaf: per-tree leaf size floor.
        max_features: per-split feature subsample (``None`` = all features,
            the scikit-learn regression default).
        bootstrap: draw each tree's training set with replacement.
        random_state: seed controlling bootstrap draws and feature
            subsampling; fitting is deterministic given the seed.

    Supports multi-output ``y`` (the AE_PL parameter model predicts the
    triple ``(a, b, m)`` and AE_AL the pair ``(s, p)`` jointly).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] = []
        self.n_features_in_: int = 0
        self.n_outputs_: int = 0
        self._y_was_1d = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit ``n_estimators`` trees on bootstrap resamples of (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._y_was_1d = y.ndim == 1
        y2d = y[:, None] if self._y_was_1d else y
        if y2d.ndim != 2:
            raise ValueError(f"y must be 1-D or 2-D, got shape {y.shape}")
        if X.shape[0] != y2d.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")

        self.n_features_in_ = X.shape[1]
        self.n_outputs_ = y2d.shape[1]
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]

        self.estimators_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[sample], y2d[sample])
            self.estimators_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average the per-tree predictions."""
        if not self.estimators_:
            raise RuntimeError("this RandomForestRegressor is not fitted yet")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; the forest was fit with "
                f"{self.n_features_in_}"
            )
        acc = np.zeros((X.shape[0], self.n_outputs_))
        for tree in self.estimators_:
            pred = tree.predict(X)
            if pred.ndim == 1:
                pred = pred[:, None]
            acc += pred
        acc /= len(self.estimators_)
        if self._y_was_1d:
            return acc[:, 0]
        return acc

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean of the per-tree normalized impurity importances."""
        if not self.estimators_:
            raise RuntimeError("this RandomForestRegressor is not fitted yet")
        acc = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            acc += tree.feature_importances_
        return acc / len(self.estimators_)

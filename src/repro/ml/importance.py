"""Permutation feature importance (paper Section 5.7).

The paper ranks AutoExecutor's features by permutation importance on the
testing datasets, repeating each feature permutation 100 times and averaging
over 10 repeats x 5 folds x 100 permutations.  This module implements the
standard algorithm: the importance of a feature is the drop in model score
when that feature's column is randomly shuffled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml.metrics import r2_score

__all__ = ["PermutationImportanceResult", "permutation_importance"]


@dataclass(frozen=True)
class PermutationImportanceResult:
    """Result of a permutation importance run.

    Attributes:
        importances: array of shape ``(n_features, n_repeats)`` with the
            per-permutation score drops.
        importances_mean: per-feature mean score drop.
        importances_std: per-feature standard deviation of the score drop.
    """

    importances: np.ndarray

    @property
    def importances_mean(self) -> np.ndarray:
        return self.importances.mean(axis=1)

    @property
    def importances_std(self) -> np.ndarray:
        return self.importances.std(axis=1)


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 10,
    random_state: int | None = None,
    scorer: Callable[[np.ndarray, np.ndarray], float] = r2_score,
) -> PermutationImportanceResult:
    """Compute permutation importances of ``model`` on ``(X, y)``.

    Args:
        model: fitted estimator exposing ``predict``.
        X: evaluation features, shape ``(n, d)``.
        y: evaluation targets.
        n_repeats: shuffles per feature (paper: 100).
        random_state: seed for the shuffles.
        scorer: score function where larger is better (default R^2).

    Returns:
        A :class:`PermutationImportanceResult` whose ``importances[f, r]``
        is ``baseline_score - score_with_feature_f_shuffled`` for repeat r.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = np.random.default_rng(random_state)

    baseline = scorer(y, model.predict(X))
    n_features = X.shape[1]
    importances = np.empty((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            rng.shuffle(shuffled[:, feature])
            score = scorer(y, model.predict(shuffled))
            importances[feature, repeat] = baseline - score
    return PermutationImportanceResult(importances=importances)

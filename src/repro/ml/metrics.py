"""Regression metrics.

Includes :func:`total_absolute_error_ratio`, the building block of the
paper's accuracy metric (Equation 6):

    E(n) = sum_q |t_hat_q(n) - t_q(n)| / sum_q t_q(n)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "total_absolute_error_ratio",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics are undefined for empty inputs")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of squared residuals (averaged over all outputs)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of absolute residuals (averaged over all outputs)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination, uniformly averaged over outputs.

    Constant targets score 1.0 on a perfect prediction and 0.0 otherwise,
    matching scikit-learn's convention.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.ndim == 1:
        y_true = y_true[:, None]
        y_pred = y_pred[:, None]
    scores = []
    for col in range(y_true.shape[1]):
        t = y_true[:, col]
        p = y_pred[:, col]
        ss_res = float(np.sum((t - p) ** 2))
        ss_tot = float(np.sum((t - t.mean()) ** 2))
        if ss_tot == 0.0:
            scores.append(1.0 if ss_res == 0.0 else 0.0)
        else:
            scores.append(1.0 - ss_res / ss_tot)
    return float(np.mean(scores))


def total_absolute_error_ratio(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Paper Equation 6: total absolute error over total actual value.

    The sums run over all entries.  Raises when the denominator is zero
    (the metric is undefined for all-zero actuals).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    denom = float(np.sum(y_true))
    if denom == 0.0:
        raise ValueError("E(n) is undefined when sum of actual values is 0")
    return float(np.sum(np.abs(y_pred - y_true)) / denom)

"""Spark-like serverless query engine simulator.

This subpackage is the substrate the paper evaluates on (Azure Synapse
Spark pools).  It provides:

- :mod:`~repro.engine.plan` — logical query plans over the 14 TPC-DS
  operator kinds, with cardinality and input-source annotations.
- :mod:`~repro.engine.optimizer` — a rule-based optimizer with an extension
  point for prediction-based rules (the surface AutoExecutor plugs into).
- :mod:`~repro.engine.stages` — physical staging: plan → DAG of stages,
  each with task counts and durations (shuffle boundaries at exchanges).
- :mod:`~repro.engine.cluster` — the cluster manager: node shapes, executor
  placement, and the gradual executor-provisioning lag the paper observes.
- :mod:`~repro.engine.allocation` — executor allocation policies: static,
  Spark-style reactive dynamic allocation, predictive (rule-driven)
  allocation with reactive deallocation, and shared-pool admission
  budgets.
- :mod:`~repro.engine.execution` — the shared execution core: the one
  copy of the simulator physics (wave assignment, spill × coordination,
  idle release, skylines) both the dedicated-cluster scheduler and the
  fleet engine drive, plus the compiled-plan representation.
- :mod:`~repro.engine.faults` — deterministic, seed-driven fault
  injection composed over the execution core: executor crashes with task
  re-execution, straggler slowdowns, and preemptible spot capacity with
  a discounted cost model and reclamation events.
- :mod:`~repro.engine.scheduler` — the discrete-event task scheduler that
  produces query run times, executor skylines, and telemetry.
- :mod:`~repro.engine.sweep` — the batched simulation backend: compile a
  plan once, evaluate every candidate executor count in one vectorized
  wave-scheduling pass (bit-identical to the event-driven scheduler).
- :mod:`~repro.engine.skyline` — executor-allocation skylines and AUC
  (total executor occupancy, the paper's cost metric).
- :mod:`~repro.engine.metrics` — per-query telemetry records (one row per
  query, mirroring Peregrine/SparkCruise collection).
- :mod:`~repro.engine.session` — multi-query Spark applications (Figure 7).
"""

from repro.engine.allocation import (
    BudgetAllocation,
    DynamicAllocation,
    PredictiveAllocation,
    StaticAllocation,
)
from repro.engine.cluster import Cluster, ExecutorSpec, NodeSpec
from repro.engine.execution import ExecutionCore
from repro.engine.faults import FaultInjector, FaultPlan, FaultStats, SpotMarket
from repro.engine.metrics import QueryTelemetry
from repro.engine.optimizer import Optimizer, OptimizerContext, OptimizerRule
from repro.engine.plan import InputSource, LogicalPlan, OperatorKind, PlanNode
from repro.engine.scheduler import SimulationResult, simulate_query
from repro.engine.session import SparkApplication
from repro.engine.skyline import Skyline
from repro.engine.stages import Stage, StageGraph, compile_stages
from repro.engine.sweep import CompiledPlan, compile_plan, simulate_query_sweep

__all__ = [
    "OperatorKind",
    "PlanNode",
    "LogicalPlan",
    "InputSource",
    "Optimizer",
    "OptimizerRule",
    "OptimizerContext",
    "Stage",
    "StageGraph",
    "compile_stages",
    "NodeSpec",
    "ExecutorSpec",
    "Cluster",
    "StaticAllocation",
    "DynamicAllocation",
    "PredictiveAllocation",
    "BudgetAllocation",
    "ExecutionCore",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "SpotMarket",
    "simulate_query",
    "simulate_query_sweep",
    "CompiledPlan",
    "compile_plan",
    "SimulationResult",
    "Skyline",
    "QueryTelemetry",
    "SparkApplication",
]

"""Cluster manager: node shapes, executor placement, provisioning lag.

The paper's testbed is Azure Synapse Spark pools with medium nodes (8 cores,
64 GB) hosting at most two executors each, with executors of ``ec = 4``
cores and 28 GB.  Two behaviours of the cluster manager matter to the
results and are modeled here:

- **capacity**: how many executors fit, given node shape and the two-per-node
  placement constraint (Section 5.1);
- **provisioning lag**: granted executors arrive *gradually* — the paper
  measures ~20–30 s before a Rule request for 25–48 executors is fully
  allocated (Section 5.4, Figure 12) — so short queries may finish before
  their full allocation lands.

Grants are mediated by a :class:`CapacitySource`: the dedicated-cluster
default (:data:`UNBOUNDED`) honours every clamped request, while a shared
serverless pool (``repro.fleet``'s capacity arbiter) may grant fewer —
whatever fits in the pool at that instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = [
    "NodeSpec",
    "ExecutorSpec",
    "Cluster",
    "CapacitySource",
    "UnboundedCapacity",
    "UNBOUNDED",
]


@runtime_checkable
class CapacitySource(Protocol):
    """Where executor grants come from.

    A dedicated cluster grants everything (:class:`UnboundedCapacity`);
    a shared pool grants whatever capacity is currently uncommitted and
    expects it back via :meth:`release`.
    """

    def acquire(self, count: int) -> int:
        """Grant up to ``count`` executors; returns the number granted."""
        ...  # pragma: no cover

    def release(self, count: int) -> None:
        """Return ``count`` previously acquired executors."""
        ...  # pragma: no cover


class UnboundedCapacity:
    """Dedicated-cluster semantics: every request is granted in full."""

    def acquire(self, count: int) -> int:
        return max(0, int(count))

    def release(self, count: int) -> None:
        return None


#: Shared default source — stateless, so one instance serves everyone.
UNBOUNDED = UnboundedCapacity()


@dataclass(frozen=True)
class NodeSpec:
    """Shape of one cluster node (paper: medium = 8 cores / 64 GB)."""

    cores: int = 8
    memory_gb: float = 64.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_gb <= 0:
            raise ValueError("node spec must have positive cores and memory")


@dataclass(frozen=True)
class ExecutorSpec:
    """Shape of one executor (paper: ec = 4 cores, 28 GB)."""

    cores: int = 4
    memory_gb: float = 28.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_gb <= 0:
            raise ValueError("executor spec must have positive cores and memory")


@dataclass(frozen=True)
class Cluster:
    """A pool of identical nodes with a gradual provisioning model.

    Attributes:
        node: node shape.
        executor: executor shape.
        max_nodes: pool size cap.
        max_executors_per_node: placement constraint (paper: 2).
        base_grant_lag: seconds from a request to the first grant batch.
        grant_batch: executors granted per provisioning batch.
        grant_interval: seconds between provisioning batches.
    """

    node: NodeSpec = NodeSpec()
    executor: ExecutorSpec = ExecutorSpec()
    max_nodes: int = 32
    max_executors_per_node: int = 2
    base_grant_lag: float = 2.0
    grant_batch: int = 4
    grant_interval: float = 4.0

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if self.max_executors_per_node < 1:
            raise ValueError("max_executors_per_node must be >= 1")
        if self.executors_per_node < 1:
            raise ValueError(
                "executor spec does not fit on the node spec at all"
            )
        if self.grant_batch < 1 or self.grant_interval <= 0:
            raise ValueError("grant schedule must make progress")

    @property
    def executors_per_node(self) -> int:
        """Executors that fit one node under cores, memory, and placement."""
        by_cores = self.node.cores // self.executor.cores
        by_memory = int(self.node.memory_gb // self.executor.memory_gb)
        return max(0, min(by_cores, by_memory, self.max_executors_per_node))

    @property
    def max_executors(self) -> int:
        """Total executor capacity of the pool."""
        return self.max_nodes * self.executors_per_node

    @property
    def cores_per_executor(self) -> int:
        return self.executor.cores

    @property
    def executor_memory_bytes(self) -> float:
        return self.executor.memory_gb * 1024**3

    def clamp_request(self, n: int) -> int:
        """Cap an executor request at pool capacity (requests are
        non-binding; the manager may grant fewer — Section 4.5)."""
        return max(0, min(int(n), self.max_executors))

    def grant_times(self, request_time: float, count: int) -> list[float]:
        """Arrival times for ``count`` newly requested executors.

        Executors arrive in batches of ``grant_batch`` starting
        ``base_grant_lag`` after the request, one batch every
        ``grant_interval`` seconds — reproducing the gradual ~20–30 s ramp
        the paper measures for 25–48-executor requests.
        """
        return self.grant_schedule(request_time, self.clamp_request(count))

    def grant_schedule(self, request_time: float, count: int) -> list[float]:
        """The batch-ramp arrival schedule for exactly ``count`` executors.

        Unlike :meth:`grant_times` this does not clamp: the caller (a
        :class:`CapacitySource`) has already decided how many executors
        are actually granted.
        """
        times: list[float] = []
        for i in range(max(0, int(count))):
            batch = i // self.grant_batch
            times.append(
                request_time + self.base_grant_lag + batch * self.grant_interval
            )
        return times

    def provision(
        self,
        request_time: float,
        count: int,
        source: CapacitySource = UNBOUNDED,
    ) -> list[float]:
        """Request ``count`` executors through a capacity source.

        The request is clamped to pool shape, then offered to ``source``;
        only what the source grants is scheduled.  Returns the arrival
        times of the granted executors (possibly fewer than requested —
        requests are non-binding, Section 4.5).
        """
        granted = source.acquire(self.clamp_request(count))
        return self.grant_schedule(request_time, granted)

"""Spark applications: multi-query sessions.

Figure 7 of the paper shows AutoExecutor inside an *interactive* Spark
application: each submitted query gets a predictive allocation request
during optimization, and between queries the reactive deallocation releases
idle executors.  :class:`SparkApplication` reproduces that lifecycle: it
owns an optimizer (with any injected prediction rules), runs queries
sequentially with think-time gaps, stitches the per-query skylines into an
application-level skyline, and emits one telemetry row per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.allocation import PredictiveAllocation, StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.metrics import QueryTelemetry
from repro.engine.optimizer import Optimizer
from repro.engine.plan import LogicalPlan
from repro.engine.scheduler import (
    DEFAULT_SCHEDULER_CONFIG,
    SchedulerConfig,
    simulate_query,
)
from repro.engine.skyline import Skyline
from repro.engine.stages import (
    DEFAULT_COMPILER_CONFIG,
    StageCompilerConfig,
    compile_stages,
)
from repro.engine.sweep import simulate_query_sweep

__all__ = ["SparkApplication"]


@dataclass
class SparkApplication:
    """A sequential multi-query application on a shared cluster.

    Args:
        cluster: the pool the application runs in.
        optimizer: optimizer used for every query; inject an
            AutoExecutor rule here to enable predictive allocation.
        default_executors: fleet present at application start and used
            when no prediction rule makes a request (the production
            default the paper criticizes is 2).
        idle_timeout: reactive deallocation threshold between queries.
        compiler_config / scheduler_config: engine knobs.
    """

    cluster: Cluster
    optimizer: Optimizer = field(default_factory=Optimizer)
    default_executors: int = 2
    idle_timeout: float = 60.0
    compiler_config: StageCompilerConfig = DEFAULT_COMPILER_CONFIG
    scheduler_config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG

    def __post_init__(self) -> None:
        self._clock = 0.0
        self._fleet = self.default_executors
        self.skyline = Skyline()
        self.telemetry: list[QueryTelemetry] = []
        self.skyline.record(0.0, self._fleet)

    @property
    def clock(self) -> float:
        """Application-level wall clock (seconds since app start)."""
        return self._clock

    def idle(self, seconds: float) -> None:
        """Advance the clock with no query running (think time).

        Reactive deallocation applies: if the gap exceeds the idle timeout,
        the fleet shrinks to the application minimum (1 executor kept for
        the driver's peer, mirroring DA's min).
        """
        if seconds < 0:
            raise ValueError("cannot idle a negative duration")
        if seconds >= self.idle_timeout and self._fleet > 1:
            release_at = self._clock + self.idle_timeout
            self.skyline.record(release_at, 1)
            self._fleet = 1
        self._clock += seconds

    def run_query(self, plan: LogicalPlan) -> QueryTelemetry:
        """Optimize and execute one query; returns its telemetry row.

        If a prediction rule requested executors during optimization, the
        query runs under the hybrid predictive policy (scale-up by the
        request, reactive idle deallocation); otherwise it keeps the
        application's current static fleet.
        """
        context = self.optimizer.optimize(plan)
        requested = context.requested_executors
        if requested is not None:
            policy = PredictiveAllocation(
                predicted_executors=requested,
                initial_executors=self._fleet,
                idle_timeout=self.idle_timeout,
            )
        else:
            requested = max(self._fleet, 1)
            policy = StaticAllocation(requested)

        graph = compile_stages(context.plan, self.compiler_config)
        if isinstance(policy, StaticAllocation):
            # No mid-query scaling to play out: take the engine's batched
            # fast path (bit-identical to the event-driven run).
            result = simulate_query_sweep(
                graph, [policy.n], self.cluster, self.scheduler_config
            )[0]
        else:
            result = simulate_query(
                graph, policy, self.cluster, self.scheduler_config
            )

        # Stitch the query's skyline into the application skyline.
        for t, c in result.skyline.points:
            self.skyline.record(self._clock + t, c)
        self._clock += result.runtime
        self._fleet = result.skyline.value_at(result.runtime)

        row = QueryTelemetry(
            query_id=plan.query_id,
            plan=context.plan,
            runtime=result.runtime,
            executors_requested=requested,
            max_executors=result.max_executors,
            auc=result.auc,
            skyline=result.skyline,
            cores_per_executor=self.cluster.cores_per_executor,
            annotations=dict(context.annotations),
        )
        self.telemetry.append(row)
        return row

    def total_occupancy(self) -> float:
        """Application-level AUC up to the current clock."""
        return self.skyline.auc(self._clock)

"""Deterministic fault injection: crashes, stragglers, spot capacity.

The paper's price-performance tradeoff (right-sizing executor counts from
predicted runtime curves) assumes every granted executor runs to
completion at full speed.  Real serverless pools do not: executors crash
and take their in-flight tasks with them, stragglers run tasks several
times slower than their profile says, and preemptible ("spot") capacity
is cheaper precisely because the provider may reclaim it mid-run.  All
three bend the runtime curve the optimizer reasons over — lost work is
re-executed at full price, replacements pay the provisioning ramp again,
and a discount only wins while the reclamation rate stays below the
point where wasted work eats it.

This module is a *perturbation layer composed over the engine*, not a
fork of it:

- :class:`FaultPlan` — the seed-driven specification: crash hazard,
  straggler probability/slowdown, and an optional :class:`SpotMarket`
  (spot fraction, price discount, reclamation hazard).  A plan with
  every rate at zero is **inert**: no injector is built, no RNG is
  drawn, no event is scheduled, and the run is bit-identical to an
  unperturbed one (asserted across the whole TPC-DS workload in
  ``tests/engine/test_fault_parity.py`` and gated in CI by
  ``benchmarks/perf/compare.py``).
- :class:`FaultInjector` — one query's fault state: per-entity RNG
  streams plus the :class:`FaultStats` ledger.  Drivers ask it for each
  arriving executor's failure time and schedule the resulting
  ``exec_fail`` event on their own heap; the
  :class:`~repro.engine.execution.ExecutionCore` asks it for perturbed
  task durations and reports killed work.
- :class:`FaultStats` — the accounting the metrics layer consumes:
  crashes vs reclamations, task retries, wasted (destroyed) task
  seconds, and the spot/on-demand executor-second split that prices a
  run under the spot discount.

**Determinism contract.**  Every random draw derives from
``(FaultPlan.seed, query_key, entity)`` through a
:class:`numpy.random.SeedSequence` — never from event interleaving, wall
clock, or Python's salted ``hash``.  Executor ``eid`` draws happen at
executor arrival, straggler masks are materialized per stage, and both
are keyed by stable integer identities, so two serves of the same stream
with the same seed replay byte-identical faults — and whole serves are
byte-identical whenever the allocator is deterministic too (the online
prediction service charges *measured* wall-clock selection overhead into
the stream; turn ``charge_prediction_overhead`` off to make such serves
byte-stable).  Different seeds genuinely differ.  The determinism
regression suite (``tests/fleet/test_faults.py``) flushes out any RNG
not derived from the run seed.

**Failure semantics.**  A failing executor is removed at the drawn
instant; its in-flight tasks lose all progress (the destroyed
task-seconds are the ``wasted_task_seconds`` ledger entry) and re-enter
the pending queue to be re-executed from scratch.  With
``replace_failed=True`` (default) the executor's *grant survives the
failure*: the slot is re-provisioned through the cluster's normal grant
ramp — in the fleet, the capacity arbiter's reservation is untouched, so
a crash never silently shrinks a query's admission.  With
``replace_failed=False`` the capacity is returned to its source and the
query runs degraded unless a scaling policy re-acquires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

import numpy as np

__all__ = ["SpotMarket", "FaultPlan", "FaultStats", "FaultInjector"]

# SeedSequence spawn domains: one namespace per random entity kind, so an
# executor's lifetime stream can never collide with a stage's straggler
# mask even when their integer ids coincide.
_EXECUTOR_DOMAIN = 1
_STRAGGLER_DOMAIN = 2


@dataclass(frozen=True)
class SpotMarket:
    """Preemptible capacity: cheaper executors the provider may reclaim.

    Attributes:
        fraction: probability a granted executor is a spot instance
            (drawn per executor at arrival; 1.0 = an all-spot pool).
        discount: spot price as a fraction of the on-demand price
            (0.35 ≈ the typical 60–70 % spot saving).
        reclaim_rate: reclamation hazard in events per spot
            executor-second (``1/600`` = one reclamation per ten
            spot-executor-minutes on average).
    """

    fraction: float = 1.0
    discount: float = 0.35
    reclaim_rate: float = 1.0 / 600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("spot fraction must be in [0, 1]")
        if not 0.0 <= self.discount <= 1.0:
            raise ValueError("spot discount must be in [0, 1]")
        if self.reclaim_rate < 0.0:
            raise ValueError("reclaim rate cannot be negative")


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven perturbation spec for one run (or one whole fleet).

    Attributes:
        seed: root of every random draw; runs with the same seed replay
            the same faults byte-for-byte.
        crash_rate: executor crash hazard in events per executor-second
            (applies to on-demand and spot instances alike).  Keep every
            hazard well under ``1 / longest task duration``: a task only
            finishes when it outlives its executor, so its expected
            attempt count grows like ``e^(hazard x duration)`` and a
            hazard past that scale makes the run astronomically long.
        straggler_rate: probability a task is a straggler; stragglers
            are intrinsic to the ``(stage, task)`` identity, so a
            re-executed straggler straggles again.
        straggler_factor: slowdown multiplier straggler tasks run at.
        spot: optional preemptible-capacity market; ``None`` keeps the
            pool all on-demand.
        replace_failed: whether a failed executor's grant survives — the
            slot is re-provisioned through the normal grant ramp
            (default).  ``False`` returns the capacity to its source;
            without a scaling policy to win it back the query runs on
            whatever survives (and a query that loses *everything* with
            work pending is a stall, reported as such by the drivers).
    """

    seed: int = 0
    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    spot: SpotMarket | None = None
    replace_failed: bool = True

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("fault seed must be a non-negative integer")
        if self.crash_rate < 0.0:
            raise ValueError("crash rate cannot be negative")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError("straggler rate must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("stragglers cannot run faster than profile")

    @property
    def active(self) -> bool:
        """Whether this plan perturbs anything at all.

        An inactive plan (every rate zero, no spot market) builds no
        injector: the engine takes the exact unperturbed code path, the
        zero-fault bit-identity contract.
        """
        return (
            self.crash_rate > 0.0
            or self.straggler_rate > 0.0
            or self.spot is not None
        )

    def injector(self, query_key: int = 0) -> "FaultInjector | None":
        """Build one query's injector, or ``None`` for an inert plan.

        Args:
            query_key: stable per-query identity (the fleet uses the
                arrival-stream position) separating the RNG streams of
                concurrent queries under one seed.
        """
        if not self.active:
            return None
        return FaultInjector(self, query_key)


@dataclass
class FaultStats:
    """One run's fault ledger (merged fleet-wide by the metrics layer).

    Attributes:
        crashes: on-demand/involuntary executor failures.
        reclamations: spot executors taken back by the provider.
        replacements: failed executors re-provisioned under
            ``replace_failed``.
        tasks_started: task assignments, re-executions included.
        tasks_killed: in-flight tasks destroyed by failures (each one
            re-enters the pending queue, so this is also the retry
            count).
        wasted_task_seconds: task progress destroyed by failures — work
            that was paid for on the skyline but must be redone.
        spot_executor_seconds: executor-seconds served by spot
            instances (billed at ``spot_discount``).
        ondemand_executor_seconds: executor-seconds served by on-demand
            instances (billed at full price).
        spot_discount: the spot price fraction in effect (1.0 when the
            plan has no spot market).
    """

    crashes: int = 0
    reclamations: int = 0
    replacements: int = 0
    tasks_started: int = 0
    tasks_killed: int = 0
    wasted_task_seconds: float = 0.0
    spot_executor_seconds: float = 0.0
    ondemand_executor_seconds: float = 0.0
    spot_discount: float = 1.0

    @property
    def failures(self) -> int:
        """Executor losses of either cause."""
        return self.crashes + self.reclamations

    @property
    def task_retries(self) -> int:
        """Re-executions forced by failures (== ``tasks_killed``)."""
        return self.tasks_killed

    @property
    def billed_executor_seconds(self) -> float:
        """On-demand-equivalent occupancy after the spot discount."""
        return (
            self.ondemand_executor_seconds
            + self.spot_executor_seconds * self.spot_discount
        )

    def as_dict(self) -> dict[str, float]:
        """Flat numeric view (determinism tests serialize this)."""
        out = {f.name: float(getattr(self, f.name)) for f in fields(self)}
        out["billed_executor_seconds"] = float(self.billed_executor_seconds)
        return out

    @classmethod
    def merged(cls, parts: Iterable["FaultStats"]) -> "FaultStats":
        """Sum ledgers across queries (fleet roll-up).

        The discount of the merged ledger is the parts' common
        non-default discount (fault plans are fleet-wide, so it never
        actually varies) — an all-zero ledger from an idle pool must not
        reset it back to full price.  An empty merge is the all-zero
        ledger.
        """
        total = cls()
        for part in parts:
            total.crashes += part.crashes
            total.reclamations += part.reclamations
            total.replacements += part.replacements
            total.tasks_started += part.tasks_started
            total.tasks_killed += part.tasks_killed
            total.wasted_task_seconds += part.wasted_task_seconds
            total.spot_executor_seconds += part.spot_executor_seconds
            total.ondemand_executor_seconds += part.ondemand_executor_seconds
            if part.spot_discount != 1.0:
                total.spot_discount = part.spot_discount
        return total


class FaultInjector:
    """One query's fault state: seeded RNG streams plus the ledger.

    The injector is deliberately split from the execution physics: the
    :class:`~repro.engine.execution.ExecutionCore` owns *what a failure
    does* (kill in-flight work, requeue it, step the skyline) while the
    injector owns *when failures happen* and *what they cost*.  Drivers
    wire the two together: they schedule the failure time this class
    draws, route the resulting event into ``ExecutionCore.fail_executor``,
    and hand the outcome back to :meth:`on_failed` for accounting.

    Lifecycle per executor: :meth:`on_added` at arrival (classifies
    spot/on-demand, draws the failure time), then exactly one of
    :meth:`on_failed` (the failure fired while it was alive),
    :meth:`on_removed` (idle-released first), or :meth:`finalize` (alive
    at query completion) closes its billing interval.
    """

    def __init__(self, plan: FaultPlan, query_key: int = 0) -> None:
        if query_key < 0:
            raise ValueError("query_key must be a non-negative integer")
        self.plan = plan
        self.query_key = query_key
        self.stats = FaultStats(
            spot_discount=plan.spot.discount if plan.spot is not None else 1.0
        )
        # eid -> (birth time, is_spot, failure cause if one was drawn)
        self._open: dict[int, tuple[float, bool, str | None]] = {}
        self._straggler_masks: dict[int, np.ndarray] = {}
        self._finalized = False

    def _rng(self, domain: int, key: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=(self.plan.seed, self.query_key, domain, key)
            )
        )

    # --- executors -------------------------------------------------------
    def on_added(self, now: float, eid: int) -> float | None:
        """Classify an arriving executor and draw its failure time.

        Returns the absolute clock time the executor fails, or ``None``
        if it lives forever; the driver schedules the returned time as
        an ``exec_fail`` event on its heap.
        """
        rng = self._rng(_EXECUTOR_DOMAIN, eid)
        spot = self.plan.spot
        is_spot = spot is not None and bool(rng.random() < spot.fraction)
        hazard = self.plan.crash_rate
        if is_spot:
            hazard += spot.reclaim_rate
        if hazard <= 0.0:
            self._open[eid] = (now, is_spot, None)
            return None
        lifetime = float(rng.exponential(1.0 / hazard))
        # Competing risks: attribute the failure to reclamation with its
        # share of the combined hazard (on-demand failures are always
        # crashes).
        cause = "crash"
        if is_spot and rng.random() < spot.reclaim_rate / hazard:
            cause = "reclaim"
        self._open[eid] = (now, is_spot, cause)
        return now + lifetime

    def _close(self, now: float, eid: int) -> tuple[bool, str | None]:
        birth, is_spot, cause = self._open.pop(eid)
        span = now - birth
        if is_spot:
            self.stats.spot_executor_seconds += span
        else:
            self.stats.ondemand_executor_seconds += span
        return is_spot, cause

    def on_removed(self, now: float, eid: int) -> None:
        """An executor left voluntarily (idle release): close billing."""
        self._close(now, eid)

    def on_failed(self, now: float, eid: int, killed: int, wasted: float) -> str:
        """A scheduled failure fired while the executor was alive.

        Args:
            now: failure instant.
            eid: the executor that died.
            killed: in-flight tasks destroyed (from
                ``ExecutionCore.fail_executor``).
            wasted: task-seconds of progress destroyed.

        Returns:
            The failure cause — ``"crash"`` or ``"reclaim"`` — so
            drivers can stamp it on their traced ``exec_fail`` events.
        """
        _, cause = self._close(now, eid)
        if cause == "reclaim":
            self.stats.reclamations += 1
        else:
            self.stats.crashes += 1
        if self.plan.replace_failed:
            self.stats.replacements += 1
        self.stats.tasks_killed += killed
        self.stats.wasted_task_seconds += wasted
        return cause or "crash"

    # --- tasks -----------------------------------------------------------
    def _mask(self, stage_id: int, n_tasks: int) -> np.ndarray:
        mask = self._straggler_masks.get(stage_id)
        if mask is None:
            rng = self._rng(_STRAGGLER_DOMAIN, stage_id)
            mask = rng.random(n_tasks) < self.plan.straggler_rate
            self._straggler_masks[stage_id] = mask
        return mask

    def task_duration(
        self, stage_id: int, task_idx: int, n_tasks: int, duration: float
    ) -> float:
        """Perturb one task assignment's duration (and count the start).

        Straggler-ness is intrinsic to the ``(stage, task)`` identity —
        the mask is one seeded draw per stage, independent of assignment
        order — so results do not depend on which executor picked the
        task up, and a re-executed straggler straggles again.
        """
        self.stats.tasks_started += 1
        if self.plan.straggler_rate > 0.0:
            if self._mask(stage_id, n_tasks)[task_idx]:
                return duration * self.plan.straggler_factor
        return duration

    # --- completion ------------------------------------------------------
    def finalize(self, end_time: float) -> FaultStats:
        """Close surviving executors' billing at ``end_time``; idempotent."""
        if not self._finalized:
            self._finalized = True
            for eid in sorted(self._open):
                self._close(end_time, eid)
        return self.stats

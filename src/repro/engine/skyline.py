"""Executor-allocation skylines and AUC.

The paper's cost metric is the *total executor occupancy*
``AUC = ∫ n_s ds`` — the area under the skyline of allocated executors
``n_s`` over the query's lifetime (Section 2, Figure 1's data labels,
Figure 12).  A :class:`Skyline` is a right-continuous step function built
from executor arrival/removal events.

Point queries (:meth:`Skyline.value_at`) and areas (:meth:`Skyline.auc`)
binary-search a lazily built index over the recorded breakpoints — prefix
areas plus a sorted time array — instead of rescanning the step list, so
repeated queries against a long skyline (the fleet engine's pool skyline
sees one step per grant/release) are O(log n).  The index is invalidated
by :meth:`Skyline.record` and rebuilt on the next query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["Skyline"]


@dataclass
class Skyline:
    """Step function of allocated executors over time.

    Points are ``(time, count)`` steps: the count holds from each point's
    time until the next point.  Times must be non-decreasing.
    """

    points: list[tuple[float, int]] = field(default_factory=list)
    _index: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def record(self, time: float, count: int) -> None:
        """Append a step; collapses consecutive equal counts."""
        if count < 0:
            raise ValueError("executor counts cannot be negative")
        if self.points:
            last_time, last_count = self.points[-1]
            if time < last_time:
                raise ValueError("skyline times must be non-decreasing")
            if count == last_count:
                return
            self._index = None
            if time == last_time:
                self.points[-1] = (time, count)
                return
        else:
            self._index = None
        self.points.append((time, count))

    def _ensure_index(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted breakpoint times, counts, and prefix areas.

        ``prefix[i]`` is the area accumulated left-to-right over segments
        ``0..i-1`` (each ``count · width``), matching the sequential
        summation order of the original scan so cached and scanned areas
        agree bit-for-bit.
        """
        if self._index is None:
            times = np.array([t for t, _ in self.points])
            counts = np.array([float(c) for _, c in self.points])
            widths = np.diff(times)
            prefix = np.concatenate(
                ([0.0], np.add.accumulate(counts[:-1] * widths))
            )
            self._index = (times, counts, prefix)
        return self._index

    def value_at(self, time: float) -> int:
        """Executor count in effect at ``time`` (0 before the first step)."""
        if not self.points:
            return 0
        times, _, _ = self._ensure_index()
        idx = int(np.searchsorted(times, time, side="right")) - 1
        if idx < 0:
            return 0
        return self.points[idx][1]

    @property
    def max_executors(self) -> int:
        """Peak allocation ``n = max(n_s)`` (paper metric 1)."""
        if not self.points:
            return 0
        return max(c for _, c in self.points)

    def auc(self, end_time: float) -> float:
        """Total executor occupancy up to ``end_time`` (executor-seconds)."""
        if end_time < 0:
            raise ValueError("end_time must be >= 0")
        if not self.points:
            return 0.0
        times, _, prefix = self._ensure_index()
        # Rightmost step strictly before end_time; steps at or past the
        # end contribute nothing.
        idx = int(np.searchsorted(times, end_time, side="left")) - 1
        if idx < 0:
            return 0.0
        partial = self.points[idx][1] * (end_time - self.points[idx][0])
        return float(prefix[idx] + partial)

    def auc_batch(self, end_times: np.ndarray | Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`auc` over many end times.

        Evaluating a skyline at a whole grid of horizons (percentile
        sweeps, animation frames, per-query cutoffs over a shared pool
        skyline) via repeated ``auc`` calls rescans the breakpoint prefix
        each time; this resolves every horizon with one ``searchsorted``.
        """
        ends = np.asarray(end_times, dtype=float)
        if ends.size and float(ends.min()) < 0:
            raise ValueError("end_time must be >= 0")
        if not self.points:
            return np.zeros(ends.shape)
        times, counts, prefix = self._ensure_index()
        idx = np.searchsorted(times, ends, side="left") - 1
        clipped = np.clip(idx, 0, None)
        area = prefix[clipped] + counts[clipped] * (ends - times[clipped])
        return np.where(idx < 0, 0.0, area)

    def truncated(self, end_time: float) -> "Skyline":
        """Copy of this skyline cut off at ``end_time``."""
        out = Skyline()
        for t, c in self.points:
            if t >= end_time:
                break
            out.record(t, c)
        return out

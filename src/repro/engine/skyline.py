"""Executor-allocation skylines and AUC.

The paper's cost metric is the *total executor occupancy*
``AUC = ∫ n_s ds`` — the area under the skyline of allocated executors
``n_s`` over the query's lifetime (Section 2, Figure 1's data labels,
Figure 12).  A :class:`Skyline` is a right-continuous step function built
from executor arrival/removal events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Skyline"]


@dataclass
class Skyline:
    """Step function of allocated executors over time.

    Points are ``(time, count)`` steps: the count holds from each point's
    time until the next point.  Times must be non-decreasing.
    """

    points: list[tuple[float, int]] = field(default_factory=list)

    def record(self, time: float, count: int) -> None:
        """Append a step; collapses consecutive equal counts."""
        if count < 0:
            raise ValueError("executor counts cannot be negative")
        if self.points:
            last_time, last_count = self.points[-1]
            if time < last_time:
                raise ValueError("skyline times must be non-decreasing")
            if count == last_count:
                return
            if time == last_time:
                self.points[-1] = (time, count)
                return
        self.points.append((time, count))

    def value_at(self, time: float) -> int:
        """Executor count in effect at ``time`` (0 before the first step)."""
        count = 0
        for t, c in self.points:
            if t > time:
                break
            count = c
        return count

    @property
    def max_executors(self) -> int:
        """Peak allocation ``n = max(n_s)`` (paper metric 1)."""
        if not self.points:
            return 0
        return max(c for _, c in self.points)

    def auc(self, end_time: float) -> float:
        """Total executor occupancy up to ``end_time`` (executor-seconds)."""
        if end_time < 0:
            raise ValueError("end_time must be >= 0")
        area = 0.0
        for i, (t, c) in enumerate(self.points):
            if t >= end_time:
                break
            t_next = (
                self.points[i + 1][0] if i + 1 < len(self.points) else end_time
            )
            area += c * (min(t_next, end_time) - t)
        return area

    def truncated(self, end_time: float) -> "Skyline":
        """Copy of this skyline cut off at ``end_time``."""
        out = Skyline()
        for t, c in self.points:
            if t >= end_time:
                break
            out.record(t, c)
        return out

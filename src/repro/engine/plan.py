"""Logical query plans.

The paper featurizes optimized Spark SQL plans with counts of each operator
kind ("14 operators for TPC-DS", Table 2), the total operator count, the
maximum plan depth, the number of input sources, the estimated total input
bytes, and the estimated total rows processed by all operators.  This module
defines that operator taxonomy and a small plan IR carrying the cardinality
annotations the featurizer and the physical stager need.

Plans are trees of :class:`PlanNode` (a node may have multiple children —
joins and unions — but each node has a single parent, like Spark's logical
plans).  Every node carries ``rows_out``, the optimizer's cardinality
estimate, and scans carry an :class:`InputSource` descriptor.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["OperatorKind", "InputSource", "PlanNode", "LogicalPlan"]


class OperatorKind(str, Enum):
    """The 14 operator kinds observed in TPC-DS plans (paper Table 2)."""

    SCAN = "Scan"
    FILTER = "Filter"
    PROJECT = "Project"
    JOIN = "Join"
    AGGREGATE = "Aggregate"
    SORT = "Sort"
    UNION = "Union"
    EXCHANGE = "Exchange"
    LIMIT = "Limit"
    WINDOW = "Window"
    EXPAND = "Expand"
    GENERATE = "Generate"
    INTERSECT = "Intersect"
    EXCEPT = "Except"


#: Fixed feature ordering used throughout featurization and the benches.
OPERATOR_KINDS: tuple[OperatorKind, ...] = tuple(OperatorKind)


@dataclass(frozen=True)
class InputSource:
    """A table / file-set read by a scan.

    Attributes:
        name: dataset identifier (e.g. ``store_sales``).
        bytes: estimated on-disk size of the data read.
        rows: estimated row count of the data read.
    """

    name: str
    bytes: float
    rows: float

    def __post_init__(self) -> None:
        if self.bytes < 0 or self.rows < 0:
            raise ValueError("input source sizes must be non-negative")


@dataclass
class PlanNode:
    """One operator in a logical plan.

    Attributes:
        kind: the operator kind.
        children: input operators (empty for scans).
        rows_out: estimated output cardinality.
        source: input descriptor; only meaningful for ``SCAN`` nodes.
        selectivity: for ``FILTER`` nodes, the fraction of rows retained.
        pushable: for ``FILTER`` nodes, whether the predicate references a
            single base table and may be pushed below joins into the scan.
        columns_kept: for ``PROJECT`` nodes, the fraction of input width
            retained (drives projection-pruning byte reduction).
    """

    kind: OperatorKind
    children: list["PlanNode"] = field(default_factory=list)
    rows_out: float = 0.0
    source: InputSource | None = None
    selectivity: float = 1.0
    pushable: bool = False
    columns_kept: float = 1.0

    def __post_init__(self) -> None:
        if self.kind == OperatorKind.SCAN:
            if self.children:
                raise ValueError("scan nodes cannot have children")
            if self.source is None:
                raise ValueError("scan nodes require an input source")
            if self.rows_out == 0.0:
                self.rows_out = self.source.rows
        elif self.source is not None:
            raise ValueError("only scan nodes may carry an input source")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must lie in [0, 1]")
        if not 0.0 < self.columns_kept <= 1.0:
            raise ValueError("columns_kept must lie in (0, 1]")

    @property
    def rows_in(self) -> float:
        """Total rows flowing into this operator from its children."""
        return sum(child.rows_out for child in self.children)

    @property
    def rows_processed(self) -> float:
        """Rows this operator processes: its inputs, or the scanned rows."""
        if self.kind == OperatorKind.SCAN:
            assert self.source is not None
            return self.source.rows
        return self.rows_in

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def copy(self) -> "PlanNode":
        """Deep copy of the subtree (sources are shared; they're frozen)."""
        return PlanNode(
            kind=self.kind,
            children=[child.copy() for child in self.children],
            rows_out=self.rows_out,
            source=self.source,
            selectivity=self.selectivity,
            pushable=self.pushable,
            columns_kept=self.columns_kept,
        )


@dataclass
class LogicalPlan:
    """A complete logical plan for one query.

    Attributes:
        root: the top operator (usually a limit/sort/aggregate).
        query_id: workload identifier (e.g. ``"q94"``).
    """

    root: PlanNode
    query_id: str = ""

    def walk(self) -> Iterator[PlanNode]:
        return self.root.walk()

    def operator_counts(self) -> dict[OperatorKind, int]:
        """Count of each operator kind in the plan (all 14 keys present)."""
        counts = {kind: 0 for kind in OPERATOR_KINDS}
        for node in self.walk():
            counts[node.kind] += 1
        return counts

    def num_operators(self) -> int:
        return sum(1 for _ in self.walk())

    def max_depth(self) -> int:
        """Longest root-to-leaf path, counted in nodes."""
        best = 0
        stack = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            if not node.children:
                best = max(best, depth)
            for child in node.children:
                stack.append((child, depth + 1))
        return best

    def input_sources(self) -> list[InputSource]:
        """Input descriptors of all scans, in plan order."""
        return [
            node.source
            for node in self.walk()
            if node.kind == OperatorKind.SCAN and node.source is not None
        ]

    def total_input_bytes(self) -> float:
        return sum(src.bytes for src in self.input_sources())

    def total_rows_processed(self) -> float:
        """Paper Table 2: estimated rows processed by all operators."""
        return sum(node.rows_processed for node in self.walk())

    def copy(self) -> "LogicalPlan":
        return LogicalPlan(root=self.root.copy(), query_id=self.query_id)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Invariants: every leaf is a scan, every scan is a leaf, the tree is
        acyclic (enforced by construction), and cardinalities are finite
        and non-negative.
        """
        seen: set[int] = set()
        for node in self.walk():
            if id(node) in seen:
                raise ValueError("plan contains a shared/cyclic node")
            seen.add(id(node))
            is_leaf = not node.children
            if is_leaf and node.kind != OperatorKind.SCAN:
                raise ValueError(f"leaf node {node.kind} is not a scan")
            if node.kind == OperatorKind.SCAN and not is_leaf:
                raise ValueError("scan node has children")
            if not (node.rows_out >= 0):
                raise ValueError("negative or NaN cardinality estimate")

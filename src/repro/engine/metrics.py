"""Per-query telemetry.

The paper collects "detailed plans with annotations such as input dataset
information, and runtime metrics at the end of every query" via Peregrine
and SparkCruise, transformed into "a tabular representation of the query
workload ... one row per query" (Section 4.1).  :class:`QueryTelemetry` is
that row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.plan import LogicalPlan
from repro.engine.skyline import Skyline

__all__ = ["QueryTelemetry"]


@dataclass
class QueryTelemetry:
    """One row of the workload table: a finished query's record.

    Attributes:
        query_id: workload identifier.
        plan: the optimized logical plan (source of compile-time features).
        runtime: observed elapsed seconds.
        executors_requested: executor count requested for the run.
        max_executors: peak allocation observed.
        auc: total executor occupancy (executor-seconds).
        skyline: the allocation skyline.
        cores_per_executor: ``ec`` of the run.
        annotations: free-form extras (policy name, predicted counts, ...).
    """

    query_id: str
    plan: LogicalPlan
    runtime: float
    executors_requested: int
    max_executors: int
    auc: float
    skyline: Skyline | None = None
    cores_per_executor: int = 4
    annotations: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError("runtime cannot be negative")
        if self.auc < 0:
            raise ValueError("AUC cannot be negative")

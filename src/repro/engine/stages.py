"""Physical staging: logical plan → DAG of stages with tasks.

Spark executes a SQL query as a DAG of *stages* separated by shuffle
(exchange) boundaries; each stage runs a set of parallel *tasks*, one per
partition.  The per-stage task counts and durations — together with the
executor slot count ``n × ec`` — determine the run-time curve ``t(n)`` the
paper models.

The compiler here mirrors that structure:

- a stage is a maximal exchange-free region of the plan;
- a stage that contains scans gets its task count from the bytes it reads
  (one task per input split); shuffle stages get theirs from the rows that
  cross the exchange (shuffle partitions);
- per-task durations come from a simple per-operator cost model plus a
  deterministic skew profile (a few straggler tasks per stage, which is
  what makes critical paths — and hence Amdahl's-law serial fractions —
  non-trivial).

Everything is deterministic: the same plan always compiles to the same
stage DAG with the same task durations.  Run-to-run noise is layered on
top by the experiment harness, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.plan import LogicalPlan, OperatorKind, PlanNode

__all__ = ["StageCompilerConfig", "Stage", "StageGraph", "compile_stages"]


#: Cost (task-seconds) per million rows processed, by operator kind.  These
#: constants are calibrated so that TPC-DS-like queries at SF=100 have total
#: work in the hundreds-to-thousands of core-seconds, matching the scale of
#: the paper's Figure 1 (AUC 507–2575 executor-seconds for q94).
_COST_PER_MROWS: dict[OperatorKind, float] = {
    OperatorKind.SCAN: 4.4,
    OperatorKind.FILTER: 2.4,
    OperatorKind.PROJECT: 2.0,
    OperatorKind.JOIN: 6.4,
    OperatorKind.AGGREGATE: 5.6,
    OperatorKind.SORT: 6.0,
    OperatorKind.UNION: 2.0,
    OperatorKind.EXCHANGE: 4.0,
    OperatorKind.LIMIT: 1.2,
    OperatorKind.WINDOW: 6.8,
    OperatorKind.EXPAND: 4.8,
    OperatorKind.GENERATE: 4.0,
    OperatorKind.INTERSECT: 5.2,
    OperatorKind.EXCEPT: 5.2,
}

#: Additional scan cost per GiB read (IO-bound component).
_COST_PER_GIB = 3.2


@dataclass(frozen=True)
class StageCompilerConfig:
    """Knobs of the plan → stage compiler.

    Attributes:
        split_bytes: input bytes per scan task (one task per split).
        rows_per_shuffle_partition: rows per shuffle-read task.
        max_tasks_per_stage: cap on stage width (keeps simulation cheap
            while preserving wave structure; Spark caps via
            ``spark.sql.shuffle.partitions`` similarly).
        min_task_seconds: floor on per-task duration (task launch overhead).
        skew_fraction: fraction of tasks that are stragglers.
        skew_factor: duration multiplier for straggler tasks.
        skew_work_share: fraction of the stage's work concentrated in the
            single slowest task (Zipf-style partition skew: the hottest
            key-group holds a data-proportional share, so the straggler
            grows with stage volume).
        working_set_fraction: fraction of input bytes that must be resident
            across the executors to avoid spilling.
    """

    split_bytes: float = 64 * 1024**2
    rows_per_shuffle_partition: float = 4.0e5
    max_tasks_per_stage: int = 96
    min_task_seconds: float = 0.05
    skew_fraction: float = 0.05
    skew_factor: float = 1.3
    skew_work_share: float = 0.0
    working_set_fraction: float = 2.0


DEFAULT_COMPILER_CONFIG = StageCompilerConfig()


@dataclass
class Stage:
    """One stage of physical execution.

    Attributes:
        stage_id: index within the owning :class:`StageGraph`.
        num_tasks: number of parallel tasks.
        task_seconds: base per-task duration before skew.
        dependencies: stage ids that must finish before this stage starts.
        skew_fraction / skew_factor / skew_work_share: straggler profile.
    """

    stage_id: int
    num_tasks: int
    task_seconds: float
    dependencies: list[int] = field(default_factory=list)
    skew_fraction: float = 0.0
    skew_factor: float = 1.0
    skew_work_share: float = 0.0

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("stages must have at least one task")
        if self.task_seconds <= 0:
            raise ValueError("task duration must be positive")

    def task_durations(self) -> np.ndarray:
        """Deterministic per-task durations including the skew profile.

        Two skew mechanisms combine (both real): a fraction of tasks run
        ``skew_factor`` longer (stragglers), and the single slowest task
        additionally holds ``skew_work_share`` of the whole stage's base
        work (Zipf-style hot-key skew, which grows with data volume).
        """
        durations = np.full(self.num_tasks, self.task_seconds)
        n_skewed = int(np.ceil(self.skew_fraction * self.num_tasks))
        if n_skewed > 0 and self.skew_factor > 1.0:
            durations[-n_skewed:] *= self.skew_factor
        if self.skew_work_share > 0.0 and self.num_tasks > 1:
            base_work = self.task_seconds * self.num_tasks
            durations[-1] = max(
                durations[-1], self.skew_work_share * base_work
            )
        return durations

    @property
    def total_work(self) -> float:
        """Sum of task durations (core-seconds of work)."""
        return float(self.task_durations().sum())

    @property
    def max_task_seconds(self) -> float:
        """Longest single task — the stage's parallelism-independent floor."""
        return float(self.task_durations().max())


@dataclass
class StageGraph:
    """The stage DAG for one query.

    Attributes:
        stages: stages indexed by ``stage_id``.
        driver_seconds: serial driver/setup time outside any stage.
        working_set_bytes: memory the query wants resident; when the
            executor fleet provides less, tasks slow down (spill model).
        query_id: source query identifier.
    """

    stages: list[Stage]
    driver_seconds: float = 0.0
    working_set_bytes: float = 0.0
    query_id: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        ids = {s.stage_id for s in self.stages}
        if ids != set(range(len(self.stages))):
            raise ValueError("stage ids must be 0..len-1")
        for stage in self.stages:
            for dep in stage.dependencies:
                if dep not in ids:
                    raise ValueError(f"unknown dependency {dep}")
                if dep >= stage.stage_id:
                    raise ValueError(
                        "dependencies must point to earlier stages (DAG "
                        "must be topologically ordered by id)"
                    )

    @property
    def total_work(self) -> float:
        """Total core-seconds across all stages."""
        return sum(stage.total_work for stage in self.stages)

    @property
    def total_tasks(self) -> int:
        return sum(stage.num_tasks for stage in self.stages)

    @property
    def max_stage_width(self) -> int:
        """Widest stage — beyond ``n·ec`` slots ≥ this, waves collapse."""
        return max(stage.num_tasks for stage in self.stages)

    def critical_path_seconds(self) -> float:
        """Lower bound on run time at infinite parallelism.

        Along the longest dependency chain each stage still costs at least
        its longest task; the driver time is always serial.
        """
        finish = [0.0] * len(self.stages)
        for stage in self.stages:
            start = max(
                (finish[d] for d in stage.dependencies), default=0.0
            )
            finish[stage.stage_id] = start + stage.max_task_seconds
        return self.driver_seconds + max(finish, default=0.0)

    def topological_order(self) -> list[int]:
        """Stage ids in dependency order (ids are already topological)."""
        return [s.stage_id for s in self.stages]


def _rows_to_tasks(rows: float, config: StageCompilerConfig) -> int:
    tasks = int(np.ceil(rows / config.rows_per_shuffle_partition))
    return int(np.clip(tasks, 1, config.max_tasks_per_stage))


def _bytes_to_tasks(nbytes: float, config: StageCompilerConfig) -> int:
    tasks = int(np.ceil(nbytes / config.split_bytes))
    return int(np.clip(tasks, 1, config.max_tasks_per_stage))


def compile_stages(
    plan: LogicalPlan,
    config: StageCompilerConfig = DEFAULT_COMPILER_CONFIG,
) -> StageGraph:
    """Compile a logical plan into its stage DAG.

    Stages are split at ``EXCHANGE`` operators: the exchange's subtree
    (shuffle write side) forms one or more upstream stages; the operators
    above it join the downstream stage.  Each stage's work is the summed
    operator cost of its member operators; its width comes from the bytes
    scanned (leaf stages) or rows shuffled in (downstream stages).
    """
    stages: list[Stage] = []

    def op_cost(node: PlanNode) -> float:
        cost = _COST_PER_MROWS[node.kind] * node.rows_processed / 1e6
        if node.kind == OperatorKind.SCAN and node.source is not None:
            cost += _COST_PER_GIB * node.source.bytes / 1024**3
        return cost

    def build(
        node: PlanNode,
    ) -> tuple[float, float, float, float, list[int], bool]:
        """Walk the exchange-free region rooted at ``node``.

        Returns ``(work, scan_bytes, region_rows, boundary_rows, deps,
        has_scan)`` for the region: accumulated operator cost, bytes
        scanned inside the region, the largest per-operator row volume
        processed inside the region, rows entering the region across
        exchanges, upstream stage ids, and whether the region reads base
        data directly.
        """
        work = op_cost(node)
        scan_bytes = 0.0
        region_rows = node.rows_processed
        boundary_rows = 0.0
        deps: list[int] = []
        has_scan = node.kind == OperatorKind.SCAN
        if has_scan and node.source is not None:
            scan_bytes += node.source.bytes
        for child in node.children:
            if child.kind == OperatorKind.EXCHANGE:
                child_stage = finish_region(child)
                deps.append(child_stage)
                boundary_rows += child.rows_out
            else:
                c_work, c_bytes, c_rows, c_brows, c_deps, c_scan = build(child)
                work += c_work
                scan_bytes += c_bytes
                region_rows = max(region_rows, c_rows)
                boundary_rows += c_brows
                deps.extend(c_deps)
                has_scan |= c_scan
        return work, scan_bytes, region_rows, boundary_rows, deps, has_scan

    def finish_region(exchange: PlanNode) -> int:
        """Close the stage below an exchange (including the shuffle write)."""
        work = op_cost(exchange)
        scan_bytes = 0.0
        region_rows = 0.0
        boundary_rows = 0.0
        deps: list[int] = []
        has_scan = False
        for child in exchange.children:
            c_work, c_bytes, c_rows, c_brows, c_deps, c_scan = build(child)
            work += c_work
            scan_bytes += c_bytes
            region_rows = max(region_rows, c_rows)
            boundary_rows += c_brows
            deps.extend(c_deps)
            has_scan |= c_scan
        return emit_stage(
            work, scan_bytes, region_rows, boundary_rows, deps, has_scan
        )

    def emit_stage(
        work: float,
        scan_bytes: float,
        region_rows: float,
        boundary_rows: float,
        deps: list[int],
        has_scan: bool,
    ) -> int:
        # Width follows the data the stage actually processes: scans are
        # split by bytes; shuffle stages by the larger of the rows crossing
        # the boundary and the rows any internal operator (window, expand,
        # multi-way join) materializes — Spark's AQE sizes partitions for
        # the processed volume the same way.
        width_rows = max(boundary_rows, region_rows, 1.0)
        num_tasks = _rows_to_tasks(width_rows, config)
        if has_scan and scan_bytes > 0:
            num_tasks = max(num_tasks, _bytes_to_tasks(scan_bytes, config))
        task_seconds = max(work / num_tasks, config.min_task_seconds)
        stage = Stage(
            stage_id=len(stages),
            num_tasks=num_tasks,
            task_seconds=task_seconds,
            dependencies=sorted(set(deps)),
            skew_fraction=config.skew_fraction,
            skew_factor=config.skew_factor,
            skew_work_share=config.skew_work_share,
        )
        stages.append(stage)
        return stage.stage_id

    work, scan_bytes, region_rows, boundary_rows, deps, has_scan = build(
        plan.root
    )
    emit_stage(work, scan_bytes, region_rows, boundary_rows, deps, has_scan)

    total_bytes = plan.total_input_bytes()
    # Driver time: plan/setup overhead plus a small per-stage scheduling
    # cost; this is the always-serial component of the Amdahl model.
    driver = 2.0 + 1.0 * len(stages)
    return StageGraph(
        stages=stages,
        driver_seconds=driver,
        working_set_bytes=total_bytes * config.working_set_fraction,
        query_id=plan.query_id,
    )

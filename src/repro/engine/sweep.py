"""Batched ("sweep") simulation: one compiled plan, many executor counts.

The paper's central artifact is a *sweep*: the run-time / occupancy curve
``t(n)``, ``AUC(n)`` of one query across the executor-count axis (Figures
1, 3c, 11–13; the training pipeline; the fleet's oracle baseline).  The
event-driven :func:`~repro.engine.scheduler.simulate_query` replays the
whole query from scratch for every single count — re-deriving the stage
DAG bookkeeping, task durations, and skyline each time, and paying
per-event policy polls and tick events that cannot change anything under
static allocation.

This module makes the sweep the engine's first-class operation:

- :func:`compile_plan` precomputes everything count-invariant once — per
  -stage task-duration arrays, dependency/dependent topology, root stages,
  task totals — into a reusable :class:`CompiledPlan`;
- :func:`simulate_query_sweep` evaluates all candidate counts against the
  compiled plan in one pass.  Under static allocation on a dedicated
  (unbounded) capacity source the run collapses to wave scheduling: every
  stage's ready tasks drain FIFO onto ``n·ec`` slots, fully-idle waves are
  evaluated as single vectorized numpy expressions, and only
  partially-overlapping waves fall back to a flat float min-heap.

The fast path is **exact**: it reproduces the event loop's arithmetic
operation-for-operation (the same ``duration × spill × coordination``
products, the same ``start + duration`` additions, the same FIFO
tie-breaking), so its results are bit-identical to per-count
:func:`simulate_query` — a property the test suite asserts across the
whole TPC-DS workload.  Configurations the closed form cannot express —
mid-query scaling policies, shared-pool capacity sources — fall back to
the event-driven scheduler per count, trading speed for generality.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Sequence

import numpy as np

from repro.engine.allocation import AllocationPolicy, StaticAllocation
from repro.engine.cluster import (
    UNBOUNDED,
    CapacitySource,
    Cluster,
    UnboundedCapacity,
)
from repro.engine.execution import (
    DEFAULT_SCHEDULER_CONFIG,
    CompiledPlan,
    SchedulerConfig,
    SimulationResult,
    compile_plan,
    coordination_factor,
    spill_factor,
)
from repro.engine.faults import FaultPlan
from repro.engine.scheduler import simulate_query
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.sparklens.log import ExecutionLog, StageLog

__all__ = ["CompiledPlan", "compile_plan", "simulate_query_sweep"]


def _simulate_static(
    plan: CompiledPlan,
    n_eff: int,
    cluster: Cluster,
    config: SchedulerConfig,
    record_log: bool,
) -> SimulationResult:
    """Exact wave-scheduling replay of ``simulate_query`` under ``SA(n)``.

    Under static allocation on an unbounded source the event loop's state
    collapses: the fleet is ``n_eff`` from the first instant to the last,
    the spill/coordination factor is constant, ticks and policy polls are
    no-ops, and the whole simulation is a FIFO drain of stage task chunks
    onto ``n_eff × ec`` slots.  Chunks are processed in emission order
    (the order their stages' tasks entered the scheduler's pending queue),
    which this function reproduces exactly — including the event loop's
    tie-breaking, where simultaneous stage completions emit dependents in
    task-assignment (FIFO counter) order, then ascending stage id.
    """
    graph = plan.graph
    slots = n_eff * cluster.cores_per_executor
    factor = spill_factor(graph, n_eff, cluster, config) * (
        coordination_factor(n_eff, config)
    )

    # Slot availability times, kept sorted ascending.  A value is the time
    # the slot's last task completes (slots idle since before a chunk's
    # emission start work at the emission instant, exactly like the event
    # loop's idle cores picking up freshly emitted tasks).
    avail = np.zeros(slots)

    # Emission queue: (time, trigger counter, stage id).  The counter is
    # the global FIFO assignment index of the task whose completion
    # unlocked the stage — the event loop processes simultaneous
    # completions in push (= assignment) order, so this tuple reproduces
    # its tie-breaking; root stages emit at driver completion, before any
    # task event, hence counter -1.
    ready: list[tuple[float, int, int]] = [
        (plan.driver_seconds, -1, sid) for sid in plan.roots
    ]
    heapq.heapify(ready)

    remaining = [len(deps) for deps in plan.dependencies]
    # Per-stage emission key: the lexicographic max (time, counter) over
    # completed dependencies — the event at which the last dependency
    # finished, which is when the event loop emits the stage.
    emit_key: list[tuple[float, int]] = [
        (-math.inf, -1) for _ in plan.dependencies
    ]

    observed: list[np.ndarray | None] = [None] * len(plan.durations)
    next_counter = 0
    end_time = 0.0

    while ready:
        ready_time, _, sid = heapq.heappop(ready)
        d = plan.durations[sid] * factor
        m = d.shape[0]
        idle = int(np.searchsorted(avail, ready_time, side="right"))
        if m <= idle:
            # Every task starts on an already-idle slot at the emission
            # instant: one vectorized wave.
            comp = ready_time + d
            avail = np.sort(np.concatenate((avail[m:], comp)))
        else:
            # Tasks overlap slots still busy with earlier chunks: drain
            # FIFO through a flat float min-heap (a sorted array is a
            # valid heap), reproducing the event loop's one-completion-
            # one-assignment cadence.
            heap = avail.tolist()
            comp = np.empty(m)
            for i in range(m):
                start = heapq.heappop(heap)
                if start < ready_time:
                    start = ready_time
                finish = start + d[i]
                comp[i] = finish
                heapq.heappush(heap, finish)
            avail = np.sort(np.asarray(heap))
        if record_log:
            observed[sid] = d

        # The stage's completion event is its lexicographically last
        # (time, assignment counter) task completion.
        last = m - 1 - int(np.argmax(comp[::-1]))
        stage_end = comp[last]
        key = (float(stage_end), next_counter + last)
        next_counter += m
        if stage_end > end_time:
            end_time = float(stage_end)

        for dep_id in plan.dependents[sid]:
            if key > emit_key[dep_id]:
                emit_key[dep_id] = key
            remaining[dep_id] -= 1
            if remaining[dep_id] == 0:
                time, counter = emit_key[dep_id]
                heapq.heappush(ready, (time, counter, dep_id))

    skyline = Skyline(points=[(0.0, n_eff)])
    log = None
    if record_log:
        stage_logs = []
        for sid, deps in enumerate(plan.dependencies):
            stage_logs.append(
                StageLog(
                    stage_id=sid,
                    dependencies=list(deps),
                    task_durations=observed[sid],
                )
            )
        log = ExecutionLog(
            query_id=graph.query_id,
            driver_seconds=graph.driver_seconds,
            stages=stage_logs,
            cores_per_executor=cluster.cores_per_executor,
            executors_used=n_eff,
        )

    return SimulationResult(
        runtime=end_time,
        skyline=skyline,
        auc=skyline.auc(end_time),
        max_executors=n_eff,
        total_tasks=plan.total_tasks,
        execution_log=log,
        fully_allocated=True,
    )


def simulate_query_sweep(
    graph: StageGraph | CompiledPlan,
    counts: Sequence[int],
    cluster: Cluster,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
    policy_factory: Callable[[int], AllocationPolicy] = StaticAllocation,
    capacity_source: CapacitySource = UNBOUNDED,
    record_log: bool = False,
    faults: FaultPlan | None = None,
) -> list[SimulationResult]:
    """Simulate one query at every candidate executor count.

    Args:
        graph: the query's stage DAG, or an already-:func:`compile_plan`'d
            plan (reuse the compiled form when sweeping the same query
            repeatedly).
        counts: candidate executor counts, in the order results are
            wanted; duplicates (including counts that clamp to the same
            effective fleet) share one evaluation.
        cluster: cluster shapes; counts are clamped to pool capacity the
            same way ``simulate_query`` clamps policy requests.
        config: scheduler physics.
        policy_factory: maps a count to the allocation policy simulated at
            that count.  The default :class:`StaticAllocation` takes the
            vectorized fast path; any other factory (mid-query scaling
            policies such as ``DynamicAllocation``) falls back to the
            exact event-driven scheduler per count.
        capacity_source: executor grant source.  Anything other than the
            dedicated-cluster unbounded source (e.g. a shared-pool
            arbiter from :mod:`repro.fleet`) also falls back to the event
            loop, which plays the counts sequentially against the shared
            state exactly like a caller's per-count loop would.
        record_log: capture per-count execution logs.
        faults: optional :class:`~repro.engine.faults.FaultPlan`.  An
            *active* plan falls back to the event-driven scheduler per
            count — each count replays the same seeded fault streams, so
            the perturbed ``t(n)`` curve is comparable across counts —
            while ``None`` or an inert plan keeps the vectorized fast
            path (and its bit-identity to the unperturbed event loop).

    Returns:
        One :class:`~repro.engine.scheduler.SimulationResult` per entry of
        ``counts`` — bit-identical to calling ``simulate_query`` with
        ``policy_factory(count)`` for each count in turn.
    """
    plan = graph if isinstance(graph, CompiledPlan) else compile_plan(graph)
    # The fast path requires exactly dedicated-cluster grant semantics; a
    # subclass could override acquire(), so no isinstance leniency here.
    fast = (
        policy_factory is StaticAllocation
        and type(capacity_source) is UnboundedCapacity
        and (faults is None or not faults.active)
    )
    if fast:
        return plan.sweep(counts, cluster, config, record_log)
    return [
        simulate_query(
            plan,
            policy_factory(int(n)),
            cluster,
            config,
            record_log=record_log,
            capacity_source=capacity_source,
            faults=faults,
        )
        for n in counts
    ]

"""The shared execution core: one set of simulator physics, two drivers.

Both simulators in this repository play out the same per-query execution
state machine — executors arrive and idle out, ready stages emit their
tasks into a FIFO queue, waves of tasks are assigned one-per-core under a
spill × coordination slowdown, completed stages unlock their dependents,
and a :class:`~repro.engine.skyline.Skyline` records every fleet-size
step.  :func:`repro.engine.scheduler.simulate_query` drives one query on
a dedicated cluster; :class:`repro.fleet.engine.FleetEngine` multiplexes
many queries on one clock over a shared pool.  The physics must be the
*same physics*, down to the bit: a fleet of one query on an uncontended
pool is required to reproduce ``simulate_query`` exactly (runtime, AUC,
skyline), a contract the differential-parity suite
(``tests/engine/test_execution_parity.py``) and the CI bench gate assert
across the whole TPC-DS workload.

This module is that single copy:

- :class:`SchedulerConfig` — the physics knobs (spill, coordination,
  tick period);
- :func:`spill_factor` / :func:`coordination_factor` — the two
  second-order slowdowns the paper's error analysis depends on
  (Section 5.2);
- :class:`CompiledPlan` / :func:`compile_plan` — count-invariant
  simulation state (task-duration arrays, topology) computed once per
  stage graph and reused by every run, sweep, and fleet serve;
- :class:`ExecutionCore` — the per-query state machine itself.  Drivers
  own the event heap, the clock, and the capacity accounting (allocation
  policies and provisioning on the dedicated path, admission budgets and
  the arbiter on the fleet path); the core owns everything else.

Task-completion events are identified by ``(stage_id, executor_id)``
pairs handed to the driver's ``emit`` callback and stored verbatim in
its heap (event heaps order on a unique push counter, so payloads are
never compared).  An earlier encoding packed the pair into
``stage_id * 10_000_000 + executor_id`` — executor ids are unbounded
under idle-release churn, so a long-lived run could collide an executor
id into the stage field; the pair representation is collision-free by
construction.

The simulation is deterministic.  Run-to-run variance (the paper's
4–7 %) is layered on top by :mod:`repro.experiments.runtime_data`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.cluster import Cluster
from repro.engine.faults import FaultInjector, FaultStats
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.obs.trace import TraceEvent, Tracer
from repro.sparklens.log import ExecutionLog, StageLog

__all__ = [
    "SchedulerConfig",
    "DEFAULT_SCHEDULER_CONFIG",
    "SimulationResult",
    "CompiledPlan",
    "compile_plan",
    "ExecutionCore",
    "spill_factor",
    "coordination_factor",
]


@dataclass(frozen=True)
class SchedulerConfig:
    """Physics knobs of the simulator.

    Attributes:
        spill_coefficient: slowdown per unit of working-set deficit.
        max_spill_factor: cap on the memory-pressure slowdown.
        coordination_coefficient: per-task slowdown per 47 extra executors.
        tick_interval: policy polling / idle-check period (Spark polls at
            ~1 s granularity too).
    """

    spill_coefficient: float = 0.8
    max_spill_factor: float = 3.5
    coordination_coefficient: float = 0.12
    tick_interval: float = 1.0


DEFAULT_SCHEDULER_CONFIG = SchedulerConfig()


@dataclass
class SimulationResult:
    """Outcome of one simulated query run.

    Attributes:
        runtime: elapsed seconds from submission to completion.
        skyline: allocated-executor step function over the run.
        auc: total executor occupancy ``∫ n_s ds`` (executor-seconds).
        max_executors: peak allocation during the run.
        total_tasks: tasks executed.
        execution_log: per-stage observed task durations (only when
            ``record_log=True``), consumable by Sparklens.
        fully_allocated: whether the policy's final target was entirely
            provisioned before the query finished (Figure 13 marks these
            queries with a diamond).
        fault_stats: the fault ledger (crashes, retries, wasted work,
            spot/on-demand split) when the run was perturbed by an
            active :class:`~repro.engine.faults.FaultPlan`; ``None`` for
            unperturbed runs.
    """

    runtime: float
    skyline: Skyline
    auc: float
    max_executors: int
    total_tasks: int
    execution_log: ExecutionLog | None = None
    fully_allocated: bool = True
    fault_stats: FaultStats | None = None


def spill_factor(
    graph: StageGraph,
    active_executors: int,
    cluster: Cluster,
    config: SchedulerConfig,
) -> float:
    """Memory-pressure slowdown for the current fleet size."""
    if graph.working_set_bytes <= 0 or active_executors < 1:
        return 1.0
    available = active_executors * cluster.executor_memory_bytes
    deficit = graph.working_set_bytes / available - 1.0
    if deficit <= 0:
        return 1.0
    factor = 1.0 + config.spill_coefficient * deficit
    return min(factor, config.max_spill_factor)


def coordination_factor(
    active_executors: int, config: SchedulerConfig
) -> float:
    """Mild fan-out overhead growing with fleet size."""
    return 1.0 + config.coordination_coefficient * max(
        0, active_executors - 1
    ) / 47.0


@dataclass(frozen=True)
class CompiledPlan:
    """Count-invariant simulation state, computed once per stage graph.

    Attributes:
        graph: the source stage DAG (kept for spill physics and metadata).
        durations: per-stage base task durations (before the run's
            spill/coordination factor), indexed by ``stage_id``.
        dependencies: per-stage dependency ids, indexed by ``stage_id``.
        dependents: per-stage dependent ids (ascending), the reverse edges.
        roots: stages with no dependencies, in emission (id) order.
        driver_seconds: serial driver prefix.
        total_tasks: total task count across stages.
    """

    graph: StageGraph
    durations: tuple[np.ndarray, ...]
    dependencies: tuple[tuple[int, ...], ...]
    dependents: tuple[tuple[int, ...], ...]
    roots: tuple[int, ...]
    driver_seconds: float
    total_tasks: int

    def simulate(
        self,
        n: int,
        cluster: Cluster,
        config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
        record_log: bool = False,
    ) -> SimulationResult:
        """One static-allocation run at ``n`` executors (fast path)."""
        from repro.engine.sweep import _simulate_static

        if n < 1:
            raise ValueError("static allocation needs at least 1 executor")
        return _simulate_static(
            self, cluster.clamp_request(n), cluster, config, record_log
        )

    def sweep(
        self,
        counts: Sequence[int],
        cluster: Cluster,
        config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
        record_log: bool = False,
    ) -> list[SimulationResult]:
        """Static-allocation runs at every count (see :mod:`.sweep`)."""
        from repro.engine.sweep import _simulate_static

        results: dict[int, SimulationResult] = {}
        out = []
        for n in counts:
            n = int(n)
            if n < 1:
                raise ValueError(
                    "static allocation needs at least 1 executor"
                )
            n_eff = cluster.clamp_request(n)
            if n_eff not in results:
                results[n_eff] = _simulate_static(
                    self, n_eff, cluster, config, record_log
                )
            out.append(results[n_eff])
        return out


def compile_plan(graph: StageGraph) -> CompiledPlan:
    """Precompute the count-invariant work of simulating ``graph``.

    Task-duration arrays (the skew profile included) are materialized once
    and marked read-only; topology is flattened into tuples so per-run
    state never has to rebuild dicts.
    """
    durations = []
    dependents: list[list[int]] = [[] for _ in graph.stages]
    for stage in graph.stages:
        base = stage.task_durations()
        base.flags.writeable = False
        durations.append(base)
        for dep in stage.dependencies:
            dependents[dep].append(stage.stage_id)
    return CompiledPlan(
        graph=graph,
        durations=tuple(durations),
        dependencies=tuple(
            tuple(s.dependencies) for s in graph.stages
        ),
        dependents=tuple(tuple(d) for d in dependents),
        roots=tuple(
            s.stage_id for s in graph.stages if not s.dependencies
        ),
        driver_seconds=graph.driver_seconds,
        total_tasks=graph.total_tasks,
    )


@dataclass
class _Executor:
    executor_id: int
    cores: int
    free_cores: int
    idle_since: float | None


@dataclass
class _StageState:
    remaining_deps: int
    remaining_tasks: int
    emitted: bool = False
    observed: list[float] = field(default_factory=list)


#: Driver callback the core hands each started task to:
#: ``emit(finish_time, stage_id, executor_id)`` schedules the completion.
TaskEmit = Callable[[float, int, int], None]


class ExecutionCore:
    """Per-query execution state machine shared by both simulators.

    The core owns the query-local state — executor slots, the pending
    task queue, per-stage dependency counts, the skyline, the observed
    task log — and exposes the exact transitions the event loops perform.
    The *driver* owns the clock, the event heap, and capacity accounting:
    it decides when executors are granted (allocation policy + cluster
    provisioning on the dedicated path, admission budget + arbiter on the
    fleet path) and feeds arrivals, task completions, and idle scans back
    into the core.

    Args:
        plan: the compiled stage DAG (see :func:`compile_plan`).
        cluster: executor shape (cores, memory) for assignment physics.
        config: scheduler physics.
        record_log: capture observed task durations per stage.
        start_time: clock instant the query's skyline opens at (query
            submission on the dedicated path, admission on the fleet
            path).
        faults: this query's fault injector, or ``None`` (the default)
            for unperturbed physics.  With an injector the core
            additionally tracks in-flight tasks per executor so
            :meth:`fail_executor` can kill and requeue exactly the work
            that was running; without one no extra state is kept and
            every code path is bit-identical to the pre-fault engine.
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving this
            query's execution events (task assign/done/kill, stage
            ready/done, executor add/remove).  ``None`` (the default) is
            the zero-cost off switch: every emission sits behind one
            ``is not None`` check and no event object is built.
        trace_pool / trace_query: identity stamped on emitted events —
            the owning pool index and arrival-stream position (``-1``
            for dedicated single-query runs).
    """

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Cluster,
        config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
        record_log: bool = False,
        start_time: float = 0.0,
        faults: FaultInjector | None = None,
        tracer: Tracer | None = None,
        trace_pool: int = -1,
        trace_query: int = -1,
    ) -> None:
        self.plan = plan
        self.graph = plan.graph
        self.cluster = cluster
        self.config = config
        self.record_log = record_log
        self.faults = faults
        self.tracer = tracer
        self._trace_pool = trace_pool
        self._trace_query = trace_query
        self._trace_qid = plan.graph.query_id if tracer is not None else None
        # Hot-path emission context, prebuilt so assign() pays one load
        # + unpack per call instead of four attribute loads.
        self._assign_ctx = (
            (tracer.emit, trace_pool, trace_query, self._trace_qid)
            if tracer is not None
            else None
        )
        # In-flight task registry, kept only under fault injection:
        # eid -> [(finish time, stage_id, task_idx, start time), ...].
        self._inflight: dict[int, list[tuple[float, int, int, float]]] = {}
        self._failed: set[int] = set()
        self.executors: dict[int, _Executor] = {}
        self._exec_ids = itertools.count()
        self._pending: list[tuple[int, int]] = []  # (stage, task), FIFO
        self._pending_head = 0
        self.running = 0
        self.stages_left = len(plan.durations)
        self.driver_done = False
        self.states = [
            _StageState(
                remaining_deps=len(deps),
                remaining_tasks=plan.durations[sid].shape[0],
            )
            for sid, deps in enumerate(plan.dependencies)
        ]
        self.skyline = Skyline()
        self.skyline.record(start_time, 0)

    def _trace(self, now: float, kind: str, data: dict | None = None) -> None:
        """Emit one event stamped with this core's query identity.

        Callers guard with ``if self.tracer is not None`` so the
        untraced hot path pays exactly one attribute load and comparison.
        ``tuple.__new__`` skips the NamedTuple constructor's default
        handling (~2x per event).
        """
        self.tracer.emit(
            tuple.__new__(
                TraceEvent,
                (
                    now,
                    kind,
                    self._trace_pool,
                    self._trace_query,
                    self._trace_qid,
                    data,
                ),
            )
        )

    # --- executors -------------------------------------------------------
    def add_executor(self, now: float) -> int:
        """One granted executor arrives; returns its id."""
        eid = next(self._exec_ids)
        ec = self.cluster.cores_per_executor
        self.executors[eid] = _Executor(eid, ec, ec, idle_since=now)
        self.skyline.record(now, len(self.executors))
        if self.tracer is not None:
            # Raw form: grant ramps emit one of these per executor.
            self.tracer.emit(
                (now, "exec_add", self._trace_pool, self._trace_query, self._trace_qid, eid)
            )
        return eid

    def release_idle(
        self, now: float, timeout: float | None, floor: int
    ) -> list[int]:
        """Remove executors idle for ``timeout`` seconds, oldest first.

        Never shrinks the fleet below ``floor``, and never removes
        anything while runnable tasks are waiting.  Returns the removed
        executor ids so the driver can return the capacity to its source.
        """
        # Keep executors if there is still work for them to pick up, or if
        # the fleet is already at the floor — both are the common case, so
        # bail before scanning the fleet.
        if (
            timeout is None
            or self.pending_count() > 0
            or len(self.executors) <= floor
        ):
            return []
        removable = sorted(
            (e.idle_since, e.executor_id)
            for e in self.executors.values()
            if e.free_cores == e.cores
            and e.idle_since is not None
            and now - e.idle_since >= timeout
        )
        removed = []
        for _, eid in removable:
            if len(self.executors) <= floor:
                break
            del self.executors[eid]
            self.skyline.record(now, len(self.executors))
            removed.append(eid)
            if self.tracer is not None:
                self._trace(now, "exec_remove", {"eid": eid})
        return removed

    def fail_executor(self, now: float, eid: int) -> tuple[int, float] | None:
        """An executor crashed or was reclaimed: kill its work, requeue.

        The executor is removed at ``now``; every task in flight on it
        loses all progress and re-enters the pending queue (in its
        original assignment order, behind whatever is already queued) to
        be re-executed from scratch.  Completions the dead executor had
        already scheduled on the driver's heap become stale and are
        dropped by :meth:`complete_task`.

        Returns ``(killed tasks, wasted task-seconds of progress)`` for
        the injector's ledger, or ``None`` when the executor is already
        gone (idle-released or the query finished) and the failure is a
        no-op.
        """
        executor = self.executors.pop(eid, None)
        if executor is None:
            return None
        self._failed.add(eid)
        self.skyline.record(now, len(self.executors))
        killed = self._inflight.pop(eid, [])
        wasted = 0.0
        for _, stage_id, task_idx, start in killed:
            self.running -= 1
            self._pending.append((stage_id, task_idx))
            wasted += now - start
            if self.tracer is not None:
                self._trace(
                    now,
                    "task_kill",
                    {"stage": stage_id, "task": task_idx, "eid": eid},
                )
        return len(killed), wasted

    # --- stages ----------------------------------------------------------
    def pending_count(self) -> int:
        return len(self._pending) - self._pending_head

    def emit_ready(self, stage_id: int, now: float = 0.0) -> None:
        state = self.states[stage_id]
        if state.emitted or state.remaining_deps > 0:
            return
        state.emitted = True
        n_tasks = self.plan.durations[stage_id].shape[0]
        for task_idx in range(n_tasks):
            self._pending.append((stage_id, task_idx))
        if self.tracer is not None:
            # Raw form: fires once per stage per (re)readiness.
            self.tracer.emit(
                (
                    now,
                    "stage_ready",
                    self._trace_pool,
                    self._trace_query,
                    self._trace_qid,
                    stage_id,
                    n_tasks,
                )
            )

    def mark_driver_done(self, now: float = 0.0) -> None:
        """The serial driver prefix finished; root stages become ready.

        ``now`` stamps the emitted ``driver_done`` / ``stage_ready``
        events; it plays no role in untraced physics.
        """
        self.driver_done = True
        if self.tracer is not None:
            self._trace(now, "driver_done")
        for sid in range(len(self.states)):
            self.emit_ready(sid, now)

    # --- assignment ------------------------------------------------------
    def assign(self, now: float, emit: TaskEmit) -> None:
        """Drain pending tasks onto free cores, FIFO.

        Each started task's completion is scheduled through ``emit`` with
        its ``(stage_id, executor_id)`` identity; the driver must route
        the completion back via :meth:`complete_task`.
        """
        if not self.driver_done or self.pending_count() == 0:
            return
        spill = spill_factor(
            self.graph, len(self.executors), self.cluster, self.config
        )
        coord = coordination_factor(len(self.executors), self.config)
        factor = spill * coord
        ctx = self._assign_ctx
        if ctx is not None:
            # Raw-tuple hot-path emission (see
            # repro.obs.trace.RAW_DATA_FIELDS for the flat layout).
            trace_emit, t_pool, t_query, t_qid = ctx
        for executor in self.executors.values():
            while executor.free_cores > 0 and self.pending_count() > 0:
                stage_id, task_idx = self._pending[self._pending_head]
                self._pending_head += 1
                executor.free_cores -= 1
                executor.idle_since = None
                duration = self.plan.durations[stage_id][task_idx] * factor
                if self.faults is not None:
                    duration = self.faults.task_duration(
                        stage_id,
                        task_idx,
                        self.plan.durations[stage_id].shape[0],
                        duration,
                    )
                    self._inflight.setdefault(executor.executor_id, []).append(
                        (now + duration, stage_id, task_idx, now)
                    )
                self.running += 1
                emit(now + duration, stage_id, executor.executor_id)
                if ctx is not None:
                    trace_emit(
                        (
                            now,
                            "task_assign",
                            t_pool,
                            t_query,
                            t_qid,
                            stage_id,
                            task_idx,
                            executor.executor_id,
                            duration,
                        )
                    )
                if self.record_log:
                    self.states[stage_id].observed.append(duration)
            if self.pending_count() == 0:
                break

    def complete_task(self, now: float, stage_id: int, eid: int) -> bool:
        """One task finished; returns True when the whole query just did.

        Completions scheduled by an executor that has since failed are
        *stale*: the failure already killed and requeued the task, so
        the event is dropped here (heaps cannot retract events).
        """
        if self.faults is not None:
            if eid in self._failed:
                return False
            entries = self._inflight.get(eid)
            if entries:
                for i, (finish, sid, _, _) in enumerate(entries):
                    if sid == stage_id and finish == now:
                        entries.pop(i)
                        break
        self.running -= 1
        executor = self.executors.get(eid)
        if executor is not None:
            executor.free_cores += 1
            if executor.free_cores == executor.cores:
                executor.idle_since = now
        # No per-task completion event: the finish instant is derivable
        # from the task_assign event (time + duration_s) unless a
        # task_kill retracted it — see repro.obs.trace.EVENT_KINDS.
        state = self.states[stage_id]
        state.remaining_tasks -= 1
        if state.remaining_tasks == 0:
            self.stages_left -= 1
            if self.tracer is not None:
                # Raw form: fires once per completed stage.
                self.tracer.emit(
                    (
                        now,
                        "stage_done",
                        self._trace_pool,
                        self._trace_query,
                        self._trace_qid,
                        stage_id,
                    )
                )
            for dep_id in self.plan.dependents[stage_id]:
                self.states[dep_id].remaining_deps -= 1
                self.emit_ready(dep_id, now)
        return self.stages_left == 0

    # --- starvation ------------------------------------------------------
    def starved(self) -> bool:
        """Work is waiting but nothing the core holds can ever run it."""
        return (
            self.driver_done
            and self.pending_count() > 0
            and self.running == 0
            and not self.executors
        )

    # --- results ---------------------------------------------------------
    def build_log(self) -> ExecutionLog | None:
        """The observed-duration log (``record_log`` runs only)."""
        if not self.record_log:
            return None
        stage_logs = []
        for sid, deps in enumerate(self.plan.dependencies):
            stage_logs.append(
                StageLog(
                    stage_id=sid,
                    dependencies=list(deps),
                    task_durations=np.asarray(
                        self.states[sid].observed, dtype=float
                    ),
                )
            )
        return ExecutionLog(
            query_id=self.graph.query_id,
            driver_seconds=self.plan.driver_seconds,
            stages=stage_logs,
            cores_per_executor=self.cluster.cores_per_executor,
            executors_used=self.skyline.max_executors,
        )

    def result(
        self, end_time: float, fully_allocated: bool = True
    ) -> SimulationResult:
        """Assemble the :class:`SimulationResult` for a finished run."""
        return SimulationResult(
            runtime=end_time,
            skyline=self.skyline,
            auc=self.skyline.auc(end_time),
            max_executors=self.skyline.max_executors,
            total_tasks=self.plan.total_tasks,
            execution_log=self.build_log(),
            fully_allocated=fully_allocated,
            fault_stats=None if self.faults is None else self.faults.finalize(end_time),
        )

"""Executor allocation policies.

The paper compares three families of per-query allocation (Sections 2.3,
4.5–4.6, 5.4):

- **Static allocation** ``SA(n)``: all ``n`` executors requested at job
  submission and held for the query's lifetime.
- **Dynamic allocation** ``DA(min, max)``: Spark's reactive policy — when
  tasks back up for ``schedulerBacklogTimeout`` the target grows
  *exponentially* (1, 2, 4, … additional executors per round); executors
  idle longer than ``executorIdleTimeout`` are released.
- **Predictive allocation** (AutoExecutor's ``Rule``): the model-predicted
  count is requested during query optimization; reactive *scale-up* is
  disabled (the prediction replaces it) but reactive *deallocation* of idle
  executors is retained (Section 4.6).

Policies are consulted by the scheduler at every event and at 1-second
ticks; they return an absolute executor *target*, and the scheduler turns
target changes into (lagged) grants or idle removals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

__all__ = [
    "AllocationState",
    "AllocationPolicy",
    "StaticAllocation",
    "DynamicAllocation",
    "PredictiveAllocation",
    "BudgetAllocation",
]


@dataclass(frozen=True)
class AllocationState:
    """Scheduler state snapshot handed to a policy.

    Attributes:
        time: simulation clock (seconds since query submission).
        pending_tasks: runnable tasks not yet assigned to a core.
        running_tasks: tasks currently executing.
        active_executors: executors arrived and alive.
        outstanding: executors granted but not yet arrived.
        cores_per_executor: slots each executor contributes.
    """

    time: float
    pending_tasks: int
    running_tasks: int
    active_executors: int
    outstanding: int
    cores_per_executor: int


class AllocationPolicy(Protocol):
    """Protocol all allocation policies implement."""

    #: executors available the moment the query starts (already provisioned
    #: at application submission).
    initial_executors: int

    #: seconds of idleness after which an executor is released, or ``None``
    #: to hold executors until the query ends.
    idle_timeout: float | None

    #: floor below which idle removal must not shrink the fleet.
    min_executors: int

    def desired_target(self, state: AllocationState) -> int:
        """Return the absolute executor target at this instant."""
        ...  # pragma: no cover

    def reset(self) -> None:
        """Clear per-query state before a fresh simulation."""
        ...  # pragma: no cover


class StaticAllocation:
    """``SA(n)``: a fixed fleet for the query's whole lifetime."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("static allocation needs at least 1 executor")
        self.n = int(n)
        self.initial_executors = self.n
        self.idle_timeout: float | None = None
        self.min_executors = self.n

    def desired_target(self, state: AllocationState) -> int:
        return self.n

    def reset(self) -> None:  # stateless
        return None

    def __repr__(self) -> str:
        return f"SA({self.n})"


class DynamicAllocation:
    """Spark-style reactive dynamic allocation.

    Args:
        min_executors / max_executors: the DA range (paper defaults are the
            pathological 0 and 2^31−1; experiments use 1..48).
        backlog_timeout: seconds of sustained backlog before the first
            scale-up round (Spark default 1 s).
        sustained_timeout: seconds between subsequent scale-up rounds.
        idle_timeout: idle-executor release threshold (Spark default 60 s).
        scale_up: set ``False`` to disable reactive growth (used by the
            hybrid predictive policy).
    """

    def __init__(
        self,
        min_executors: int = 1,
        max_executors: int = 48,
        backlog_timeout: float = 1.0,
        sustained_timeout: float = 1.0,
        idle_timeout: float | None = 60.0,
        scale_up: bool = True,
    ) -> None:
        if min_executors < 0 or max_executors < max(min_executors, 1):
            raise ValueError("invalid dynamic allocation range")
        if backlog_timeout <= 0 or sustained_timeout <= 0:
            raise ValueError("backlog timeouts must be positive")
        self.min_executors = int(min_executors)
        self.max_executors = int(max_executors)
        self.backlog_timeout = backlog_timeout
        self.sustained_timeout = sustained_timeout
        self.idle_timeout = idle_timeout
        self.scale_up = scale_up
        self.initial_executors = max(self.min_executors, 1)
        self.reset()

    def reset(self) -> None:
        self._backlog_since: float | None = None
        self._next_round_at: float | None = None
        self._round_size = 1
        self._target = self.initial_executors

    def desired_target(self, state: AllocationState) -> int:
        self._target = max(self._target, self.min_executors)
        if not self.scale_up:
            return self._target
        if state.pending_tasks <= 0:
            # Backlog cleared: reset the exponential ramp.
            self._backlog_since = None
            self._next_round_at = None
            self._round_size = 1
            return self._target
        if self._backlog_since is None:
            self._backlog_since = state.time
            self._next_round_at = state.time + self.backlog_timeout
            return self._target
        assert self._next_round_at is not None
        if state.time < self._next_round_at:
            return self._target
        # One scale-up round: add exponentially more executors, capped only
        # by the configured range.  The paper (Section 2.3) stresses that
        # dynamic allocation "runs the risks of allocating too late as well
        # as exponentially overshooting the required count" — the overshoot
        # is part of the behaviour being measured.
        current = state.active_executors + state.outstanding
        proposal = min(current + self._round_size, self.max_executors)
        self._round_size *= 2
        self._next_round_at = state.time + self.sustained_timeout
        self._target = max(self._target, proposal)
        return self._target

    def __repr__(self) -> str:
        return f"DA({self.min_executors},{self.max_executors})"


class BudgetAllocation:
    """A shared-pool admission budget as a single-query policy.

    This is exactly how the fleet engine (:mod:`repro.fleet.engine`)
    treats an admitted query: it starts with *nothing* on the cluster,
    its whole reserved budget arrives through the provisioning ramp, idle
    executors may be shed down to a floor, and — unlike
    :class:`PredictiveAllocation`, whose standing target re-provisions
    whatever reactive deallocation releases — capacity returned to the
    pool is never asked for again.  Driving ``simulate_query`` with this
    policy therefore reproduces a fleet of one query on an uncontended
    pool bit-for-bit, the differential-parity contract asserted in
    ``tests/engine/test_execution_parity.py`` and the CI bench gate.

    Args:
        n: the admitted executor budget, requested once at submission.
        idle_timeout: reactive deallocation threshold (the fleet's
            ``idle_release_timeout``), or ``None`` to hold the budget.
        min_executors: floor idle release never shrinks below.
    """

    def __init__(
        self,
        n: int,
        idle_timeout: float | None = None,
        min_executors: int = 1,
    ) -> None:
        if n < 1:
            raise ValueError("budget allocation needs at least 1 executor")
        if min_executors < 0:
            raise ValueError("executor floor must be >= 0")
        self.n = int(n)
        self.initial_executors = 0
        self.idle_timeout = idle_timeout
        self.min_executors = int(min_executors)
        self.reset()

    def reset(self) -> None:
        self._requested = False

    def desired_target(self, state: AllocationState) -> int:
        if not self._requested:
            self._requested = True
            return self.n
        # After the one-shot budget request the target tracks whatever is
        # still granted, so idle releases stick instead of being undone.
        return state.active_executors + state.outstanding

    def __repr__(self) -> str:
        return f"Budget({self.n})"


class PredictiveAllocation:
    """AutoExecutor's hybrid policy: predictive up, reactive down.

    The model-predicted count is requested once, when the optimizer's
    prediction rule fires (``request_delay`` seconds into the query —
    optimization time).  Reactive scale-up stays disabled; executors idle
    longer than ``idle_timeout`` are released, but never below
    ``min_executors``.

    Args:
        predicted_executors: the count chosen by the PPM + objective.
        initial_executors: fleet present at submission (Figure 12's example
            run started with 5).
        request_delay: optimizer latency before the request is placed.
        idle_timeout: reactive deallocation threshold.
    """

    def __init__(
        self,
        predicted_executors: int,
        initial_executors: int = 5,
        request_delay: float = 1.0,
        idle_timeout: float | None = 60.0,
        min_executors: int = 1,
    ) -> None:
        if predicted_executors < 1:
            raise ValueError("predicted executor count must be >= 1")
        if initial_executors < 0:
            raise ValueError("initial executor count must be >= 0")
        if request_delay < 0:
            raise ValueError("request delay must be >= 0")
        self.predicted_executors = int(predicted_executors)
        self.initial_executors = int(initial_executors)
        self.request_delay = request_delay
        self.idle_timeout = idle_timeout
        self.min_executors = int(min_executors)
        self.reset()

    def reset(self) -> None:
        self._requested = False

    def desired_target(self, state: AllocationState) -> int:
        if not self._requested and state.time >= self.request_delay:
            self._requested = True
        if self._requested:
            return max(self.predicted_executors, self.min_executors)
        return max(self.initial_executors, self.min_executors)

    def __repr__(self) -> str:
        return f"Rule({self.predicted_executors})"

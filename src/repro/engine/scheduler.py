"""Discrete-event task scheduler.

This is the execution core of the engine simulator: given a query's stage
DAG, an allocation policy, and a cluster, it plays out the query —
executors arrive with provisioning lag, tasks are assigned one-per-core in
waves, stages respect dependencies, idle executors get released — and
produces the run time, the executor skyline, and (optionally) an execution
log that :mod:`repro.sparklens` can analyze post-hoc.

Two second-order effects are modeled because the paper's error analysis
depends on them (Section 5.2: prediction errors are largest at small ``n``):

- **memory pressure**: when the fleet's aggregate memory is below the
  query's working set, tasks slow down by a spill factor — this is the
  real-system behaviour at ``n = 1`` that Sparklens (which replays task
  durations observed at ``n = 16``) systematically misses;
- **coordination overhead**: a mild per-task cost growing with the fleet
  size (shuffle fan-out), which keeps speedup slightly below ideal at
  large ``n``.

The simulation itself is deterministic.  Run-to-run variance (the paper's
4–7 %) is added by :mod:`repro.experiments.runtime_data` on top.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.engine.allocation import AllocationPolicy, AllocationState
from repro.engine.cluster import UNBOUNDED, CapacitySource, Cluster
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.sparklens.log import ExecutionLog, StageLog

__all__ = ["SchedulerConfig", "SimulationResult", "simulate_query"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Physics knobs of the simulator.

    Attributes:
        spill_coefficient: slowdown per unit of working-set deficit.
        max_spill_factor: cap on the memory-pressure slowdown.
        coordination_coefficient: per-task slowdown per 47 extra executors.
        tick_interval: policy polling / idle-check period (Spark polls at
            ~1 s granularity too).
    """

    spill_coefficient: float = 0.8
    max_spill_factor: float = 3.5
    coordination_coefficient: float = 0.12
    tick_interval: float = 1.0


DEFAULT_SCHEDULER_CONFIG = SchedulerConfig()


@dataclass
class SimulationResult:
    """Outcome of one simulated query run.

    Attributes:
        runtime: elapsed seconds from submission to completion.
        skyline: allocated-executor step function over the run.
        auc: total executor occupancy ``∫ n_s ds`` (executor-seconds).
        max_executors: peak allocation during the run.
        total_tasks: tasks executed.
        execution_log: per-stage observed task durations (only when
            ``record_log=True``), consumable by Sparklens.
        fully_allocated: whether the policy's final target was entirely
            provisioned before the query finished (Figure 13 marks these
            queries with a diamond).
    """

    runtime: float
    skyline: Skyline
    auc: float
    max_executors: int
    total_tasks: int
    execution_log: ExecutionLog | None = None
    fully_allocated: bool = True


@dataclass
class _Executor:
    executor_id: int
    cores: int
    free_cores: int
    idle_since: float | None


@dataclass
class _StageState:
    remaining_deps: int
    remaining_tasks: int
    emitted: bool = False
    observed: list[float] = field(default_factory=list)


def _spill_factor(
    graph: StageGraph,
    active_executors: int,
    cluster: Cluster,
    config: SchedulerConfig,
) -> float:
    """Memory-pressure slowdown for the current fleet size."""
    if graph.working_set_bytes <= 0 or active_executors < 1:
        return 1.0
    available = active_executors * cluster.executor_memory_bytes
    deficit = graph.working_set_bytes / available - 1.0
    if deficit <= 0:
        return 1.0
    factor = 1.0 + config.spill_coefficient * deficit
    return min(factor, config.max_spill_factor)


def _coordination_factor(
    active_executors: int, config: SchedulerConfig
) -> float:
    """Mild fan-out overhead growing with fleet size."""
    return 1.0 + config.coordination_coefficient * max(
        0, active_executors - 1
    ) / 47.0


def simulate_query(
    graph: StageGraph,
    policy: AllocationPolicy,
    cluster: Cluster,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
    record_log: bool = False,
    capacity_source: CapacitySource = UNBOUNDED,
) -> SimulationResult:
    """Simulate one query run under an allocation policy.

    Args:
        graph: the query's stage DAG.
        policy: allocation policy (reset before use).
        cluster: cluster manager (capacity + provisioning lag).
        config: scheduler physics.
        record_log: capture an :class:`~repro.sparklens.log.ExecutionLog`
            of observed task durations for post-hoc analysis.
        capacity_source: where executor grants come from — the dedicated
            cluster default grants every clamped request; a shared-pool
            arbiter (``repro.fleet``) may grant fewer.  Everything
            acquired is released back when the query finishes or sheds
            idle executors.

    Returns:
        A :class:`SimulationResult`.
    """
    policy.reset()
    ec = cluster.cores_per_executor

    # --- event machinery ------------------------------------------------
    counter = itertools.count()
    events: list[tuple[float, int, str, int]] = []

    def push(time: float, kind: str, payload: int = 0) -> None:
        heapq.heappush(events, (time, next(counter), kind, payload))

    # --- executors -------------------------------------------------------
    executors: dict[int, _Executor] = {}
    exec_ids = itertools.count()
    outstanding = 0
    granted_total = 0  # active + outstanding, i.e. everything provisioned
    skyline = Skyline()

    def add_executor(now: float) -> None:
        eid = next(exec_ids)
        executors[eid] = _Executor(eid, ec, ec, idle_since=now)
        skyline.record(now, len(executors))

    def remove_executor(now: float, eid: int) -> None:
        nonlocal granted_total
        del executors[eid]
        granted_total -= 1
        capacity_source.release(1)
        skyline.record(now, len(executors))

    # --- stages ----------------------------------------------------------
    states: dict[int, _StageState] = {}
    dependents: dict[int, list[int]] = {s.stage_id: [] for s in graph.stages}
    durations: dict[int, np.ndarray] = {}
    for stage in graph.stages:
        states[stage.stage_id] = _StageState(
            remaining_deps=len(stage.dependencies),
            remaining_tasks=stage.num_tasks,
        )
        durations[stage.stage_id] = stage.task_durations()
        for dep in stage.dependencies:
            dependents[dep].append(stage.stage_id)

    pending: list[tuple[int, int]] = []  # (stage_id, task_index), FIFO
    pending_head = 0
    running = 0
    stages_left = len(graph.stages)
    driver_done = False

    def emit_ready(stage_id: int) -> None:
        state = states[stage_id]
        if state.emitted or state.remaining_deps > 0:
            return
        state.emitted = True
        for task_idx in range(graph.stages[stage_id].num_tasks):
            pending.append((stage_id, task_idx))

    def pending_count() -> int:
        return len(pending) - pending_head

    # --- assignment ------------------------------------------------------
    def assign(now: float) -> None:
        nonlocal pending_head, running
        if not driver_done or pending_count() == 0:
            return
        spill = _spill_factor(graph, len(executors), cluster, config)
        coord = _coordination_factor(len(executors), config)
        factor = spill * coord
        for executor in executors.values():
            while executor.free_cores > 0 and pending_count() > 0:
                stage_id, task_idx = pending[pending_head]
                pending_head += 1
                executor.free_cores -= 1
                executor.idle_since = None
                duration = durations[stage_id][task_idx] * factor
                running += 1
                push(now + duration, "task_done", _pack(stage_id, executor.executor_id))
                if record_log:
                    states[stage_id].observed.append(duration)
            if pending_count() == 0:
                break

    # --- policy ----------------------------------------------------------
    def poll_policy(now: float) -> None:
        nonlocal outstanding, granted_total
        state = AllocationState(
            time=now,
            pending_tasks=pending_count(),
            running_tasks=running,
            active_executors=len(executors),
            outstanding=outstanding,
            cores_per_executor=ec,
        )
        target = cluster.clamp_request(policy.desired_target(state))
        if target > granted_total:
            times = cluster.provision(
                now, target - granted_total, capacity_source
            )
            for t in times:
                push(t, "exec_arrive")
            outstanding += len(times)
            granted_total += len(times)

    def check_idle(now: float) -> None:
        timeout = policy.idle_timeout
        # Keep executors if there is still work for them to pick up, or if
        # the fleet is already at the policy floor — both are the common
        # case, so bail before scanning the fleet.
        if (
            timeout is None
            or pending_count() > 0
            or len(executors) <= policy.min_executors
        ):
            return
        removable = sorted(
            (
                (e.idle_since, e.executor_id)
                for e in executors.values()
                if e.free_cores == e.cores
                and e.idle_since is not None
                and now - e.idle_since >= timeout
            ),
        )
        for _, eid in removable:
            if len(executors) <= policy.min_executors:
                break
            remove_executor(now, eid)

    # --- bootstrap ---------------------------------------------------------
    initial = capacity_source.acquire(
        cluster.clamp_request(policy.initial_executors)
    )
    for _ in range(initial):
        add_executor(0.0)
    granted_total = initial
    if initial == 0:
        skyline.record(0.0, 0)
    push(graph.driver_seconds, "driver_done")
    push(config.tick_interval, "tick")
    poll_policy(0.0)

    end_time: float | None = None

    # --- main loop -----------------------------------------------------------
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "driver_done":
            driver_done = True
            for stage in graph.stages:
                emit_ready(stage.stage_id)
            assign(now)
        elif kind == "exec_arrive":
            outstanding -= 1
            add_executor(now)
            assign(now)
        elif kind == "task_done":
            stage_id, eid = _unpack(payload)
            running -= 1
            executor = executors.get(eid)
            if executor is not None:
                executor.free_cores += 1
                if executor.free_cores == executor.cores:
                    executor.idle_since = now
            state = states[stage_id]
            state.remaining_tasks -= 1
            if state.remaining_tasks == 0:
                stages_left -= 1
                for dep_id in dependents[stage_id]:
                    states[dep_id].remaining_deps -= 1
                    emit_ready(dep_id)
            if stages_left == 0:
                end_time = now
                break
            assign(now)
        elif kind == "tick":
            check_idle(now)
            push(now + config.tick_interval, "tick")
        poll_policy(now)
        # Stall guard: work is waiting but nothing can ever run it — the
        # policy refuses executors and none are on the way.  Without this
        # the tick chain would spin forever.
        if (
            driver_done
            and pending_count() > 0
            and running == 0
            and not executors
            and outstanding == 0
        ):
            raise RuntimeError(
                "simulation stalled: tasks are pending but the allocation "
                "policy provides no executors"
            )

    if end_time is None:
        raise RuntimeError(
            "simulation ended without completing the query (policy never "
            "provided executors?)"
        )

    # Hand everything provisioned — arrived or still in flight — back to
    # the capacity source now that the query is done.
    capacity_source.release(granted_total)

    log = None
    if record_log:
        stage_logs = []
        for stage in graph.stages:
            observed = states[stage.stage_id].observed
            stage_logs.append(
                StageLog(
                    stage_id=stage.stage_id,
                    dependencies=list(stage.dependencies),
                    task_durations=np.asarray(observed, dtype=float),
                )
            )
        log = ExecutionLog(
            query_id=graph.query_id,
            driver_seconds=graph.driver_seconds,
            stages=stage_logs,
            cores_per_executor=ec,
            executors_used=skyline.max_executors,
        )

    return SimulationResult(
        runtime=end_time,
        skyline=skyline,
        auc=skyline.auc(end_time),
        max_executors=skyline.max_executors,
        total_tasks=graph.total_tasks,
        execution_log=log,
        fully_allocated=outstanding == 0,
    )


def _pack(stage_id: int, executor_id: int) -> int:
    return stage_id * 10_000_000 + executor_id


def _unpack(payload: int) -> tuple[int, int]:
    return payload // 10_000_000, payload % 10_000_000

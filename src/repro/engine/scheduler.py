"""Discrete-event task scheduler: the dedicated-cluster driver.

Given a query's stage DAG, an allocation policy, and a cluster,
:func:`simulate_query` plays out the query — executors arrive with
provisioning lag, tasks are assigned one-per-core in waves, stages
respect dependencies, idle executors get released — and produces the run
time, the executor skyline, and (optionally) an execution log that
:mod:`repro.sparklens` can analyze post-hoc.

The execution physics themselves (wave assignment, spill × coordination
slowdowns, idle release, skyline bookkeeping) live in the shared
:class:`~repro.engine.execution.ExecutionCore`; this module contributes
only what is specific to a *dedicated* single-query run: the event heap,
the allocation-policy polling loop, and executor provisioning through a
:class:`~repro.engine.cluster.CapacitySource`.  The fleet engine
(:mod:`repro.fleet.engine`) drives the same core over a shared pool, and
a fleet of one query on an uncontended pool reproduces this function
bit-for-bit (see ``tests/engine/test_execution_parity.py``).

The simulation is deterministic.  Run-to-run variance (the paper's
4–7 %) is added by :mod:`repro.experiments.runtime_data` on top.
"""

from __future__ import annotations

import heapq
import itertools

from repro.engine.allocation import AllocationPolicy, AllocationState
from repro.engine.cluster import UNBOUNDED, CapacitySource, Cluster
from repro.engine.execution import (
    DEFAULT_SCHEDULER_CONFIG,
    CompiledPlan,
    ExecutionCore,
    SchedulerConfig,
    SimulationResult,
    compile_plan,
    coordination_factor,
    spill_factor,
)
from repro.engine.faults import FaultPlan
from repro.engine.stages import StageGraph
from repro.obs.trace import TraceEvent, Tracer

__all__ = ["SchedulerConfig", "SimulationResult", "simulate_query"]

# Backwards-compatible aliases: the physics moved to repro.engine.execution
# when the scheduler and the fleet engine were unified behind one core.
_spill_factor = spill_factor
_coordination_factor = coordination_factor


def simulate_query(
    graph: StageGraph | CompiledPlan,
    policy: AllocationPolicy,
    cluster: Cluster,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
    record_log: bool = False,
    capacity_source: CapacitySource = UNBOUNDED,
    faults: FaultPlan | None = None,
    fault_key: int = 0,
    tracer: Tracer | None = None,
) -> SimulationResult:
    """Simulate one query run under an allocation policy.

    Args:
        graph: the query's stage DAG, or an already-compiled
            :class:`~repro.engine.execution.CompiledPlan` (reuse the
            compiled form when simulating the same query repeatedly).
        policy: allocation policy (reset before use).
        cluster: cluster manager (capacity + provisioning lag).
        config: scheduler physics.
        record_log: capture an :class:`~repro.sparklens.log.ExecutionLog`
            of observed task durations for post-hoc analysis.
        capacity_source: where executor grants come from — the dedicated
            cluster default grants every clamped request; a shared-pool
            arbiter (``repro.fleet``) may grant fewer.  Everything
            acquired is released back when the query finishes or sheds
            idle executors.
        faults: optional seed-driven perturbation layer
            (:mod:`repro.engine.faults`): executor crashes with task
            re-execution, stragglers, spot reclamation.  ``None`` — or a
            plan with every rate at zero — runs the exact unperturbed
            engine, bit for bit.
        fault_key: stable per-query RNG key for the fault streams (the
            fleet passes the arrival-stream position).
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving the
            run's execution events (and ``fault_inject`` draws).  ``None``
            (the default) runs bit-identically to an untraced simulation.

    Returns:
        A :class:`~repro.engine.execution.SimulationResult`.
    """
    plan = graph if isinstance(graph, CompiledPlan) else compile_plan(graph)
    policy.reset()
    injector = faults.injector(fault_key) if faults is not None else None
    replace_failed = faults.replace_failed if faults is not None else True
    core = ExecutionCore(
        plan,
        cluster,
        config,
        record_log=record_log,
        faults=injector,
        tracer=tracer,
    )

    # --- event machinery ------------------------------------------------
    counter = itertools.count()
    events: list[tuple[float, int, str, object]] = []

    def push(time: float, kind: str, payload: object = None) -> None:
        heapq.heappush(events, (time, next(counter), kind, payload))

    def emit_task(finish: float, stage_id: int, eid: int) -> None:
        push(finish, "task_done", (stage_id, eid))

    def arrive_executor(now: float) -> None:
        eid = core.add_executor(now)
        if injector is not None:
            fail_at = injector.on_added(now, eid)
            if fail_at is not None:
                push(fail_at, "exec_fail", eid)
                if tracer is not None:
                    tracer.emit(
                        TraceEvent(
                            now,
                            "fault_inject",
                            query_id=plan.graph.query_id,
                            data={"eid": eid, "fail_at": float(fail_at)},
                        )
                    )

    # --- capacity accounting ---------------------------------------------
    outstanding = 0
    granted_total = 0  # active + outstanding, i.e. everything provisioned

    def poll_policy(now: float) -> None:
        nonlocal outstanding, granted_total
        state = AllocationState(
            time=now,
            pending_tasks=core.pending_count(),
            running_tasks=core.running,
            active_executors=len(core.executors),
            outstanding=outstanding,
            cores_per_executor=cluster.cores_per_executor,
        )
        target = cluster.clamp_request(policy.desired_target(state))
        if target > granted_total:
            times = cluster.provision(
                now, target - granted_total, capacity_source
            )
            for t in times:
                push(t, "exec_arrive")
            outstanding += len(times)
            granted_total += len(times)

    # --- bootstrap ---------------------------------------------------------
    initial = capacity_source.acquire(
        cluster.clamp_request(policy.initial_executors)
    )
    for _ in range(initial):
        arrive_executor(0.0)
    granted_total = initial
    push(plan.driver_seconds, "driver_done")
    push(config.tick_interval, "tick")
    poll_policy(0.0)

    end_time: float | None = None

    # --- main loop -----------------------------------------------------------
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "driver_done":
            core.mark_driver_done(now)
            core.assign(now, emit_task)
        elif kind == "exec_arrive":
            outstanding -= 1
            arrive_executor(now)
            core.assign(now, emit_task)
        elif kind == "task_done":
            stage_id, eid = payload
            if core.complete_task(now, stage_id, eid):
                end_time = now
                break
            core.assign(now, emit_task)
        elif kind == "exec_fail":
            outcome = core.fail_executor(now, payload)
            if outcome is not None:
                cause = injector.on_failed(now, payload, *outcome)
                if tracer is not None:
                    tracer.emit(
                        TraceEvent(
                            now,
                            "exec_fail",
                            query_id=plan.graph.query_id,
                            data={
                                "eid": payload,
                                "cause": cause,
                                "killed": outcome[0],
                                "wasted_s": float(outcome[1]),
                            },
                        )
                    )
                if replace_failed:
                    # The failed executor's grant survives: re-provision
                    # the slot through the normal ramp, no new acquire.
                    for t in cluster.grant_schedule(now, 1):
                        push(t, "exec_arrive")
                    outstanding += 1
                else:
                    granted_total -= 1
                    capacity_source.release(1)
                core.assign(now, emit_task)
        elif kind == "tick":
            removed = core.release_idle(
                now, policy.idle_timeout, policy.min_executors
            )
            if removed:
                granted_total -= len(removed)
                capacity_source.release(len(removed))
                if injector is not None:
                    for eid in removed:
                        injector.on_removed(now, eid)
            push(now + config.tick_interval, "tick")
        poll_policy(now)
        # Stall guard: work is waiting but nothing can ever run it — the
        # policy refuses executors and none are on the way.  Without this
        # the tick chain would spin forever.
        if core.starved() and outstanding == 0:
            raise RuntimeError(
                "simulation stalled: tasks are pending but the allocation "
                "policy provides no executors"
            )

    if end_time is None:
        raise RuntimeError(
            "simulation ended without completing the query (policy never "
            "provided executors?)"
        )

    # Hand everything provisioned — arrived or still in flight — back to
    # the capacity source now that the query is done.
    capacity_source.release(granted_total)

    return core.result(end_time, fully_allocated=outstanding == 0)

"""Rule-based query optimizer with prediction-based extension rules.

The paper augments the Spark optimizer — traditionally rule-based and
cost-based — with *prediction-based* optimizations (Figure 6): ML models
scored in-process during optimization.  This module provides the analogous
surface:

- a handful of classic rewrite rules (no-op filter elimination, project
  collapsing, filter pushdown, union flattening, projection pruning) applied
  to a fixpoint;
- an extension point (``extension_rules``) invoked *after* the rewrite
  pipeline, receiving an :class:`OptimizerContext` through which a rule can
  inspect the optimized plan and request resources — exactly the surface
  :class:`repro.core.autoexecutor.AutoExecutorRule` plugs into (the paper
  notes the AutoExecutor rule is the last rule invoked, once per query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.engine.plan import LogicalPlan, OperatorKind, PlanNode

__all__ = [
    "OptimizerRule",
    "OptimizerContext",
    "Optimizer",
    "RemoveNoOpFilters",
    "CollapseProjects",
    "PushFiltersIntoScans",
    "FlattenUnions",
    "PruneColumns",
    "DEFAULT_REWRITE_RULES",
]


@dataclass
class OptimizerContext:
    """State handed to extension rules.

    Attributes:
        plan: the rewritten (optimized) plan.
        requested_executors: executor count requested by an extension rule
            (``None`` when no rule made a request); consumed by the
            session / allocation layer before execution starts.
        annotations: free-form key/value channel for rules to record
            decisions (used by telemetry and tests).
    """

    plan: LogicalPlan
    requested_executors: int | None = None
    annotations: dict[str, object] = field(default_factory=dict)

    def request_executors(self, n: int) -> None:
        """Record a pre-execution executor request (paper Section 4.5)."""
        if n < 1:
            raise ValueError("executor requests must be >= 1")
        self.requested_executors = int(n)


class OptimizerRule(Protocol):
    """An extension rule: receives the context after rewrites complete."""

    def apply(self, context: OptimizerContext) -> None:  # pragma: no cover
        ...


RewriteRule = Callable[[PlanNode], tuple[PlanNode, bool]]


def _rewrite_bottom_up(node: PlanNode, rule: RewriteRule) -> tuple[PlanNode, bool]:
    # Rewrite children in place: most passes over an already-fixpointed
    # plan change nothing (the optimizer reruns every rule per iteration,
    # and hot paths like the fleet re-optimize recurring plans), so the
    # no-change walk should not churn fresh child lists at every node.
    changed = False
    for i, child in enumerate(node.children):
        new_child, child_changed = _rewrite_bottom_up(child, rule)
        if child_changed:
            node.children[i] = new_child
            changed = True
    node, self_changed = rule(node)
    return node, changed or self_changed


def RemoveNoOpFilters(node: PlanNode) -> tuple[PlanNode, bool]:
    """Drop filters that keep every row (selectivity == 1)."""
    if (
        node.kind == OperatorKind.FILTER
        and node.selectivity >= 1.0
        and len(node.children) == 1
    ):
        return node.children[0], True
    return node, False


def CollapseProjects(node: PlanNode) -> tuple[PlanNode, bool]:
    """Merge adjacent projects, multiplying the kept-column fractions."""
    if (
        node.kind == OperatorKind.PROJECT
        and len(node.children) == 1
        and node.children[0].kind == OperatorKind.PROJECT
    ):
        child = node.children[0]
        merged = PlanNode(
            kind=OperatorKind.PROJECT,
            children=list(child.children),
            rows_out=node.rows_out,
            columns_kept=max(1e-9, node.columns_kept * child.columns_kept),
        )
        return merged, True
    return node, False


def PushFiltersIntoScans(node: PlanNode) -> tuple[PlanNode, bool]:
    """Push single-table (``pushable``) filters into their scan input.

    The filter disappears from the plan; the scan's output cardinality is
    reduced by the filter's selectivity, modeling predicate pushdown into
    the data source.
    """
    if (
        node.kind == OperatorKind.FILTER
        and node.pushable
        and len(node.children) == 1
        and node.children[0].kind == OperatorKind.SCAN
    ):
        scan = node.children[0]
        scan.rows_out = scan.rows_out * node.selectivity
        return scan, True
    return node, False


def FlattenUnions(node: PlanNode) -> tuple[PlanNode, bool]:
    """Flatten ``Union(Union(a, b), c)`` into ``Union(a, b, c)``."""
    if node.kind != OperatorKind.UNION:
        return node, False
    flat: list[PlanNode] = []
    changed = False
    for child in node.children:
        if child.kind == OperatorKind.UNION:
            flat.extend(child.children)
            changed = True
        else:
            flat.append(child)
    if changed:
        node.children = flat
    return node, changed


def PruneColumns(node: PlanNode) -> tuple[PlanNode, bool]:
    """Fold a project directly above a scan into the scan's byte estimate.

    Models projection pruning: reading fewer columns shrinks the bytes the
    scan must fetch.  The project node is kept (Spark keeps it too) but
    marked non-foldable so the rewrite reaches a fixpoint.
    """
    if (
        node.kind == OperatorKind.PROJECT
        and node.columns_kept < 1.0
        and len(node.children) == 1
        and node.children[0].kind == OperatorKind.SCAN
    ):
        scan = node.children[0]
        assert scan.source is not None
        pruned = scan.source.__class__(
            name=scan.source.name,
            bytes=scan.source.bytes * node.columns_kept,
            rows=scan.source.rows,
        )
        scan.source = pruned
        node.columns_kept = 1.0
        return node, True
    return node, False


DEFAULT_REWRITE_RULES: tuple[RewriteRule, ...] = (
    RemoveNoOpFilters,
    CollapseProjects,
    PushFiltersIntoScans,
    FlattenUnions,
    PruneColumns,
)


class Optimizer:
    """Rewrite pipeline + prediction-based extension point.

    Args:
        rewrite_rules: bottom-up rewrite rules, run to a fixpoint (bounded
            by ``max_iterations`` to guard against oscillating rules).
        extension_rules: prediction-based rules run once, in order, after
            rewriting; the last place a query passes through before
            execution (mirroring SPARK-18127 extensions).
        max_iterations: fixpoint bound.
    """

    def __init__(
        self,
        rewrite_rules: tuple[RewriteRule, ...] = DEFAULT_REWRITE_RULES,
        extension_rules: list[OptimizerRule] | None = None,
        max_iterations: int = 20,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.rewrite_rules = rewrite_rules
        self.extension_rules: list[OptimizerRule] = list(extension_rules or [])
        self.max_iterations = max_iterations

    def inject_rule(self, rule: OptimizerRule) -> None:
        """Append a prediction-based extension rule (runs last)."""
        self.extension_rules.append(rule)

    def optimize(self, plan: LogicalPlan) -> OptimizerContext:
        """Rewrite ``plan`` and run extension rules.

        The input plan is not mutated; a copy is rewritten.  Returns the
        final :class:`OptimizerContext` carrying the optimized plan and any
        resource request made by extension rules.
        """
        working = plan.copy()
        for _ in range(self.max_iterations):
            changed = False
            for rule in self.rewrite_rules:
                working.root, rule_changed = _rewrite_bottom_up(
                    working.root, rule
                )
                changed |= rule_changed
            if not changed:
                break
        context = OptimizerContext(plan=working)
        for ext in self.extension_rules:
            ext.apply(context)
        return context

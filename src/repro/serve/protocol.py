"""Hand-rolled HTTP/1.1 framing over asyncio streams.

The serving layer is stdlib-only by contract (ROADMAP: "asyncio HTTP
service, stdlib, no new deps"), so this module implements the slice of
HTTP/1.1 the recommendation service needs and nothing more: request-line
+ header parsing with hard size caps, ``Content-Length`` bodies,
keep-alive connection reuse, and deterministic response serialization.
Unsupported protocol features fail *closed* with the standard status
code (``411`` for missing lengths, ``413`` for oversized bodies, ``431``
for oversized header blocks, ``501`` for transfer encodings) rather than
being half-implemented.

Parsing is pure — no clocks, no randomness — so the module sits inside
the ``wall-clock`` analysis scope without an allowlist entry: timeouts
and latency measurement belong to the server loop and the measured
application layer (:mod:`repro.serve.app`), not to the framing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "MAX_HEADER_BYTES",
    "REASON_PHRASES",
    "HttpRequest",
    "HttpResponse",
    "ProtocolError",
    "json_response",
    "read_request",
    "render_response",
]

#: Cap on the request line plus the whole header block.  Recommendation
#: requests carry their payload in the body; a header block anywhere
#: near this size is malformed or hostile.
MAX_HEADER_BYTES = 16 * 1024

#: Reason phrases for every status the service emits.
REASON_PHRASES: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A request the framing layer refuses to parse.

    Attributes:
        status: HTTP status code the server should answer with.
        detail: human-readable reason, returned in the error body.
    """

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request.

    Attributes:
        method: request method, upper-case (``GET``, ``POST``, ...).
        target: request target path, query string included verbatim.
        headers: header fields with lower-cased names; on duplicates the
            last occurrence wins (none of the fields the service reads
            are list-valued).
        body: raw request body (``b""`` when there is none).
    """

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as UTF-8 JSON.

        Raises:
            ProtocolError: with status 400 on undecodable or invalid
                JSON — malformed payloads are the *client's* error.
        """
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from None


@dataclass(frozen=True)
class HttpResponse:
    """One response ready for serialization.

    Attributes:
        status: HTTP status code (must be in :data:`REASON_PHRASES`).
        body: response payload bytes.
        content_type: ``Content-Type`` header value.
        headers: extra headers, rendered after the standard ones.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(
    status: int, payload: object, headers: dict[str, str] | None = None
) -> HttpResponse:
    """Build a JSON response with deterministic (sorted-key) encoding."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return HttpResponse(
        status=status,
        body=body.encode("utf-8"),
        headers=dict(headers or {}),
    )


def render_response(response: HttpResponse, *, keep_alive: bool) -> bytes:
    """Serialize a response, including framing headers.

    ``Content-Length`` is always present (the service never chunks), so
    clients can pipeline reads; ``Connection`` reflects ``keep_alive``.
    """
    reason = REASON_PHRASES.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read request line + headers up to the blank line, or None on EOF."""
    raw = b""
    while b"\r\n\r\n" not in raw and b"\n\n" not in raw:
        try:
            chunk = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not raw:
                return None  # clean EOF between requests
            raise ProtocolError(400, "truncated request head") from None
        except asyncio.LimitOverrunError:
            raise ProtocolError(431, "request head line too long") from None
        raw += chunk
        if len(raw) > MAX_HEADER_BYTES:
            raise ProtocolError(431, "request head too large")
        if chunk in (b"\r\n", b"\n"):
            break
    text = raw.decode("latin-1")  # latin-1 is total: never raises
    return [line.rstrip("\r") for line in text.split("\n")]


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream between requests (the
    keep-alive loop's normal exit).  Raises :class:`ProtocolError` on
    anything malformed; the server answers with the error's status and
    closes the connection, because after a framing error the stream
    position is unreliable.

    Args:
        reader: the connection's stream reader.
        max_body_bytes: hard cap on ``Content-Length``; larger bodies
            are rejected with 413 *before* being read.
    """
    head = await _read_head(reader)
    if head is None:
        return None
    request_line = head[0].strip()
    if not request_line:
        raise ProtocolError(400, "empty request line")
    parts = request_line.split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported HTTP version: {version!r}")
    if not target.startswith("/"):
        raise ProtocolError(400, f"malformed request target: {target!r}")

    headers: dict[str, str] = {}
    for line in head[1:]:
        if not line.strip():
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError(501, "transfer encodings are not supported")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                400, f"malformed Content-Length: {length_text!r}"
            ) from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds the {max_body_bytes} cap"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated request body") from None
    elif method.upper() in ("POST", "PUT", "PATCH"):
        raise ProtocolError(411, "Content-Length required")

    return HttpRequest(
        method=method.upper(), target=target, headers=headers, body=body
    )

"""The asyncio HTTP server: connections, deadlines, graceful drain.

:class:`RecommendationServer` is the socket-facing shell around a
:class:`~repro.serve.app.RecommendApp`: it accepts connections with
``asyncio.start_server``, parses requests through
:mod:`repro.serve.protocol`, enforces the per-request deadline, and maps
the failure modes onto their HTTP statuses:

- framing errors → the :class:`~repro.serve.protocol.ProtocolError`'s
  status (400/411/413/431/501), connection closed;
- deadline expiry (``request_timeout_s``) → 504, the queued slot's
  eventual result discarded;
- bounded-queue shed and drain are answered by the app itself (429/503);
- unexpected handler failures → 500 (the connection survives).

**Graceful lifecycle.**  :meth:`RecommendationServer.shutdown` stops
accepting, answers new requests on kept-alive connections with 503
``Connection: close``, drains the batcher (queued requests still get
answers), waits up to ``drain_timeout_s`` for in-flight requests to
finish, and only then force-closes lingering idle connections.

The module never reads the host clock — deadlines are delegated to
``asyncio.wait_for`` and latency measurement lives in the allowlisted
measured-overhead module (:mod:`repro.serve.app`) — so it stays inside
the ``wall-clock`` analysis scope with nothing to waive.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.serve.app import RecommendApp
from repro.serve.protocol import (
    HttpRequest,
    HttpResponse,
    ProtocolError,
    json_response,
    read_request,
    render_response,
)

__all__ = ["RecommendationServer", "ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Socket-level serving knobs.

    Attributes:
        host: bind address (loopback by default: this is an in-process
            service, not an internet-facing one).
        port: bind port; ``0`` picks an ephemeral port (read it back
            from :attr:`RecommendationServer.address`).
        request_timeout_s: per-request deadline, measured from parse
            completion to response readiness; expiry answers 504.
        max_body_bytes: request-body cap; larger payloads answer 413.
        drain_timeout_s: how long :meth:`RecommendationServer.shutdown`
            waits for in-flight requests before force-closing.
    """

    host: str = "127.0.0.1"
    port: int = 0
    request_timeout_s: float = 1.0
    max_body_bytes: int = 64 * 1024
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s cannot be negative")


class RecommendationServer:
    """Serve a :class:`~repro.serve.app.RecommendApp` over HTTP/1.1.

    Usage::

        app = RecommendApp.from_registry(registry_dir, "ae_pl")
        server = RecommendationServer(app, ServerConfig(port=0))
        await server.start()
        host, port = server.address
        ...
        await server.shutdown()
    """

    def __init__(
        self, app: RecommendApp, config: ServerConfig | None = None
    ) -> None:
        self.app = app
        self.config = config if config is not None else ServerConfig()
        self._server: asyncio.Server | None = None
        self._draining = False
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._writers: set[asyncio.StreamWriter] = set()

    # --- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the app's batching dispatcher."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.app.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ephemeral port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        name = self._server.sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def serve_forever(self) -> None:
        """Block until the server is shut down."""
        if self._server is None:
            raise RuntimeError("server is not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            # serve_forever is cancelled by shutdown(); the drain has
            # its own await chain, so swallow the cancellation here.
            pass

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight work, then close everything."""
        if self._server is None:
            return
        self._draining = True
        self.app.draining = True
        self._server.close()
        await self._server.wait_closed()
        # Flush the batcher FIRST: requests already queued into a forming
        # batch get scored and answered instead of idling into their
        # deadlines.  Only then wait for the connection handlers to write
        # those responses out.
        await self.app.close()
        try:
            await asyncio.wait_for(
                self._idle.wait(), self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            pass  # force-close below; slow requests lose their sockets
        for writer in list(self._writers):
            writer.close()
        self._server = None

    # --- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # the peer went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except ProtocolError as exc:
                # After a framing error the stream position is not
                # trustworthy: answer and close.
                writer.write(
                    render_response(
                        json_response(exc.status, {"error": exc.detail}),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return  # clean EOF between requests
            if self._draining:
                writer.write(
                    render_response(
                        json_response(
                            503, {"error": "server is shutting down"}
                        ),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            response = await self._respond(request)
            keep_alive = (
                request.headers.get("connection", "keep-alive").lower()
                != "close"
            )
            writer.write(render_response(response, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return

    async def _respond(self, request: HttpRequest) -> HttpResponse:
        self._in_flight += 1
        self._idle.clear()
        try:
            return await asyncio.wait_for(
                self.app.handle(request), self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.app.note_timeout()
            return json_response(
                504,
                {
                    "error": "request deadline of "
                    f"{self.config.request_timeout_s}s expired"
                },
            )
        except Exception:  # the connection must survive handler bugs
            return json_response(500, {"error": "internal server error"})
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

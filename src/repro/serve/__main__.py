"""CLI entry point: ``python -m repro.serve --registry DIR --model NAME``.

Stands up a :class:`~repro.serve.server.RecommendationServer` over an
exported model registry and serves until interrupted.  SIGINT/SIGTERM
trigger the graceful drain (in-flight requests finish, queued requests
get answers, then sockets close).

This is the operational shell, so it is the one :mod:`repro.serve`
module permitted to print (ruff ``T20`` per-file ignore): startup and
shutdown lines go to stdout for the operator.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
from pathlib import Path

from repro.obs.trace import JsonlTracer, Tracer
from repro.serve.app import RecommendApp
from repro.serve.server import RecommendationServer, ServerConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument surface."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Serve executor-count recommendations from an exported "
            "price-performance model registry."
        ),
    )
    parser.add_argument(
        "--registry",
        required=True,
        type=Path,
        help="portable-model registry directory (see repro.export)",
    )
    parser.add_argument(
        "--model",
        required=True,
        help="model name inside the registry",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="cap on coalesced requests per inference call",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batching window in milliseconds",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="bounded request queue size (beyond it: 429)",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=1000.0,
        help="per-request deadline in milliseconds (expiry: 504)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write serve_request/serve_batch trace events to this JSONL file",
    )
    return parser


async def _serve(args: argparse.Namespace, tracer: Tracer | None) -> None:
    app = RecommendApp.from_registry(
        args.registry,
        args.model,
        tracer=tracer,
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_limit=args.queue_limit,
    )
    server = RecommendationServer(
        app,
        ServerConfig(
            host=args.host,
            port=args.port,
            request_timeout_s=args.timeout_ms / 1e3,
        ),
    )
    await server.start()
    host, port = server.address
    print(f"serving model {args.model!r} on http://{host}:{port}")
    print("routes: POST /v1/recommend  GET /metrics  GET /healthz")

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    forever = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("draining ...")
    await server.shutdown()
    await forever
    print("stopped")


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and serve until interrupted."""
    args = build_parser().parse_args(argv)
    tracer = JsonlTracer(args.trace) if args.trace is not None else None
    try:
        asyncio.run(_serve(args, tracer))
    finally:
        if tracer is not None:
            tracer.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

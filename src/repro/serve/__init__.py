"""Serve the exported price-performance model over HTTP.

``repro.serve`` is the deployment surface the paper's pipeline feeds:
models trained by :mod:`repro.sparklens` and exported through
:mod:`repro.export` answer live *executor-count* queries here, through
the same :class:`~repro.fleet.prediction.PredictionService` (memo cache,
batched inference, measured overhead) the fleet simulator uses — so a
served recommendation is byte-identical to the decision the simulated
allocator would have made.

The package is **stdlib-only** (asyncio + hand-rolled HTTP/1.1; no new
dependencies) and splits into four layers:

- :mod:`repro.serve.protocol` — HTTP/1.1 framing (pure, clock-free);
- :mod:`repro.serve.batching` — :class:`MicroBatcher`, the bounded
  request queue that coalesces concurrent requests into single
  ``predict_ppm_batch`` dispatches;
- :mod:`repro.serve.app` — :class:`RecommendApp`, the routed
  application with self-measurement (the one allowlisted
  measured-overhead module);
- :mod:`repro.serve.server` — :class:`RecommendationServer`, the
  socket shell with per-request deadlines and graceful drain.

Quick start (full walkthrough in ``docs/serving.md``)::

    python -m repro.serve --registry models/ --model ae_pl --port 8080

or in-process::

    app = RecommendApp.from_registry("models/", "ae_pl")
    server = RecommendationServer(app, ServerConfig(port=0))
    await server.start()
"""

from repro.serve.app import ROUTES, RecommendApp
from repro.serve.batching import (
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
    submit_all,
)
from repro.serve.client import HttpReply, ServeClient
from repro.serve.protocol import (
    HttpRequest,
    HttpResponse,
    ProtocolError,
    json_response,
    read_request,
    render_response,
)
from repro.serve.server import RecommendationServer, ServerConfig

__all__ = [
    "ROUTES",
    "BatcherClosedError",
    "HttpReply",
    "HttpRequest",
    "HttpResponse",
    "MicroBatcher",
    "ProtocolError",
    "QueueFullError",
    "RecommendApp",
    "RecommendationServer",
    "ServeClient",
    "ServerConfig",
    "json_response",
    "read_request",
    "render_response",
    "submit_all",
]

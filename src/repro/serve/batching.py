"""Request micro-batching: coalesce concurrent submits into one call.

The portable runtime scores a whole feature matrix in one dispatch
(:meth:`repro.export.runtime.PortablePPMScorer.predict_ppm_batch`), and
:meth:`repro.fleet.prediction.PredictionService.predict_batch` already
routes every cache miss in a batch through that single call.  What the
HTTP service adds is *time*: concurrent requests land on the event loop
within microseconds of each other, so holding the first request for a
bounded window (``max_wait_s``) and coalescing everything that arrives
in the meantime — up to ``max_batch_size`` — turns N single-row
inferences into one matrix inference without materially moving p99.

The dispatcher is also the service's **bounded request queue**: submits
beyond ``max_pending`` fail immediately with :class:`QueueFullError`,
which the server answers as 429 (load shedding at the door beats
queueing into timeout).  Batch composition is *timing-dependent* —
how requests group depends on their arrival interleaving — but the
results are not: the scorer's batch contract guarantees row ``i`` of a
batch scores identically to a lone call, so the same inputs produce the
same recommendations regardless of how they were coalesced (asserted in
``tests/serve/test_server.py``).

Deadlines use the event loop's own monotonic clock (``loop.time()``);
the module never reads the wall clock, so it stays inside the
``wall-clock`` analysis scope without an allowlist entry.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Generic, TypeVar

__all__ = [
    "BatcherClosedError",
    "MicroBatcher",
    "QueueFullError",
    "submit_all",
]

TItem = TypeVar("TItem")
TResult = TypeVar("TResult")


class QueueFullError(RuntimeError):
    """The bounded request queue is at capacity; shed the request."""


class BatcherClosedError(RuntimeError):
    """Submit after :meth:`MicroBatcher.close` — the server is draining."""


class MicroBatcher(Generic[TItem, TResult]):
    """Coalesce concurrent submissions into bounded batch calls.

    Args:
        batch_fn: called with a non-empty list of items, must return one
            result per item, *in submission order* — the contract
            :meth:`~repro.fleet.prediction.PredictionService
            .predict_batch` provides.  Called on the event loop thread;
            it should be short (one numpy inference dispatch).
        max_batch_size: hard cap on the items per call.
        max_wait_s: how long the first item of a forming batch waits for
            company before dispatch (the latency the service trades for
            coalescing).
        max_pending: bound on queued items; beyond it submissions fail
            fast with :class:`QueueFullError`.

    Stats (``n_batches``, ``n_items``, ``peak_batch_size``) accumulate
    per dispatch; the application layer folds per-batch sizes into its
    metrics sketch through the optional ``observe_batch`` callback.
    """

    def __init__(
        self,
        batch_fn: Callable[[list[TItem]], list[TResult]],
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 1024,
        observe_batch: Callable[[int], None] | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.batch_fn = batch_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_pending = int(max_pending)
        self.observe_batch = observe_batch
        self.n_batches = 0
        self.n_items = 0
        self.peak_batch_size = 0
        self._queue: asyncio.Queue[
            tuple[TItem, asyncio.Future[TResult]] | None
        ] = asyncio.Queue()
        self._pending = 0
        self._closed = False
        self._task: asyncio.Task[None] | None = None

    # --- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain: refuse new submits, dispatch what is queued, stop."""
        if self._closed:
            return
        self._closed = True
        self._queue.put_nowait(None)  # wake the dispatcher for shutdown
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def pending(self) -> int:
        """Items submitted but not yet dispatched."""
        return self._pending

    # --- submission ------------------------------------------------------
    async def submit(self, item: TItem) -> TResult:
        """Queue one item and await its batch's result for it.

        Raises:
            QueueFullError: the bounded queue is at ``max_pending``.
            BatcherClosedError: the batcher is draining/closed.
        """
        if self._closed:
            raise BatcherClosedError("batcher is closed")
        if self._pending >= self.max_pending:
            raise QueueFullError(
                f"request queue at capacity ({self.max_pending})"
            )
        if self._task is None:
            self.start()
        future: asyncio.Future[TResult] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending += 1
        self._queue.put_nowait((item, future))
        return await future

    # --- dispatcher ------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                if self._closed and self._queue.empty():
                    return
                continue
            batch = [first]
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - loop.time()
                entry: tuple[TItem, asyncio.Future[TResult]] | None
                if self._queue.qsize():
                    entry = self._queue.get_nowait()
                elif remaining <= 0 or self._closed:
                    break
                else:
                    try:
                        entry = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if entry is None:
                    # Shutdown sentinel: dispatch what we have; the top
                    # of the loop will observe _closed and exit.
                    self._queue.put_nowait(None)
                    break
                batch.append(entry)
            self._dispatch(batch)
            if self._closed and self._queue.empty():
                return

    def _dispatch(
        self, batch: list[tuple[TItem, asyncio.Future[TResult]]]
    ) -> None:
        """Run one batch call and resolve its futures."""
        self._pending -= len(batch)
        self.n_batches += 1
        self.n_items += len(batch)
        if len(batch) > self.peak_batch_size:
            self.peak_batch_size = len(batch)
        if self.observe_batch is not None:
            self.observe_batch(len(batch))
        try:
            results = self.batch_fn([item for item, _ in batch])
        except Exception as exc:  # resolve every waiter with the failure
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(batch):
            error = RuntimeError(
                f"batch_fn returned {len(results)} results for "
                f"{len(batch)} items"
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch, results):
            # A waiter whose request timed out was cancelled; its slot
            # still scored (the batch was already formed) but nobody is
            # listening.
            if not future.done():
                future.set_result(result)


async def submit_all(
    batcher: MicroBatcher[TItem, TResult], items: list[TItem]
) -> list[TResult]:
    """Submit many items concurrently and gather their results in order.

    A convenience for tests and drivers; equivalent to
    ``asyncio.gather(*(batcher.submit(i) for i in items))``.
    """
    tasks: list[Awaitable[TResult]] = [
        asyncio.ensure_future(batcher.submit(item)) for item in items
    ]
    return list(await asyncio.gather(*tasks))

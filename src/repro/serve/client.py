"""A minimal asyncio HTTP/1.1 client for the recommendation service.

The load-test bench, the end-to-end example, and the protocol test
suite all need to speak to the server without new dependencies, so this
module provides the counterpart of :mod:`repro.serve.protocol`: one
persistent (keep-alive) connection per :class:`ServeClient`, requests
serialized by hand, responses parsed with the same hard caps the server
applies to requests.

This is a *test-and-bench* client, deliberately small: one in-flight
request per connection (HTTP/1.1 without pipelining), JSON bodies only.
Open several clients for concurrency — that is exactly what the load
generator does.
"""

from __future__ import annotations

import asyncio
import json
from types import TracebackType

from repro.serve.protocol import MAX_HEADER_BYTES, ProtocolError

__all__ = ["HttpReply", "ServeClient"]


class HttpReply:
    """One parsed response.

    Attributes:
        status: HTTP status code.
        headers: header fields, names lower-cased.
        body: raw payload bytes.
    """

    def __init__(
        self, status: int, headers: dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """Decode the body as UTF-8 JSON."""
        return json.loads(self.body.decode("utf-8"))


class ServeClient:
    """One keep-alive connection to a recommendation server.

    Usable as an async context manager::

        async with ServeClient(host, port) as client:
            reply = await client.post_json("/v1/recommend", payload)
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServeClient":
        """Open the connection (idempotent)."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        await self.close()

    # --- requests --------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> HttpReply:
        """Send one request and read its response.

        The connection is reused across calls; if the server answered
        ``Connection: close`` the socket is closed afterwards and the
        next call reconnects.
        """
        await self.connect()
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        reply = await _read_reply(self._reader)
        if reply.headers.get("connection", "").lower() == "close":
            await self.close()
        return reply

    async def get(self, path: str) -> HttpReply:
        """``GET path``."""
        return await self.request("GET", path)

    async def post_json(self, path: str, payload: object) -> HttpReply:
        """``POST path`` with a JSON payload."""
        body = json.dumps(payload).encode("utf-8")
        return await self.request("POST", path, body=body)


async def _read_reply(reader: asyncio.StreamReader) -> HttpReply:
    """Parse one response off the stream (Content-Length framing only)."""
    raw = b""
    while True:
        try:
            chunk = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError(400, "truncated response head") from None
        raw += chunk
        if len(raw) > MAX_HEADER_BYTES:
            raise ProtocolError(431, "response head too large")
        if chunk in (b"\r\n", b"\n"):
            break
    lines = [line.rstrip("\r") for line in raw.decode("latin-1").split("\n")]
    status_parts = lines[0].split(None, 2)
    if len(status_parts) < 2 or not status_parts[1].isdigit():
        raise ProtocolError(400, f"malformed status line: {lines[0]!r}")
    status = int(status_parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return HttpReply(status, headers, body)

"""The recommendation application: routes, batching, self-measurement.

:class:`RecommendApp` is the HTTP-independent core of the serving layer:
it owns the :class:`~repro.fleet.prediction.PredictionService` (and with
it the plan-signature memo cache), the
:class:`~repro.serve.batching.MicroBatcher` that coalesces concurrent
recommendation requests into single
:meth:`~repro.export.runtime.PortablePPMScorer.predict_ppm_batch`
dispatches, and a :class:`~repro.obs.metrics.MetricsRegistry` of
counters and :class:`~repro.obs.sketch.QuantileSketch`\\ es that
self-measure the service (p50/p95/p99 service latency per endpoint,
batch-size distribution, cache hit rate) — served back as JSON at
``/metrics``.

**Measured overhead.**  This is the serving layer's one
*measured-overhead* module: service latency is real elapsed wall-clock
time (``time.perf_counter`` around each request's queue + batch + score
path), exactly like the prediction service's measured selection
overhead.  It is therefore allowlisted for the ``wall-clock`` analysis
rule; the rest of :mod:`repro.serve` must stay clock-free.

Endpoints (full request/response schemas in ``docs/serving.md``):

- ``POST /v1/recommend`` — one feature vector in, one executor-count
  recommendation out (coalesced server-side into batched inference).
- ``GET /metrics`` — JSON self-measurement snapshot.
- ``GET /healthz`` — liveness + draining state.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.features import FEATURE_NAMES, QueryFeatures
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer
from repro.fleet.prediction import Prediction, PredictionService
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer
from repro.serve.batching import (
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
)
from repro.serve.protocol import HttpRequest, HttpResponse, ProtocolError, json_response

__all__ = ["ROUTES", "RecommendApp"]

#: The public routes, in documentation order.
ROUTES: tuple[str, ...] = ("/v1/recommend", "/metrics", "/healthz")


class RecommendApp:
    """Route recommendation traffic onto a batched prediction service.

    Args:
        service: the prediction service to answer with; its memo cache,
            hit counters, and batch inference path are reused verbatim,
            so an HTTP recommendation is the same decision the fleet
            allocator would have made.
        model_name: reported by ``/healthz`` and ``/metrics``.
        max_batch_size: cap on coalesced requests per inference call.
        max_wait_s: micro-batching window (see
            :class:`~repro.serve.batching.MicroBatcher`).
        queue_limit: bound on queued requests; beyond it requests are
            shed with 429.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, the
            app emits one ``serve_request`` event per handled request
            and one ``serve_batch`` event per coalesced dispatch (both
            stamped at time ``0.0``: the service has no simulation
            clock).
    """

    def __init__(
        self,
        service: PredictionService,
        *,
        model_name: str = "model",
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        queue_limit: int = 1024,
        tracer: Tracer | None = None,
    ) -> None:
        self.service = service
        self.model_name = model_name
        self.tracer = tracer
        self.metrics = MetricsRegistry()
        self.draining = False
        self.batcher: MicroBatcher[QueryFeatures, tuple[Prediction, int]] = (
            MicroBatcher(
                self._score_batch,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                max_pending=queue_limit,
                observe_batch=self._observe_batch,
            )
        )

    @classmethod
    def from_registry(
        cls,
        registry_dir: str | Path,
        model_name: str,
        *,
        tracer: Tracer | None = None,
        **kwargs: object,
    ) -> "RecommendApp":
        """Build an app over a portable-model registry directory.

        Stands up the load-once :class:`~repro.export.runtime
        .PortableModelRuntime`, adapts the named model through
        :class:`~repro.export.runtime.PortablePPMScorer`, and fronts it
        with a fresh :class:`~repro.fleet.prediction.PredictionService`.
        """
        runtime = PortableModelRuntime(registry_dir)
        scorer = PortablePPMScorer(runtime, model_name)
        service = PredictionService(scorer, tracer=tracer)
        return cls(
            service,
            model_name=model_name,
            tracer=tracer,
            **kwargs,  # type: ignore[arg-type]
        )

    # --- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start the batching dispatcher (requires a running loop)."""
        self.batcher.start()

    async def close(self) -> None:
        """Drain the batcher; queued requests still get answers."""
        self.draining = True
        await self.batcher.close()

    # --- scoring ---------------------------------------------------------
    def _score_batch(
        self, items: list[QueryFeatures]
    ) -> list[tuple[Prediction, int]]:
        """One coalesced inference call; results ride with batch size."""
        predictions = self.service.predict_batch(items)
        return [(p, len(items)) for p in predictions]

    def _observe_batch(self, size: int) -> None:
        self.metrics.sketch("serve.batch_size").add(float(size))
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(0.0, "serve_batch", data={"size": size}))

    # --- request handling ------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one parsed request, measuring its service latency.

        The measured window covers validation, queueing, the batching
        wait, inference, and response construction — everything between
        the request being parsed off the socket and its response bytes
        being ready, which is the latency a caller's deadline budget
        actually spends.
        """
        start = time.perf_counter()
        route, response = await self._route(request)
        elapsed = time.perf_counter() - start
        self.metrics.counter(f"http.requests.{route}").inc()
        self.metrics.counter(f"http.status.{response.status}").inc()
        self.metrics.sketch(f"serve.latency_s.{route}").add(elapsed)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    0.0,
                    "serve_request",
                    data={
                        "route": route,
                        "status": response.status,
                        "seconds": elapsed,
                    },
                )
            )
        return response

    async def _route(self, request: HttpRequest) -> tuple[str, HttpResponse]:
        """Dispatch to the matching endpoint; returns (route label, response)."""
        path = request.target.split("?", 1)[0]
        if path == "/v1/recommend":
            if request.method != "POST":
                return path, _method_not_allowed("POST")
            return path, await self._recommend(request)
        if path == "/metrics":
            if request.method != "GET":
                return path, _method_not_allowed("GET")
            return path, json_response(200, self.metrics_snapshot())
        if path == "/healthz":
            if request.method != "GET":
                return path, _method_not_allowed("GET")
            return path, json_response(
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "model": self.model_name,
                },
            )
        return "other", json_response(
            404, {"error": f"unknown route {path!r}", "routes": list(ROUTES)}
        )

    async def _recommend(self, request: HttpRequest) -> HttpResponse:
        try:
            features = _parse_features(request)
        except ProtocolError as exc:
            return json_response(exc.status, {"error": exc.detail})
        try:
            prediction, batch_size = await self.batcher.submit(features)
        except QueueFullError:
            self.metrics.counter("serve.shed").inc()
            return json_response(
                429,
                {"error": "request queue is full; retry later"},
                headers={"Retry-After": "1"},
            )
        except BatcherClosedError:
            return json_response(503, {"error": "server is draining"})
        return json_response(
            200,
            {
                "query_id": features.query_id,
                "executors": prediction.executors,
                "estimated_runtime_s": prediction.estimated_runtime_seconds,
                "cached": prediction.cached,
                "batch_size": batch_size,
            },
        )

    def note_timeout(self) -> None:
        """Record a request the server expired at its deadline (504)."""
        self.metrics.counter("serve.timeout").inc()
        self.metrics.counter("http.status.504").inc()

    # --- self-measurement ------------------------------------------------
    def metrics_snapshot(self) -> dict[str, object]:
        """The ``/metrics`` document: one JSON-safe self-measurement.

        Latency quantiles come from the per-endpoint sketches and carry
        the sketch's relative-accuracy bound; counts, cache stats, and
        batch totals are exact.
        """
        latency: dict[str, dict[str, float]] = {}
        for name, sketch in sorted(self.metrics.sketches.items()):
            if not name.startswith("serve.latency_s."):
                continue
            route = name[len("serve.latency_s.") :]
            latency[route] = {
                "count": float(sketch.count),
                "mean_ms": sketch.mean * 1e3,
                "p50_ms": sketch.quantile(50) * 1e3,
                "p95_ms": sketch.quantile(95) * 1e3,
                "p99_ms": sketch.quantile(99) * 1e3,
                "max_ms": (sketch.max or 0.0) * 1e3,
            }
        batch_sketch = self.metrics.sketches.get("serve.batch_size")
        batcher = self.batcher
        service = self.service
        decisions = service.hits + service.misses
        return {
            "model": self.model_name,
            "draining": self.draining,
            "requests": {
                name[len("http.requests.") :]: int(counter.value)
                for name, counter in sorted(self.metrics.counters.items())
                if name.startswith("http.requests.")
            },
            "status": {
                name[len("http.status.") :]: int(counter.value)
                for name, counter in sorted(self.metrics.counters.items())
                if name.startswith("http.status.")
            },
            "latency_ms": latency,
            "batch": {
                "batches": batcher.n_batches,
                "items": batcher.n_items,
                "mean_size": (
                    batcher.n_items / batcher.n_batches
                    if batcher.n_batches
                    else 0.0
                ),
                "peak_size": batcher.peak_batch_size,
                "p50_size": (
                    batch_sketch.quantile(50) if batch_sketch is not None else 0.0
                ),
                "pending": batcher.pending,
            },
            "prediction": {
                "hits": service.hits,
                "misses": service.misses,
                "hit_rate": service.hits / decisions if decisions else 0.0,
                "cache_size": service.cache_size,
                "model_generation": service.generation,
                "batched": service.batched,
                "mean_overhead_ms": service.mean_overhead_seconds() * 1e3,
            },
            "shed": int(self.metrics.counter("serve.shed").value),
            "timeouts": int(self.metrics.counter("serve.timeout").value),
        }


def _method_not_allowed(allowed: str) -> HttpResponse:
    return json_response(
        405, {"error": "method not allowed"}, headers={"Allow": allowed}
    )


def _parse_features(request: HttpRequest) -> QueryFeatures:
    """Validate a recommend payload into :class:`QueryFeatures`.

    Raises:
        ProtocolError: status 400 with a field-level message on any
            malformed payload — undecodable JSON, a non-object document,
            a missing/wrong-length/non-numeric feature vector.
    """
    document = request.json()
    if not isinstance(document, dict):
        raise ProtocolError(400, "request body must be a JSON object")
    raw = document.get("features")
    if not isinstance(raw, list):
        raise ProtocolError(400, 'missing or non-array "features" field')
    if len(raw) != len(FEATURE_NAMES):
        raise ProtocolError(
            400,
            f'"features" must have {len(FEATURE_NAMES)} entries '
            f"(got {len(raw)}); the order is repro.core.features"
            ".FEATURE_NAMES",
        )
    values: list[float] = []
    for position, entry in enumerate(raw):
        if isinstance(entry, bool) or not isinstance(entry, (int, float)):
            raise ProtocolError(
                400, f'"features"[{position}] is not a number'
            )
        values.append(float(entry))
    query_id = document.get("query_id", "")
    if not isinstance(query_id, str):
        raise ProtocolError(400, '"query_id" must be a string when present')
    return QueryFeatures(values=np.asarray(values), query_id=query_id)

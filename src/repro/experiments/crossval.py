"""The paper's cross-validation protocol (Sections 5.1–5.2).

"For evaluating how well the model predictions generalize across query
templates, we do a 5-fold cross validation (80:20 training:test dataset
split) and repeat it 10 times" — with every fold's test queries excluded
from its training set.  For each fold we train both parameter-model
families on the *training* queries' Sparklens-fit labels and predict full
run-time curves for the *test* queries; errors ``E(n)`` are computed
against the actual (simulated, averaged) run times.

The per-fold predicted curves are retained: the configuration-selection
experiments (Figures 10, 11, 13) consume them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import e_metric
from repro.core.training import TrainingDataset
from repro.experiments.runtime_data import ActualRuns
from repro.ml.model_selection import RepeatedKFold

__all__ = ["FoldResult", "CrossValResult", "run_cross_validation", "FAMILIES"]

FAMILIES: tuple[str, ...] = ("power_law", "amdahl")

#: Display labels matching the paper's series names.
FAMILY_LABELS: dict[str, str] = {"power_law": "AE_PL", "amdahl": "AE_AL"}


@dataclass
class FoldResult:
    """One fold of one repeat.

    Attributes:
        repeat: repeat index (0-based).
        train_ids / test_ids: query split.
        predicted_curves: ``{family: {query_id: curve over n_grid}}`` for
            both train and test queries (train curves are the "fit" error
            series of Figure 9a).
    """

    repeat: int
    train_ids: list[str]
    test_ids: list[str]
    predicted_curves: dict[str, dict[str, np.ndarray]] = field(
        default_factory=dict
    )


@dataclass
class CrossValResult:
    """All folds plus the shared inputs needed to score them."""

    folds: list[FoldResult]
    dataset: TrainingDataset
    actuals: ActualRuns
    n_grid: np.ndarray

    def error_at(
        self, family_or_sparklens: str, n: int, split: str = "test"
    ) -> np.ndarray:
        """Per-fold ``E(n)`` values for one series.

        Args:
            family_or_sparklens: ``"power_law"``, ``"amdahl"`` or
                ``"sparklens"``.
            n: executor count (must be one of the actuals' sampled counts).
            split: ``"test"`` (prediction error) or ``"train"`` (fit error).

        Returns:
            Array of one E(n) per fold (50 entries for the full protocol).
        """
        if split not in ("train", "test"):
            raise ValueError("split must be 'train' or 'test'")
        col = int(np.nonzero(self.n_grid == n)[0][0])
        actual_all = self.actuals.times_by_query(n)
        out = []
        for fold in self.folds:
            ids = fold.test_ids if split == "test" else fold.train_ids
            actual = {q: actual_all[q] for q in ids}
            if family_or_sparklens == "sparklens":
                predicted = {
                    q: float(self.dataset.sparklens_curves[q][col]) for q in ids
                }
            else:
                curves = fold.predicted_curves[family_or_sparklens]
                predicted = {q: float(curves[q][col]) for q in ids}
            out.append(e_metric(actual, predicted))
        return np.array(out)

    def mean_error_at(
        self, family_or_sparklens: str, n: int, split: str = "test"
    ) -> float:
        return float(self.error_at(family_or_sparklens, n, split).mean())

    def test_curves(self, family: str) -> list[tuple[int, str, np.ndarray]]:
        """All (repeat, query_id, predicted test curve) triples."""
        out = []
        for fold in self.folds:
            for qid in fold.test_ids:
                out.append((fold.repeat, qid, fold.predicted_curves[family][qid]))
        return out


def run_cross_validation(
    dataset: TrainingDataset,
    actuals: ActualRuns,
    n_repeats: int = 10,
    n_splits: int = 5,
    families: tuple[str, ...] = FAMILIES,
    seed: int = 0,
    model_kwargs: dict | None = None,
) -> CrossValResult:
    """Run the repeated-k-fold protocol over a training dataset.

    Args:
        dataset: the full (all-queries) training dataset.
        actuals: ground truth for error computation.
        n_repeats / n_splits: protocol shape (paper: 10 × 5).
        families: PPM families to train per fold.
        seed: shuffle seed.
        model_kwargs: forwarded to :class:`ParameterModel` (e.g. a custom
            estimator, or ``feature_names`` for the Section 5.7 ablation).
    """
    model_kwargs = model_kwargs or {}
    n_queries = len(dataset.query_ids)
    splitter = RepeatedKFold(
        n_splits=n_splits, n_repeats=n_repeats, random_state=seed
    )
    folds: list[FoldResult] = []
    for fold_index, (train_idx, test_idx) in enumerate(
        splitter.split(n_queries)
    ):
        train = dataset.subset(train_idx)
        fold = FoldResult(
            repeat=fold_index // n_splits,
            train_ids=train.query_ids,
            test_ids=[dataset.query_ids[i] for i in test_idx],
        )
        for family in families:
            model = train.fit_parameter_model(family, **model_kwargs)
            # One batched score for all queries, then pure PPM arithmetic
            # (the parametric approach: model scoring is per-query, curve
            # evaluation is per-configuration).
            params = model.predict_params(dataset.features)
            curves: dict[str, np.ndarray] = {}
            for qid, row in zip(dataset.query_ids, params):
                ppm = model.ppm_class.from_parameters(row)
                curves[qid] = ppm.predict_curve(dataset.n_grid)
            fold.predicted_curves[family] = curves
        folds.append(fold)
    return CrossValResult(
        folds=folds,
        dataset=dataset,
        actuals=actuals,
        n_grid=dataset.n_grid,
    )

"""Plain-text rendering of the paper's figures and tables.

Benchmarks print the same rows/series the paper plots; these helpers keep
that output consistent: aligned series tables, CDF summaries at the
percentiles a reader would extract from the paper's plots, and simple
ASCII sparklines for curve shape at a glance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_series_table", "render_cdf", "sparkline", "cdf_percentiles"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_series_table(
    x_label: str,
    x_values,
    series: dict[str, np.ndarray],
    float_format: str = "{:10.2f}",
) -> str:
    """Aligned table: one row per x value, one column per series."""
    x_values = list(x_values)
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    header = f"{x_label:>12s} " + " ".join(f"{n:>10s}" for n in names)
    lines = [header, "-" * len(header)]
    for i, x in enumerate(x_values):
        cells = " ".join(
            float_format.format(float(series[n][i])) for n in names
        )
        lines.append(f"{str(x):>12s} {cells}")
    return "\n".join(lines)


def cdf_percentiles(
    values, percentiles=(10, 25, 50, 75, 90, 99)
) -> dict[int, float]:
    """Percentile read-offs of an empirical distribution."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty distribution")
    return {p: float(np.percentile(values, p)) for p in percentiles}


def render_cdf(name: str, values, unit: str = "") -> str:
    """One-line CDF summary in the style of reading the paper's plots."""
    pct = cdf_percentiles(values)
    parts = ", ".join(f"p{p}={v:.4g}{unit}" for p, v in pct.items())
    return f"{name}: {parts} (n={len(np.asarray(values))})"


def sparkline(values) -> str:
    """Tiny ASCII plot of a series' shape."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return _SPARK_CHARS[0] * values.size
    scaled = (values - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(s))] for s in scaled)

"""Experiment harness shared by the benchmark suite.

- :mod:`~repro.experiments.runtime_data` — ground-truth collection: run
  every query at every candidate executor count with the paper's repeat /
  outlier-discard / average protocol (Section 5.1).
- :mod:`~repro.experiments.crossval` — the 10-repeated 5-fold
  cross-validation driver producing per-fold models, predicted curves, and
  ``E(n)`` matrices.
- :mod:`~repro.experiments.harness` — a caching context that ties
  workloads, actuals, and training data together so each bench pays the
  simulation cost once.
- :mod:`~repro.experiments.figures` — plain-text rendering of the series,
  CDFs, and tables the paper plots.
"""

from repro.experiments.crossval import CrossValResult, FoldResult, run_cross_validation
from repro.experiments.harness import ExperimentContext
from repro.experiments.runtime_data import ActualRuns, collect_actual_runtimes

__all__ = [
    "ActualRuns",
    "collect_actual_runtimes",
    "CrossValResult",
    "FoldResult",
    "run_cross_validation",
    "ExperimentContext",
]

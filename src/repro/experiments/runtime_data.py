"""Ground-truth run-time collection (paper Section 5.1).

The paper runs every TPC-DS query several times at each executor count
``n ∈ {1, 3, 8, 16, 32, 48}``, discards outliers outside ±1.5× the
inter-quartile range, and averages the rest; run-to-run variation after
discarding averaged 4.2 % (at n=1) to 6.9 % (at n=48), worst case 23.8 %,
with shorter runs at large ``n`` varying more.

We reproduce the protocol against the simulator: the deterministic run
time is perturbed by per-repeat multiplicative lognormal noise whose
dispersion interpolates the paper's measured range (growing with ``n``),
with occasional heavy-tailed excursions providing the outliers the
±1.5×IQR rule exists to discard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import interpolate_curve
from repro.engine.cluster import Cluster
from repro.engine.scheduler import SchedulerConfig
from repro.engine.sweep import simulate_query_sweep
from repro.workloads.generator import Workload

__all__ = [
    "ActualRuns",
    "collect_actual_runtimes",
    "noise_sigma",
    "discard_outliers",
    "EVALUATION_N_VALUES",
]

#: The executor counts ground truth is collected at (Section 5.1).
EVALUATION_N_VALUES: tuple[int, ...] = (1, 3, 8, 16, 32, 48)

#: Paper-measured run-to-run variation bounds (fractions, not %).
_SIGMA_AT_N1 = 0.042
_SIGMA_AT_N48 = 0.069

#: Probability of a heavy-tailed excursion (an "outlier" run).
_OUTLIER_PROB = 0.06
_OUTLIER_SCALE = 3.0


def noise_sigma(n: int) -> float:
    """Run-to-run noise level at executor count ``n``.

    Linearly interpolates the paper's measured 4.2 % (n=1) → 6.9 % (n=48).
    """
    frac = (min(max(n, 1), 48) - 1) / 47.0
    return _SIGMA_AT_N1 + (_SIGMA_AT_N48 - _SIGMA_AT_N1) * frac


def discard_outliers(samples: np.ndarray) -> np.ndarray:
    """Drop points outside ±1.5× the inter-quartile range (Section 5.1)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 4:
        return samples
    q1, q3 = np.percentile(samples, [25, 75])
    iqr = q3 - q1
    lo, hi = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    kept = samples[(samples >= lo) & (samples <= hi)]
    return kept if kept.size else samples


@dataclass
class ActualRuns:
    """Averaged ground-truth run times over (query, n).

    Attributes:
        query_ids: row order.
        n_values: column order (the sampled executor counts).
        times: matrix of averaged run times ``(n_queries, n_configs)``.
        aucs: matrix of averaged executor occupancies (same shape).
    """

    query_ids: list[str]
    n_values: np.ndarray
    times: np.ndarray
    aucs: np.ndarray

    def __post_init__(self) -> None:
        self.n_values = np.asarray(self.n_values)
        expected = (len(self.query_ids), len(self.n_values))
        if self.times.shape != expected or self.aucs.shape != expected:
            raise ValueError("times/aucs shape mismatch")

    def row(self, query_id: str) -> np.ndarray:
        return self.times[self.query_ids.index(query_id)]

    def curve(self, query_id: str, n_grid) -> np.ndarray:
        """Piecewise-linearly interpolated curve over a dense grid
        (the paper's Section 5.3 expansion of the candidate set)."""
        return interpolate_curve(self.n_values, self.row(query_id), n_grid)

    def times_by_query(self, n: int) -> dict[str, float]:
        """``{query_id: t_q(n)}`` at one sampled executor count."""
        col = int(np.nonzero(self.n_values == n)[0][0])
        return {q: float(self.times[i, col]) for i, q in enumerate(self.query_ids)}

    def optimal_executors(
        self, query_id: str, n_grid=None, tolerance: float = 0.02
    ) -> int:
        """Smallest n within ``tolerance`` of the (interpolated) minimum.

        A small tolerance (default 2 %, below the run-to-run noise floor)
        keeps the measurement stable: on a noisy near-flat curve the exact
        argmin lands arbitrarily far right, while the *first* point that
        reaches the plateau is the operationally optimal count the paper's
        Figure 3c plots.
        """
        grid = np.arange(1, 49) if n_grid is None else np.asarray(n_grid)
        curve = self.curve(query_id, grid)
        threshold = float(curve.min()) * (1.0 + tolerance)
        eligible = np.nonzero(curve <= threshold)[0]
        return int(grid[eligible[0]])


def collect_actual_runtimes(
    workload: Workload,
    cluster: Cluster | None = None,
    n_values: tuple[int, ...] = EVALUATION_N_VALUES,
    repeats: int = 5,
    seed: int = 0,
    scheduler_config: SchedulerConfig | None = None,
) -> ActualRuns:
    """Collect averaged ground truth for every query and executor count.

    Each query's deterministic curve over ``n_values`` comes from one
    batched :func:`~repro.engine.sweep.simulate_query_sweep` call (the
    engine's fast path for exactly this static-allocation sweep);
    ``repeats`` noisy observations are drawn around each point, outliers
    are discarded by the ±1.5×IQR rule, and the rest are averaged — the
    paper's exact protocol.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cluster = cluster or Cluster()
    scheduler_config = scheduler_config or SchedulerConfig()
    rng = np.random.default_rng(seed)

    ids = list(workload)
    times = np.empty((len(ids), len(n_values)))
    aucs = np.empty_like(times)
    for i, query_id in enumerate(ids):
        graph = workload.stage_graph(query_id)
        results = simulate_query_sweep(
            graph, n_values, cluster, scheduler_config
        )
        for j, (n, result) in enumerate(zip(n_values, results)):
            sigma = noise_sigma(int(n))
            factors = rng.lognormal(mean=0.0, sigma=sigma, size=repeats)
            heavy = rng.random(repeats) < _OUTLIER_PROB
            factors[heavy] *= rng.lognormal(
                mean=0.0, sigma=_OUTLIER_SCALE * sigma, size=int(heavy.sum())
            )
            samples = result.runtime * factors
            kept = discard_outliers(samples)
            scale = float(kept.mean()) / result.runtime
            times[i, j] = result.runtime * scale
            aucs[i, j] = result.auc * scale
    return ActualRuns(
        query_ids=ids,
        n_values=np.asarray(n_values),
        times=times,
        aucs=aucs,
    )

"""Caching experiment context.

Every bench needs some mix of: the workload at a scale factor, the averaged
ground truth, the Sparklens-augmented training dataset, and a
cross-validation run.  All of these are deterministic given their seeds, so
an :class:`ExperimentContext` computes each once per process and hands out
shared references.  The benchmark suite holds a single module-level context.

The protocol sizes default to a reduced-but-faithful configuration (three
CV repeats instead of ten, three ground-truth repeats instead of "several")
so the whole suite runs in minutes; set ``REPRO_FULL_PROTOCOL=1`` in the
environment to run the paper's exact sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.training import (
    DEFAULT_N_GRID,
    TrainingDataset,
    build_training_dataset,
)
from repro.engine.cluster import Cluster
from repro.experiments.crossval import CrossValResult, run_cross_validation
from repro.experiments.runtime_data import ActualRuns, collect_actual_runtimes
from repro.workloads.generator import Workload

__all__ = ["ExperimentContext", "full_protocol"]


def full_protocol() -> bool:
    """Whether the paper's full protocol sizes were requested."""
    return os.environ.get("REPRO_FULL_PROTOCOL", "") == "1"


@dataclass
class ExperimentContext:
    """Shared, lazily-computed experiment state.

    Args:
        seed: master seed for ground-truth noise and CV shuffles.
    """

    seed: int = 0
    cluster: Cluster = field(default_factory=Cluster)
    n_grid: np.ndarray = field(default_factory=lambda: DEFAULT_N_GRID.copy())
    _workloads: dict[float, Workload] = field(default_factory=dict, repr=False)
    _actuals: dict[float, ActualRuns] = field(default_factory=dict, repr=False)
    _datasets: dict[float, TrainingDataset] = field(
        default_factory=dict, repr=False
    )
    _crossval: dict[float, CrossValResult] = field(
        default_factory=dict, repr=False
    )

    @property
    def cv_repeats(self) -> int:
        return 10 if full_protocol() else 3

    @property
    def runtime_repeats(self) -> int:
        return 5 if full_protocol() else 3

    def workload(self, scale_factor: float) -> Workload:
        if scale_factor not in self._workloads:
            self._workloads[scale_factor] = Workload(scale_factor=scale_factor)
        return self._workloads[scale_factor]

    def actuals(self, scale_factor: float) -> ActualRuns:
        """Averaged ground truth at a scale factor (computed once)."""
        if scale_factor not in self._actuals:
            self._actuals[scale_factor] = collect_actual_runtimes(
                self.workload(scale_factor),
                self.cluster,
                repeats=self.runtime_repeats,
                seed=self.seed,
            )
        return self._actuals[scale_factor]

    def training_dataset(self, scale_factor: float) -> TrainingDataset:
        """Sparklens-augmented training data (computed once)."""
        if scale_factor not in self._datasets:
            self._datasets[scale_factor] = build_training_dataset(
                self.workload(scale_factor),
                self.cluster,
                n_grid=self.n_grid,
            )
        return self._datasets[scale_factor]

    def cross_validation(self, scale_factor: float) -> CrossValResult:
        """The repeated-k-fold run at a scale factor (computed once)."""
        if scale_factor not in self._crossval:
            self._crossval[scale_factor] = run_cross_validation(
                self.training_dataset(scale_factor),
                self.actuals(scale_factor),
                n_repeats=self.cv_repeats,
                seed=self.seed,
            )
        return self._crossval[scale_factor]

"""Streaming metrics: counters, gauges, and sketch-backed fleet stats.

:class:`~repro.fleet.metrics.FleetMetrics` materializes every
:class:`~repro.fleet.metrics.QueryRecord` and sorts the lot for
percentiles — exact, but O(n) memory per serve and impossible to merge
across shards.  This module is the opt-in streaming alternative: a
:class:`MetricsRegistry` of named counters/gauges/sketches with an
associative ``merge``, and :class:`StreamingFleetStats`, a
bounded-memory accumulator over served queries whose percentile
estimates carry the :class:`~repro.obs.sketch.QuantileSketch` accuracy
guarantee.  Build one incrementally (``observe`` each record as it
finishes), from a finished run (``from_records``), or shard-by-shard and
``merge`` — all three produce the same histogram state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.obs.sketch import QuantileSketch

if TYPE_CHECKING:  # runtime import would be circular: fleet.metrics uses us
    from repro.fleet.metrics import QueryRecord

__all__ = ["Counter", "Gauge", "MetricsRegistry", "StreamingFleetStats"]


class Counter:
    """A monotone accumulator; merges by addition."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be ≥ 0: counters only go up)."""
        if amount < 0:
            raise ValueError("counters cannot decrease")
        self.value += amount


class Gauge:
    """A last-value metric that also tracks its peak; merges by max.

    Gauges describe instantaneous state (pool capacity, queue length),
    so cross-shard merging keeps the maximum of both value and peak —
    the conservative roll-up for capacity-style readings.
    """

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Record the current reading."""
        self.value = float(value)
        if self.value > self.peak:
            self.peak = self.value


class MetricsRegistry:
    """Named counters, gauges, and quantile sketches with one merge law.

    Args:
        relative_accuracy: accuracy of sketches created via
            :meth:`sketch` (they must match to merge).

    ``merge`` combines registries metric-by-metric — counters add,
    gauges take the max, sketches merge their histograms — and is
    associative on everything except float-addition rounding in counter
    values and sketch sums.
    """

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        self.relative_accuracy = relative_accuracy
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.sketches: dict[str, QuantileSketch] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        found = self.counters.get(name)
        if found is None:
            found = self.counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        found = self.gauges.get(name)
        if found is None:
            found = self.gauges[name] = Gauge(name)
        return found

    def sketch(self, name: str) -> QuantileSketch:
        """Get or create the named quantile sketch."""
        found = self.sketches.get(name)
        if found is None:
            found = self.sketches[name] = QuantileSketch(self.relative_accuracy)
        return found

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Combine two registries into a new one (inputs untouched)."""
        out = MetricsRegistry(self.relative_accuracy)
        for name, counter in list(self.counters.items()) + list(
            other.counters.items()
        ):
            out.counter(name).value += counter.value
        for name, gauge in list(self.gauges.items()) + list(other.gauges.items()):
            merged = out.gauge(name)
            merged.value = max(merged.value, gauge.value)
            merged.peak = max(merged.peak, gauge.peak)
        for name, sketch in self.sketches.items():
            out.sketches[name] = sketch.merge(QuantileSketch(sketch.relative_accuracy))
        for name, sketch in other.sketches.items():
            if name in out.sketches:
                out.sketches[name] = out.sketches[name].merge(sketch)
            else:
                out.sketches[name] = sketch.merge(
                    QuantileSketch(sketch.relative_accuracy)
                )
        return out

    def as_dict(self) -> dict:
        """JSON-safe snapshot of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "peak": g.peak}
                for n, g in sorted(self.gauges.items())
            },
            "sketches": {
                n: s.to_dict() for n, s in sorted(self.sketches.items())
            },
        }


class StreamingFleetStats:
    """Bounded-memory serving stats: the O(1)-per-query FleetMetrics view.

    Args:
        relative_accuracy: sketch accuracy for the latency, queue-delay,
            and run-seconds distributions.

    Feed it finished queries one at a time (:meth:`observe`), convert a
    whole run at once (:meth:`from_records` — also reachable as
    ``FleetMetrics.streaming()`` / ``ClusterMetrics.streaming()``), or
    combine shards with :meth:`merge`.  Counts, sums, extrema, and the
    serving window are exact; percentiles carry the sketch's relative
    error bound (``relative_accuracy``, against the order-statistic
    convention documented on :meth:`QuantileSketch.quantile
    <repro.obs.sketch.QuantileSketch.quantile>` — note
    :class:`~repro.fleet.metrics.FleetMetrics` uses ``np.percentile``'s
    linear interpolation, so the two agree within the bound plus the gap
    between adjacent order statistics).
    """

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        self.relative_accuracy = relative_accuracy
        self.latency = QuantileSketch(relative_accuracy)
        self.queue_delay = QuantileSketch(relative_accuracy)
        self.run_seconds = QuantileSketch(relative_accuracy)
        self.n_queries = 0
        self.total_executor_seconds = 0.0
        self.prediction_hits = 0
        self.prediction_decisions = 0
        self.first_arrival: float | None = None
        self.last_finish: float | None = None

    @classmethod
    def from_records(
        cls, records: Iterable, relative_accuracy: float = 0.01
    ) -> "StreamingFleetStats":
        """Accumulate a finished run's records in one pass."""
        out = cls(relative_accuracy)
        for record in records:
            out.observe(record)
        return out

    def observe(self, record: QueryRecord) -> None:
        """Fold one finished :class:`~repro.fleet.metrics.QueryRecord` in."""
        self.latency.add(record.latency)
        self.queue_delay.add(record.queue_delay)
        self.run_seconds.add(record.run_seconds)
        self.n_queries += 1
        self.total_executor_seconds += record.auc
        if record.prediction_cached is not None:
            self.prediction_decisions += 1
            if record.prediction_cached:
                self.prediction_hits += 1
        arrival = record.arrival_time
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        finish = record.finish_time
        if self.last_finish is None or finish > self.last_finish:
            self.last_finish = finish

    def merge(self, other: "StreamingFleetStats") -> "StreamingFleetStats":
        """Combine two shards' stats into a new one (inputs untouched)."""
        out = StreamingFleetStats(self.relative_accuracy)
        out.latency = self.latency.merge(other.latency)
        out.queue_delay = self.queue_delay.merge(other.queue_delay)
        out.run_seconds = self.run_seconds.merge(other.run_seconds)
        out.n_queries = self.n_queries + other.n_queries
        out.total_executor_seconds = (
            self.total_executor_seconds + other.total_executor_seconds
        )
        out.prediction_hits = self.prediction_hits + other.prediction_hits
        out.prediction_decisions = (
            self.prediction_decisions + other.prediction_decisions
        )
        arrivals = [
            t for t in (self.first_arrival, other.first_arrival) if t is not None
        ]
        finishes = [
            t for t in (self.last_finish, other.last_finish) if t is not None
        ]
        out.first_arrival = min(arrivals) if arrivals else None
        out.last_finish = max(finishes) if finishes else None
        return out

    def __eq__(self, other: object) -> bool:
        # Exact state equality — the multiprocess-merge determinism
        # contract is asserted with this, so every accumulator counts.
        if type(other) is not type(self):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.latency == other.latency
            and self.queue_delay == other.queue_delay
            and self.run_seconds == other.run_seconds
            and self.n_queries == other.n_queries
            and self.total_executor_seconds == other.total_executor_seconds
            and self.prediction_hits == other.prediction_hits
            and self.prediction_decisions == other.prediction_decisions
            and self.first_arrival == other.first_arrival
            and self.last_finish == other.last_finish
        )

    __hash__ = None  # mutable accumulator

    @property
    def makespan(self) -> float:
        """First arrival to last completion (exact)."""
        if self.first_arrival is None or self.last_finish is None:
            return 0.0
        return self.last_finish - self.first_arrival

    def prediction_cache_hit_rate(self) -> float:
        """Fraction of predictive decisions served from the memo cache."""
        if not self.prediction_decisions:
            return 0.0
        return self.prediction_hits / self.prediction_decisions

    def summary(self) -> dict[str, float]:
        """Headline numbers, mirroring ``FleetMetrics.summary`` keys
        where the streaming view can provide them."""
        return {
            "n_queries": float(self.n_queries),
            "makespan_s": self.makespan,
            "p50_latency_s": self.latency.quantile(50),
            "p95_latency_s": self.latency.quantile(95),
            "p99_latency_s": self.latency.quantile(99),
            "mean_queue_delay_s": self.queue_delay.mean,
            "max_queue_delay_s": self.queue_delay.max or 0.0,
            "total_executor_seconds": self.total_executor_seconds,
            "prediction_cache_hit_rate": self.prediction_cache_hit_rate(),
        }

"""A mergeable, bounded-memory quantile sketch for streaming metrics.

:class:`repro.fleet.metrics.FleetMetrics` computes latency percentiles
from the materialized per-query record list — exact, but O(n) memory and
impossible to shard.  The ROADMAP's million-query streaming goal needs
the opposite trade: a :class:`QuantileSketch` holds a logarithmic bucket
histogram (the DDSketch construction: bucket ``i`` covers
``(γ^(i-1), γ^i]`` with ``γ = (1+α)/(1-α)``), so

- **memory** is bounded by the number of occupied buckets,
  ``O(log(v_max / v_min) / α)`` — independent of stream length;
- **accuracy** is relative: the estimate for any quantile is within
  ``α`` (``relative_accuracy``) of the true order statistic at that
  rank (see :meth:`QuantileSketch.quantile` for the exact statement);
- **merging** is bucket-wise counter addition — exactly associative and
  commutative on the histogram state, so shards can be combined in any
  order and any grouping with identical results.  (The auxiliary ``sum``
  is float-accumulated and therefore associative only up to float
  rounding; everything quantiles are computed from is exact.)

Determinism: inserting the same multiset of values always produces the
same bucket histogram — there is no randomness and no collapse heuristic.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Log-bucket quantile sketch over non-negative values.

    Args:
        relative_accuracy: the α of the accuracy guarantee (default 1 %).
            Smaller α means more buckets: the bucket count grows like
            ``log(v_max / v_min) / (2α)``.

    Values must be ≥ 0 (latencies, delays, durations); zeros are counted
    in a dedicated bucket and returned exactly.
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_counts",
        "_zeros",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._counts: dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # --- ingestion -------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one value (must be ≥ 0 and finite)."""
        v = float(value)
        if not math.isfinite(v) or v < 0.0:
            raise ValueError("sketch values must be finite and >= 0")
        if v == 0.0:
            self._zeros += 1
        else:
            key = math.ceil(math.log(v) / self._log_gamma)
            self._counts[key] = self._counts.get(key, 0) + 1
        self._count += 1
        self._sum += v
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v

    def extend(self, values: Iterable[float]) -> None:
        """Insert every value of an iterable."""
        for v in values:
            self.add(v)

    # --- state views -----------------------------------------------------
    @property
    def count(self) -> int:
        """Values inserted so far."""
        return self._count

    @property
    def sum(self) -> float:
        """Float-accumulated total of inserted values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of inserted values (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float | None:
        """Exact minimum seen (``None`` when empty)."""
        return self._min

    @property
    def max(self) -> float | None:
        """Exact maximum seen (``None`` when empty)."""
        return self._max

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the sketch's actual memory footprint."""
        return len(self._counts) + (1 if self._zeros else 0)

    # --- quantiles -------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Guarantee: with ``n`` inserted values and rank
        ``k = max(1, ceil(q/100 · n))``, the estimate ``x̂`` satisfies
        ``|x̂ − x_(k)| ≤ α · x_(k)`` where ``x_(k)`` is the exact k-th
        smallest inserted value (the ``method="inverted_cdf"`` order
        statistic) and ``α`` is ``relative_accuracy``.  Zeros are
        returned exactly.  An empty sketch returns 0.0, matching
        :class:`~repro.fleet.metrics.FleetMetrics` on no records.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self._count))
        if rank <= self._zeros:
            return 0.0
        cumulative = self._zeros
        for key in sorted(self._counts):
            cumulative += self._counts[key]
            if cumulative >= rank:
                # Bucket midpoint 2γ^k/(γ+1): at most α relative error
                # from any value in (γ^(k-1), γ^k].
                return 2.0 * self._gamma**key / (self._gamma + 1.0)
        # Unreachable: cumulative counts always reach self._count >= rank.
        raise AssertionError("sketch counts inconsistent")

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        """Batch :meth:`quantile` over many percentiles."""
        return [self.quantile(q) for q in qs]

    # --- merging ---------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combine two sketches into a new one (inputs untouched).

        Requires identical ``relative_accuracy`` (the bucket geometries
        must line up).  The histogram state merges by exact counter
        addition, so ``merge`` is associative and commutative on
        everything quantiles are computed from.
        """
        if self.relative_accuracy != other.relative_accuracy:
            raise ValueError("can only merge sketches of equal accuracy")
        out = QuantileSketch(self.relative_accuracy)
        out._counts = dict(self._counts)
        for key, count in other._counts.items():
            out._counts[key] = out._counts.get(key, 0) + count
        out._zeros = self._zeros + other._zeros
        out._count = self._count + other._count
        out._sum = self._sum + other._sum
        mins = [m for m in (self._min, other._min) if m is not None]
        maxs = [m for m in (self._max, other._max) if m is not None]
        out._min = min(mins) if mins else None
        out._max = max(maxs) if maxs else None
        return out

    # --- equality / serialization ---------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self._zeros == other._zeros
            and self._count == other._count
            and self._counts == other._counts
            and self._min == other._min
            and self._max == other._max
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(relative_accuracy={self.relative_accuracy}, "
            f"count={self._count}, buckets={self.bucket_count})"
        )

    def to_dict(self) -> dict:
        """JSON-safe snapshot (counts keyed by stringified bucket index)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
            "zeros": self._zeros,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        out = cls(float(data["relative_accuracy"]))
        out._counts = {int(k): int(v) for k, v in data["counts"].items()}
        out._zeros = int(data["zeros"])
        out._count = int(data["count"])
        out._sum = float(data["sum"])
        out._min = None if data["min"] is None else float(data["min"])
        out._max = None if data["max"] is None else float(data["max"])
        return out

"""Observability: structured tracing, streaming metrics, trace analysis.

The simulators are deterministic, so a run can be *completely* accounted
for by an event log.  This subpackage provides the three layers:

- :mod:`~repro.obs.trace` — the :class:`TraceEvent` vocabulary, the
  :class:`Tracer` protocol, and the sinks (in-memory ring buffer, JSONL
  file).  Every engine takes ``tracer=None`` by default and the off
  path is guaranteed zero-cost: no event objects, bit-identical runs.
- :mod:`~repro.obs.metrics` — streaming counters/gauges and the
  mergeable :class:`QuantileSketch`: bounded-memory percentiles with a
  documented relative-error bound, the opt-in alternative to
  :class:`~repro.fleet.metrics.FleetMetrics`' sorted-record exactness.
- :mod:`~repro.obs.analyze` — :class:`TraceAnalyzer`: per-query
  timelines, queue-delay breakdowns, pool utilization, and the
  Sparklens round-trip (a traced serve rebuilt into
  :class:`repro.sparklens.log.ExecutionLog` objects and fed back
  through the post-hoc estimator).

Quickstart::

    from repro.fleet import FleetEngine, static_allocator
    from repro.obs import RingBufferTracer, TraceAnalyzer

    tracer = RingBufferTracer()
    engine = FleetEngine(
        workload, capacity=64, allocator=static_allocator(8), tracer=tracer
    )
    metrics = engine.serve(arrivals)
    analyzer = TraceAnalyzer(tracer.events)
    print(analyzer.queue_delay_breakdown())
    log = analyzer.execution_log(0)      # → Sparklens round-trip
"""

from repro.obs.analyze import QueryTimeline, TraceAnalyzer
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingFleetStats,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import (
    EVENT_KINDS,
    RAW_DATA_FIELDS,
    JsonlTracer,
    NullTracer,
    RingBufferTracer,
    TraceEvent,
    Tracer,
    materialize,
    read_jsonl,
)

__all__ = [
    "EVENT_KINDS",
    "RAW_DATA_FIELDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "RingBufferTracer",
    "JsonlTracer",
    "materialize",
    "read_jsonl",
    "QuantileSketch",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingFleetStats",
    "QueryTimeline",
    "TraceAnalyzer",
]

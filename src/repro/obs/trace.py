"""Structured tracing: typed events, sinks, and the zero-cost contract.

The simulators are deterministic discrete-event machines, which makes
them *perfectly* traceable: every state transition happens at a known
clock instant in a known order, so an event log is a complete, replayable
account of a run — why a query queued, which executor a task landed on,
when the autoscaler fired.  This module defines the event vocabulary and
the sinks; the engines (:mod:`repro.engine.execution`,
:mod:`repro.engine.scheduler`, :mod:`repro.fleet.engine`,
:mod:`repro.fleet.cluster`, :mod:`repro.fleet.prediction`,
:mod:`repro.fleet.autoscaler`) emit into whatever tracer they are handed.

**The zero-cost contract.**  Tracing is off by default: every traced
component takes ``tracer=None`` and guards each emission behind a single
``is not None`` check, so an untraced run executes the exact pre-tracing
code path — no event objects, no sink calls, bit-identical results.  The
fleet bench (``benchmarks/perf/run_fleet_bench.py``) measures both sides
of the contract: a traced serve must reproduce the untraced serve's
records and summary exactly, and the ring-buffer tracer's wall-clock
overhead is CI-gated at ≤10 %.

**Determinism.**  Events carry only simulation-clock times and values
derived from the run's own deterministic state; two same-seed serves
with a deterministic allocator emit byte-identical JSONL logs (asserted
in ``tests/obs/test_trace.py``).  The one documented exception is the
:class:`~repro.fleet.prediction.PredictionService`'s measured wall-clock
overhead fields, which are real measurements and therefore vary run to
run.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from typing import IO, Iterable, Iterator, NamedTuple, Protocol

__all__ = [
    "EVENT_KINDS",
    "RAW_DATA_FIELDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "RingBufferTracer",
    "JsonlTracer",
    "materialize",
    "read_jsonl",
]

#: The complete event taxonomy.  Every event an engine emits uses one of
#: these kinds; the analyzer and the tests treat anything else as a bug.
EVENT_KINDS = frozenset(
    {
        # Run lifecycle (driver-level bookends).
        "serve_begin",
        "serve_end",
        # Query lifecycle on the fleet clock.
        "query_arrive",
        "query_predict",
        "query_submit",
        "query_route",
        "query_admit",
        "query_finish",
        # Per-query execution (ExecutionCore).  There is deliberately no
        # per-task completion event: the simulator is deterministic, so
        # a task's finish instant is exactly ``task_assign.time +
        # duration_s`` unless a ``task_kill`` retracted it — emitting a
        # redundant event per task would double the trace's hot-path
        # cost for zero information.
        "driver_done",
        "stage_ready",
        "stage_done",
        "task_assign",
        "task_kill",
        "exec_add",
        "exec_remove",
        "exec_fail",
        # Faults: the drawn failure schedule (exec_fail carries the cause,
        # "crash" or "reclaim", when it fires).
        "fault_inject",
        # Pool capacity accounting.
        "grant_acquire",
        "grant_release",
        "pool_resize",
        "autoscale_up",
        "autoscale_down",
        # Prediction-service events (off the simulation clock; the
        # on-clock decision is query_predict).  prediction_fallback fires
        # once per service lifetime when batch inference is requested of
        # a scorer without predict_ppm_batch.
        "prediction",
        "prediction_fallback",
        # Continual learning (repro.fleet.adaptive): drift_alarm fires
        # when the rolling prediction error crosses the configured
        # threshold; model_retrain marks a completed retraining pass
        # (candidate entering shadow validation); model_promote marks a
        # shadow candidate winning and being hot-swapped behind the
        # prediction service.  All three are on the simulation clock —
        # they fire inside the fleet's query-finish feedback hook.
        "drift_alarm",
        "model_retrain",
        "model_promote",
        # HTTP serving layer (repro.serve): one event per handled request
        # and one per coalesced inference dispatch.  Off the simulation
        # clock like the prediction events.
        "serve_request",
        "serve_batch",
    }
)


class TraceEvent(NamedTuple):
    """One structured event on a run's timeline.

    A ``NamedTuple`` rather than a dataclass: events are created on the
    simulator's hot path when tracing is on, and tuple construction is
    the cheapest immutable record Python offers.

    Attributes:
        time: simulation-clock instant (seconds).  Prediction-service
            events, which happen off the simulated clock, carry ``0.0``.
        kind: one of :data:`EVENT_KINDS`.
        pool: pool index, ``-1`` for cluster-level/dedicated-run events.
        query: arrival-stream position, ``-1`` for non-query events.
        query_id: workload query id, ``None`` for non-query events.
        data: kind-specific payload (JSON-serializable), ``None`` when
            the identity fields say everything.
    """

    time: float
    kind: str
    pool: int = -1
    query: int = -1
    query_id: str | None = None
    data: dict[str, object] | None = None

    def to_json(self) -> str:
        """One deterministic JSON object (fixed key order, compact)."""
        return json.dumps(
            {
                "time": self.time,
                "kind": self.kind,
                "pool": self.pool,
                "query": self.query,
                "query_id": self.query_id,
                "data": self.data,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one :meth:`to_json` line back into an event."""
        obj = json.loads(line)
        return cls(
            time=float(obj["time"]),
            kind=obj["kind"],
            pool=int(obj.get("pool", -1)),
            query=int(obj.get("query", -1)),
            query_id=obj.get("query_id"),
            data=obj.get("data"),
        )


#: Payload field names for the *raw* hot-path emission form.  The
#: per-task kind dominates a trace (tens of thousands of events per
#: serve) and is emitted as flat plain tuples —
#: ``(time, kind, pool, query, query_id, *payload)`` — because building
#: a dict plus a NamedTuple per task would blow the ≤10 % tracing
#: overhead gate.  :func:`materialize` zips the tail back into the
#: normal ``data`` dict; sinks do this lazily (ring buffer, on read) or
#: at serialization time (JSONL).
RAW_DATA_FIELDS = {
    "task_assign": ("stage", "task", "eid", "duration_s"),
    "stage_ready": ("stage", "tasks"),
    "stage_done": ("stage",),
    "exec_add": ("eid",),
}


def materialize(event: "TraceEvent | tuple") -> "TraceEvent":
    """Normalize an emitted event into a :class:`TraceEvent`.

    Pass-through for already-typed events; flat raw tuples (the
    hot-path form documented at :data:`RAW_DATA_FIELDS`) get their
    payload tail zipped into the standard ``data`` dict.
    """
    if isinstance(event, TraceEvent):
        return event
    kind = event[1]
    data = {}
    for name, value in zip(RAW_DATA_FIELDS[kind], event[5:]):
        # Hot-path emissions skip numpy-scalar conversion (it costs as
        # much as the append itself); normalize here, at read time.
        item = getattr(value, "item", None)
        data[name] = value if item is None else item()
    return TraceEvent(event[0], kind, event[2], event[3], event[4], data)


class Tracer(Protocol):
    """Anything that accepts emitted :class:`TraceEvent`\\ s.

    Engines take ``tracer: Tracer | None``; ``None`` (the default) is
    the guaranteed-zero-cost off switch — no event is even constructed.

    ``emit`` must also accept the flat raw-tuple form documented at
    :data:`RAW_DATA_FIELDS` — engines use it for the per-task kinds on
    the hot path; normalize with :func:`materialize`.
    """

    def emit(self, event: "TraceEvent | tuple") -> None:
        """Record one event (typed, or hot-path raw tuple)."""
        ...


class NullTracer:
    """A tracer that drops everything.

    Exists for call sites that want an always-valid tracer object;
    engines prefer ``tracer=None``, which skips event construction
    entirely and is the path the bit-identity contract covers.
    """

    def emit(self, event: "TraceEvent | tuple") -> None:
        """Discard the event."""


class RingBufferTracer:
    """In-memory sink: the last ``capacity`` events (all, when ``None``).

    The cheapest real sink — ``emit`` is the deque's own ``append`` —
    and therefore the one the bench's tracing-overhead gate measures.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("ring capacity must be at least 1 event")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        # Bind emit straight to the deque's append: no wrapper frame on
        # the hot path.
        self.emit = self._events.append

    def emit(self, event: "TraceEvent | tuple") -> None:  # pragma: no cover
        """Record one event (rebound to ``deque.append`` in __init__)."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return map(materialize, self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first (raw tuples materialized)."""
        return [materialize(e) for e in self._events]

    def counts(self) -> dict[str, int]:
        """Buffered events per kind (taxonomy sanity checks)."""
        # kind is slot 1 in both the typed and the raw form.
        return dict(Counter(e[1] for e in self._events))

    def clear(self) -> None:
        """Drop everything buffered."""
        self._events.clear()


class JsonlTracer:
    """File sink: one deterministic JSON object per line.

    Usable as a context manager::

        with JsonlTracer("run.jsonl") as tracer:
            ShardedFleet(..., tracer=tracer).serve(arrivals)

    Same-seed serves with a deterministic allocator write byte-identical
    files (the determinism test's contract).  Read logs back with
    :func:`read_jsonl`.
    """

    def __init__(self, path_or_file: str | os.PathLike | IO[str]) -> None:
        if isinstance(path_or_file, (str, os.PathLike)):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False
        self.events_written = 0

    def emit(self, event: "TraceEvent | tuple") -> None:
        """Append one event line."""
        self._file.write(materialize(event).to_json())
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and (for paths we opened) close the underlying file."""
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path_or_file: str | os.PathLike | Iterable[str]) -> list[TraceEvent]:
    """Load a :class:`JsonlTracer` log back into events, file order."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, encoding="utf-8") as handle:
            return [TraceEvent.from_json(line) for line in handle if line.strip()]
    return [TraceEvent.from_json(line) for line in path_or_file if line.strip()]

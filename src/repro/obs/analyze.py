"""Trace analysis: timelines, utilization, and the Sparklens round-trip.

A trace is a complete account of a run; this module turns one back into
the quantities the paper reasons about:

- **per-query timelines** (:class:`QueryTimeline`): arrival → prediction
  → submit → admission → driver done → finish, with the allocator's
  decision (policy, predicted count, cache hit) attached — the
  query-level answer to "why was this slow?";
- **queue-delay breakdowns**: the wait decomposed into prediction
  overhead (arrival → submit) and admission wait (submit → admit),
  the split :class:`~repro.fleet.metrics.FleetMetrics` cannot see;
- **pool accounting**: the reserved-capacity skyline rebuilt from grant
  events alone — it must reproduce the engine's own pool skyline, a
  cross-check that the emitted grant events are complete;
- **the Sparklens round-trip** (:meth:`TraceAnalyzer.execution_logs`):
  each traced query's observed task durations, stage DAG, and driver
  time reassembled into a :class:`repro.sparklens.log.ExecutionLog`, so
  a *simulated* serve can be fed through the existing post-hoc
  :class:`~repro.sparklens.simulator.SparklensEstimator` — closing the
  paper's Section 5.2 comparison loop entirely inside the repo.

The analyzer is read-only over the event list and builds its state in
one pass; feed it a :class:`~repro.obs.trace.RingBufferTracer`'s events
or load a JSONL log with :meth:`TraceAnalyzer.from_jsonl`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.engine.skyline import Skyline
from repro.obs.trace import TraceEvent, materialize, read_jsonl
from repro.sparklens.log import ExecutionLog, StageLog
from repro.sparklens.simulator import SparklensEstimator

__all__ = ["QueryTimeline", "TraceAnalyzer"]


@dataclass
class QueryTimeline:
    """One query's reconstructed lifecycle on the fleet clock.

    Times are ``None`` until the corresponding event appears in the
    trace (a truncated ring buffer may miss early events).
    """

    query: int
    query_id: str | None = None
    pool: int = -1
    arrival_time: float | None = None
    submit_time: float | None = None
    admit_time: float | None = None
    driver_done_time: float | None = None
    finish_time: float | None = None
    budget: int | None = None
    granted: int | None = None
    policy: str | None = None
    predicted_executors: int | None = None
    prediction_cached: bool | None = None
    prediction_seconds: float = 0.0
    stages: int = 0
    tasks_assigned: int = 0
    tasks_completed: int = 0
    tasks_killed: int = 0
    peak_executors: int = 0

    @property
    def latency(self) -> float | None:
        """End-to-end seconds (arrival → finish), when both are known."""
        if self.arrival_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def prediction_delay(self) -> float | None:
        """Allocator overhead charged before submission."""
        if self.arrival_time is None or self.submit_time is None:
            return None
        return self.submit_time - self.arrival_time

    @property
    def admission_wait(self) -> float | None:
        """Seconds queued at the arbiter (submit → admit)."""
        if self.submit_time is None or self.admit_time is None:
            return None
        return self.admit_time - self.submit_time

    @property
    def run_seconds(self) -> float | None:
        """Execution seconds once admitted (admit → finish)."""
        if self.admit_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.admit_time


@dataclass
class _QueryBuild:
    """Mutable per-query assembly state (one pass over the events)."""

    timeline: QueryTimeline
    driver_seconds: float | None = None
    cores_per_executor: int | None = None
    stage_deps: list[list[int]] = field(default_factory=list)
    stage_durations: dict[int, list[float]] = field(default_factory=dict)
    live_executors: int = 0


class TraceAnalyzer:
    """Reconstructs run structure from an event log.

    Args:
        events: trace events in emission order (a ring buffer's
            ``events``, a :func:`~repro.obs.trace.read_jsonl` result, or
            any iterable of :class:`~repro.obs.trace.TraceEvent`).
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        # Accept hot-path raw tuples too (repro.obs.trace.materialize):
        # a live RingBufferTracer's internal deque can be fed directly.
        self.events = [materialize(e) for e in events]
        self._builds: dict[int, _QueryBuild] = {}
        self._grant_deltas: dict[int, list[tuple[float, int]]] = {}
        self._capacity: dict[int, list[tuple[float, int]]] = {}
        self._scan()

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceAnalyzer":
        """Load a :class:`~repro.obs.trace.JsonlTracer` log."""
        return cls(read_jsonl(path))

    # --- the single assembly pass ----------------------------------------
    def _build(self, event: TraceEvent) -> _QueryBuild:
        build = self._builds.get(event.query)
        if build is None:
            build = _QueryBuild(QueryTimeline(query=event.query))
            self._builds[event.query] = build
        timeline = build.timeline
        if timeline.query_id is None and event.query_id is not None:
            timeline.query_id = event.query_id
        if event.pool >= 0:
            timeline.pool = event.pool
        return build

    def _grant(self, event: TraceEvent, delta: int) -> None:
        self._grant_deltas.setdefault(event.pool, []).append(
            (event.time, delta)
        )

    def _scan(self) -> None:
        for event in self.events:
            kind = event.kind
            data = event.data
            if kind == "task_assign":
                # Completions are derived, not traced: each assignment
                # finishes at time + duration_s unless a later
                # task_kill retracts it (see repro.obs.trace.EVENT_KINDS).
                build = self._build(event)
                build.timeline.tasks_assigned += 1
                build.timeline.tasks_completed += 1
                build.stage_durations.setdefault(int(data["stage"]), []).append(
                    float(data["duration_s"])
                )
            elif kind == "task_kill":
                build = self._build(event)
                build.timeline.tasks_killed += 1
                build.timeline.tasks_completed -= 1
            elif kind == "exec_add":
                build = self._build(event)
                build.live_executors += 1
                if build.live_executors > build.timeline.peak_executors:
                    build.timeline.peak_executors = build.live_executors
            elif kind in ("exec_remove", "exec_fail"):
                self._build(event).live_executors -= 1
            elif kind == "query_arrive":
                self._build(event).timeline.arrival_time = event.time
            elif kind == "query_predict":
                timeline = self._build(event).timeline
                timeline.predicted_executors = int(data["executors"])
                timeline.prediction_cached = data["cached"]
                timeline.prediction_seconds = float(data["seconds"])
                timeline.policy = data["policy"]
            elif kind == "query_submit":
                timeline = self._build(event).timeline
                timeline.submit_time = event.time
                timeline.budget = int(data["executors"])
            elif kind == "query_admit":
                build = self._build(event)
                timeline = build.timeline
                timeline.admit_time = event.time
                timeline.granted = int(data["executors"])
                build.driver_seconds = float(data["driver_seconds"])
                build.cores_per_executor = int(data["cores_per_executor"])
                build.stage_deps = [
                    [int(d) for d in deps] for deps in data["stage_deps"]
                ]
                timeline.stages = len(build.stage_deps)
                self._grant(event, timeline.granted)
            elif kind == "driver_done":
                self._build(event).timeline.driver_done_time = event.time
            elif kind == "query_finish":
                self._build(event).timeline.finish_time = event.time
            elif kind == "grant_acquire":
                self._grant(event, int(data["executors"]))
            elif kind == "grant_release":
                self._grant(event, -int(data["executors"]))
            elif kind == "serve_begin":
                for pool, capacity in enumerate(data["pools"]):
                    self._capacity.setdefault(pool, []).append(
                        (event.time, int(capacity))
                    )
            elif kind == "pool_resize":
                self._capacity.setdefault(event.pool, []).append(
                    (event.time, int(data["capacity"]))
                )

    # --- query views -----------------------------------------------------
    def timelines(self) -> list[QueryTimeline]:
        """Every traced query's timeline, stream order."""
        return [
            self._builds[q].timeline
            for q in sorted(self._builds)
            if q >= 0
        ]

    def timeline(self, query: int) -> QueryTimeline:
        """One query's timeline by stream position."""
        return self._builds[query].timeline

    def queue_delay_breakdown(self) -> dict[str, float]:
        """Mean/max decomposition of where served queries waited.

        Splits each query's pre-execution wait into prediction overhead
        (arrival → submit) and admission wait (submit → admit) — the
        decomposition record-level metrics collapse into one number.
        """
        timelines = [
            t
            for t in self.timelines()
            if t.latency is not None
            and t.prediction_delay is not None
            and t.admission_wait is not None
        ]
        if not timelines:
            return {
                "n_queries": 0.0,
                "mean_prediction_delay_s": 0.0,
                "mean_admission_wait_s": 0.0,
                "max_admission_wait_s": 0.0,
                "mean_run_s": 0.0,
                "mean_latency_s": 0.0,
            }
        n = float(len(timelines))
        return {
            "n_queries": n,
            "mean_prediction_delay_s": sum(
                t.prediction_delay for t in timelines
            )
            / n,
            "mean_admission_wait_s": sum(t.admission_wait for t in timelines)
            / n,
            "max_admission_wait_s": max(t.admission_wait for t in timelines),
            "mean_run_s": sum(t.run_seconds for t in timelines) / n,
            "mean_latency_s": sum(t.latency for t in timelines) / n,
        }

    # --- pool accounting -------------------------------------------------
    def pools(self) -> list[int]:
        """Pool indices seen in the trace."""
        seen = set(self._grant_deltas) | set(self._capacity)
        return sorted(p for p in seen if p >= 0)

    def reserved_skyline(self, pool: int) -> Skyline:
        """The pool's reserved-grant step function, rebuilt from grant
        events alone.

        For an untraced engine this state lives in the arbiter; the
        rebuilt skyline must match ``FleetMetrics.pool_skyline``
        point-for-point — the completeness check on grant emission.
        """
        skyline = Skyline()
        skyline.record(0.0, 0)
        held = 0
        for time, delta in self._grant_deltas.get(pool, []):
            held += delta
            skyline.record(time, held)
        return skyline

    def capacity_skyline(self, pool: int) -> Skyline:
        """Provisioned capacity over time (serve_begin + resizes)."""
        skyline = Skyline()
        for time, capacity in self._capacity.get(pool, []):
            skyline.record(time, capacity)
        return skyline

    def serving_window(self) -> tuple[float, float]:
        """First traced arrival to last traced finish."""
        arrivals = [
            t.arrival_time
            for t in self.timelines()
            if t.arrival_time is not None
        ]
        finishes = [
            t.finish_time for t in self.timelines() if t.finish_time is not None
        ]
        if not arrivals or not finishes:
            return (0.0, 0.0)
        return (min(arrivals), max(finishes))

    def utilization(self, pool: int) -> float:
        """Reserved over provisioned executor-seconds for one pool,
        billed over the trace's serving window (the
        ``FleetMetrics.utilization`` definition)."""
        start, end = self.serving_window()
        if end <= start:
            return 0.0
        capacity = self.capacity_skyline(pool)
        provisioned = capacity.auc(end) - capacity.auc(start)
        if provisioned <= 0:
            return 0.0
        reserved = self.reserved_skyline(pool)
        return (reserved.auc(end) - reserved.auc(start)) / provisioned

    # --- the Sparklens round-trip ----------------------------------------
    def execution_log(self, query: int) -> ExecutionLog:
        """Rebuild one traced query's :class:`ExecutionLog`.

        Durations come from ``task_assign`` events in assignment order —
        the same order (and the same floats) the engine's own
        ``record_log`` path captures, killed-and-retried attempts
        included — and the DAG and driver time from the admit event, so
        the log is exactly what a real deployment would scrape from this
        run's event stream.
        """
        build = self._builds.get(query)
        if build is None or not build.stage_deps:
            raise KeyError(f"query {query} has no admitted trace")
        stages = []
        for sid, deps in enumerate(build.stage_deps):
            stages.append(
                StageLog(
                    stage_id=sid,
                    dependencies=list(deps),
                    task_durations=np.asarray(
                        build.stage_durations.get(sid, []), dtype=float
                    ),
                )
            )
        return ExecutionLog(
            query_id=build.timeline.query_id or f"query-{query}",
            driver_seconds=build.driver_seconds,
            stages=stages,
            cores_per_executor=build.cores_per_executor,
            executors_used=max(1, build.timeline.peak_executors),
        )

    def execution_logs(self) -> dict[int, ExecutionLog]:
        """Every admitted query's rebuilt log, keyed by stream position."""
        return {
            q: self.execution_log(q)
            for q in sorted(self._builds)
            if q >= 0 and self._builds[q].stage_deps
        }

    def estimator(self, query: int) -> SparklensEstimator:
        """A Sparklens estimator over one traced query's rebuilt log."""
        return SparklensEstimator(self.execution_log(query))

    def sparklens_curve(
        self, query: int, n_values: Sequence[int]
    ) -> np.ndarray:
        """Sparklens t(n) estimates for a traced query — the round-trip:
        simulate, trace, rebuild the log, re-estimate."""
        return self.estimator(query).estimate_curve(n_values)

"""Portable model interchange (the paper's ONNX substitute).

The paper trains its models in Python (scikit-learn) but scores them inside
the JVM-hosted Spark optimizer, bridging the gap by exporting to ONNX and
scoring with the ONNX runtime's Java bindings (Section 4.3).  The essential
properties — a training-library-independent serialized format, a separate
lightweight runtime with load-once/cache semantics and millisecond
inference, and measurable file sizes and load/score overheads
(Section 5.6) — are reproduced here with a JSON tree format and a
numpy-based scorer that shares no code with :mod:`repro.ml`'s training
classes.
"""

from repro.export.format import (
    export_model,
    load_model_file,
    save_model_file,
    save_parameter_model,
)
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer

__all__ = [
    "export_model",
    "save_model_file",
    "save_parameter_model",
    "load_model_file",
    "PortableModelRuntime",
    "PortablePPMScorer",
]

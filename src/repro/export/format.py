"""The portable model file format.

A portable model is a JSON document:

    {
      "format_version": 1,
      "kind": "random_forest" | "linear",
      "n_features": int, "n_outputs": int,
      "metadata": {...},            # feature names, PPM family, ...
      "trees": [                    # for random forests
        {"feature": [...], "threshold": [...],
         "left": [...], "right": [...], "value": [[...], ...]},
        ...
      ],
      "coef": [[...]], "intercept": [...]   # for linear models
    }

Like ONNX, the format captures only what inference needs — no training
state — and is independent of the library that produced it.  File sizes
land in the same ~1 MB ballpark the paper reports for its 103-query
TPC-DS models (Section 5.6), which the overhead bench verifies.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["FORMAT_VERSION", "export_model", "save_model_file", "load_model_file"]

FORMAT_VERSION = 1


def _export_tree(tree: DecisionTreeRegressor) -> dict:
    features, thresholds, left, right, values = tree._compile()
    return {
        "feature": features.tolist(),
        "threshold": [
            None if not np.isfinite(t) else float(t) for t in thresholds
        ],
        "left": left.tolist(),
        "right": right.tolist(),
        "value": values.tolist(),
    }


def export_model(model, metadata: dict | None = None) -> dict:
    """Serialize a fitted estimator into the portable document.

    Supports the estimators the paper's pipeline uses: random forests,
    single trees, and linear models.  ``metadata`` is carried verbatim
    (put feature names and the PPM family there).
    """
    metadata = dict(metadata or {})
    if isinstance(model, RandomForestRegressor):
        if not model.estimators_:
            raise ValueError("cannot export an unfitted forest")
        return {
            "format_version": FORMAT_VERSION,
            "kind": "random_forest",
            "n_features": model.n_features_in_,
            "n_outputs": model.n_outputs_,
            "metadata": metadata,
            "trees": [_export_tree(t) for t in model.estimators_],
        }
    if isinstance(model, DecisionTreeRegressor):
        if not model.nodes_:
            raise ValueError("cannot export an unfitted tree")
        return {
            "format_version": FORMAT_VERSION,
            "kind": "random_forest",  # a forest with one tree
            "n_features": model.n_features_in_,
            "n_outputs": model.n_outputs_,
            "metadata": metadata,
            "trees": [_export_tree(model)],
        }
    if isinstance(model, LinearRegression):
        if model.coef_ is None:
            raise ValueError("cannot export an unfitted linear model")
        coef = np.atleast_2d(model.coef_)
        intercept = np.atleast_1d(model.intercept_)
        return {
            "format_version": FORMAT_VERSION,
            "kind": "linear",
            "n_features": model.n_features_in_,
            "n_outputs": coef.shape[0],
            "metadata": metadata,
            "coef": coef.tolist(),
            "intercept": [float(b) for b in intercept],
        }
    raise TypeError(f"cannot export models of type {type(model).__name__}")


def save_model_file(model, path: str | Path, metadata: dict | None = None) -> int:
    """Export and write a model; returns the file size in bytes."""
    document = export_model(model, metadata)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f)
    return path.stat().st_size


def save_parameter_model(parameter_model, path: str | Path) -> int:
    """Export a fitted :class:`repro.core.parameter_model.ParameterModel`.

    Writes the underlying estimator together with the metadata a
    :class:`repro.export.runtime.PortablePPMScorer` needs (PPM family and
    log-space target mask).  Returns the file size in bytes.
    """
    return save_model_file(
        parameter_model.estimator, path, parameter_model.export_metadata()
    )


def load_model_file(path: str | Path) -> dict:
    """Read and validate a portable model document."""
    with open(path, encoding="utf-8") as f:
        document = json.load(f)
    validate_document(document)
    return document


def validate_document(document: dict) -> None:
    """Structural validation of a portable model document."""
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version: {document.get('format_version')!r}"
        )
    kind = document.get("kind")
    if kind == "random_forest":
        trees = document.get("trees")
        if not trees:
            raise ValueError("forest document has no trees")
        for tree in trees:
            n = len(tree["feature"])
            for key in ("threshold", "left", "right", "value"):
                if len(tree[key]) != n:
                    raise ValueError(f"tree arrays disagree on length ({key})")
    elif kind == "linear":
        if "coef" not in document or "intercept" not in document:
            raise ValueError("linear document missing coefficients")
    else:
        raise ValueError(f"unknown model kind: {kind!r}")

"""The portable model runtime (the paper's in-optimizer ONNX runtime).

:class:`PortableModelRuntime` is a model *registry + scorer*: it loads
portable model files from a directory, caches them (the paper caches loaded
models inside the optimizer because inference is on the live query path),
and runs inference with its own numpy tree-walker — no dependency on the
training classes in :mod:`repro.ml`, just as the ONNX runtime is
independent of scikit-learn.

:class:`PortablePPMScorer` adapts a loaded model to the ``predict_ppm``
interface :class:`repro.core.autoexecutor.AutoExecutorRule` expects, using
the PPM family recorded in the model's metadata.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.ppm import AmdahlPPM, PowerLawPPM, PricePerfModel
from repro.export.format import load_model_file

__all__ = ["PortableModelRuntime", "PortablePPMScorer"]


class _CompiledForest:
    """Inference-ready representation of a forest document."""

    def __init__(self, document: dict) -> None:
        self.kind = document["kind"]
        self.n_features = int(document["n_features"])
        self.n_outputs = int(document["n_outputs"])
        self.metadata = dict(document.get("metadata", {}))
        if self.kind == "linear":
            self.coef = np.asarray(document["coef"], dtype=float)
            self.intercept = np.asarray(document["intercept"], dtype=float)
            self.trees: list[tuple[np.ndarray, ...]] = []
        else:
            self.trees = []
            for tree in document["trees"]:
                thresholds = np.array(
                    [np.nan if t is None else t for t in tree["threshold"]],
                    dtype=float,
                )
                self.trees.append(
                    (
                        np.asarray(tree["feature"], dtype=int),
                        thresholds,
                        np.asarray(tree["left"], dtype=int),
                        np.asarray(tree["right"], dtype=int),
                        np.asarray(tree["value"], dtype=float),
                    )
                )

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"input has {X.shape[1]} features; model expects "
                f"{self.n_features}"
            )
        if self.kind == "linear":
            out = X @ self.coef.T + self.intercept
        else:
            acc = np.zeros((X.shape[0], self.n_outputs))
            rows = np.arange(X.shape[0])
            for features, thresholds, left, right, values in self.trees:
                idx = np.zeros(X.shape[0], dtype=int)
                while True:
                    feats = features[idx]
                    active = feats >= 0
                    if not active.any():
                        break
                    act_rows = rows[active]
                    act_idx = idx[active]
                    go_left = (
                        X[act_rows, feats[active]] <= thresholds[act_idx]
                    )
                    idx[active] = np.where(
                        go_left, left[act_idx], right[act_idx]
                    )
                acc += values[idx]
            out = acc / len(self.trees)
        return out[0] if single else out


class PortableModelRuntime:
    """Load-once, cached scoring of portable model files.

    Args:
        registry_dir: directory holding ``<name>.json`` model files (the
            stand-in for the AML/MLflow model registry of Figure 6).

    Timing of loads, compilations, and inferences is collected in
    :attr:`timings` to reproduce the Section 5.6 overhead table.
    """

    def __init__(self, registry_dir: str | Path) -> None:
        self.registry_dir = Path(registry_dir)
        self._cache: dict[str, _CompiledForest] = {}
        self.timings: dict[str, list[float]] = {
            "load": [],
            "setup": [],
            "inference": [],
        }

    def model_path(self, name: str) -> Path:
        return self.registry_dir / f"{name}.json"

    def load(self, name: str) -> _CompiledForest:
        """Fetch a model, reading and compiling it only on first use."""
        if name not in self._cache:
            start = time.perf_counter()
            document = load_model_file(self.model_path(name))
            self.timings["load"].append(time.perf_counter() - start)
            start = time.perf_counter()
            self._cache[name] = _CompiledForest(document)
            self.timings["setup"].append(time.perf_counter() - start)
        return self._cache[name]

    def predict(self, name: str, X: np.ndarray) -> np.ndarray:
        """Score the named model; inference time is recorded."""
        model = self.load(name)
        start = time.perf_counter()
        out = model.predict(X)
        self.timings["inference"].append(time.perf_counter() - start)
        return out

    def is_cached(self, name: str) -> bool:
        return name in self._cache

    def mean_timing(self, phase: str) -> float:
        """Mean seconds of a phase (``load``/``setup``/``inference``)."""
        samples = self.timings[phase]
        return sum(samples) / len(samples) if samples else 0.0


_FAMILIES: dict[str, type[PricePerfModel]] = {
    "power_law": PowerLawPPM,
    "amdahl": AmdahlPPM,
}


class PortablePPMScorer:
    """Adapt a registry model to the AutoExecutor rule's interface.

    The model's metadata must record its PPM family under ``"family"``
    and — when the training pipeline regressed targets in log space — the
    per-parameter mask under ``"log_params"``.  Both are written by
    :meth:`repro.core.parameter_model.ParameterModel.export_metadata`.
    """

    _LOG_EPSILON = 1e-3  # must match the parameter model's transform

    def __init__(self, runtime: PortableModelRuntime, name: str) -> None:
        self.runtime = runtime
        self.name = name

    def _family(self) -> type[PricePerfModel]:
        metadata = self.runtime.load(self.name).metadata
        family = metadata.get("family")
        if family not in _FAMILIES:
            raise ValueError(
                f"model {self.name!r} metadata lacks a valid PPM family "
                f"(got {family!r})"
            )
        return _FAMILIES[family]

    def _untransform(self, params: np.ndarray) -> np.ndarray:
        """Undo the training pipeline's log-space target transform."""
        metadata = self.runtime.load(self.name).metadata
        log_mask = metadata.get("log_params", [False] * params.shape[-1])
        for col, use_log in enumerate(log_mask):
            if use_log:
                params[..., col] = np.maximum(
                    np.exp(params[..., col]) - self._LOG_EPSILON, 0.0
                )
        return params

    def predict_ppm(self, features) -> PricePerfModel:
        vector = getattr(features, "values", features)
        raw = self.runtime.predict(self.name, np.asarray(vector, dtype=float))
        family = self._family()
        params = self._untransform(np.array(raw, dtype=float))
        return family.from_parameters(params)

    def predict_ppm_batch(self, features_matrix) -> list[PricePerfModel]:
        """Score a whole batch of feature rows in one runtime call.

        This is the batch-inference contract every consumer leans on —
        :meth:`repro.fleet.prediction.PredictionService.predict_batch`
        for cache warm-up, and the HTTP serving layer's micro-batcher
        (:mod:`repro.serve.batching`) for request coalescing:

        - **Input shape**: ``features_matrix`` is array-like of shape
          ``(n, n_features)`` with one feature vector per row, ordered
          as :data:`repro.core.features.FEATURE_NAMES`.  A single
          1-D vector is promoted to a one-row matrix.
        - **Ordering**: the result is one fitted PPM per row, with
          output ``i`` scoring input row ``i``.
        - **Equivalence**: output ``i`` is *identical* to calling
          :meth:`predict_ppm` on row ``i`` alone — batching changes the
          dispatch count (one runtime call instead of ``n``; the
          batching the paper's in-optimizer ONNX runtime relies on),
          never the predictions.  The serving layer's byte-identical
          recommendation guarantee rests on this.
        """
        matrix = np.atleast_2d(np.asarray(features_matrix, dtype=float))
        raw = self.runtime.predict(self.name, matrix)
        family = self._family()
        params = self._untransform(np.array(raw, dtype=float))
        return [family.from_parameters(row) for row in params]

"""TPC-DS-like workload: 103 deterministic query-plan templates.

The paper evaluates on "103 TPC-DS queries (99 queries + variants)" at
scale factors 10 and 100 (Section 5.1).  Real TPC-DS SQL text and dsdgen
data are out of scope for a simulator substrate; what the models consume is
the pair (compile-time plan features, run-time curve), so this module
generates *plans*: trees over the 14 operator kinds with realistic
cardinality and byte annotations, deterministic per (query id, scale
factor).

Design notes:

- The table catalog mirrors TPC-DS: fact tables (store_sales, ...) scale
  linearly with SF; customer-ish dimensions scale sublinearly; calendar
  dimensions are fixed.  This is what makes the optimal executor count
  depend on SF (paper Figure 3c).
- Each query id seeds its own RNG (a stable CRC, not Python's salted
  hash), so templates are reproducible across processes and runs.
- Query "complexity classes" (simple / medium / complex) control the
  number of fact branches, dimensions, and heavyweight operators, giving
  the operator-count spread the paper's feature analysis needs.
- The b-variants (q14b, q23b, q24b, q39b) perturb their base template the
  way the second parameter substitution of the official variants does.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.engine.plan import InputSource, LogicalPlan, OperatorKind, PlanNode

__all__ = ["QUERY_IDS", "TableSpec", "TABLE_CATALOG", "build_query", "tpcds_workload"]


#: The paper's 103 queries: q1..q99 plus the four b-variants it plots.
QUERY_IDS: tuple[str, ...] = tuple(
    [f"q{i}" for i in range(1, 100)] + ["q14b", "q23b", "q24b", "q39b"]
)


@dataclass(frozen=True)
class TableSpec:
    """One catalog table.

    Attributes:
        name: table name.
        rows_per_sf: row count at SF=1.
        bytes_per_row: average row width on disk.
        scale_exponent: rows scale as ``SF ** scale_exponent`` (1.0 for
            fact tables, 0 for calendar dimensions).
    """

    name: str
    rows_per_sf: float
    bytes_per_row: float
    scale_exponent: float

    def rows(self, scale_factor: float) -> float:
        return self.rows_per_sf * scale_factor**self.scale_exponent

    def bytes(self, scale_factor: float) -> float:
        return self.rows(scale_factor) * self.bytes_per_row

    def source(self, scale_factor: float) -> InputSource:
        return InputSource(
            name=self.name,
            bytes=self.bytes(scale_factor),
            rows=self.rows(scale_factor),
        )


_FACTS = [
    TableSpec("store_sales", 2_880_000, 100.0, 1.0),
    TableSpec("catalog_sales", 1_440_000, 120.0, 1.0),
    TableSpec("web_sales", 720_000, 120.0, 1.0),
    TableSpec("store_returns", 288_000, 80.0, 1.0),
    TableSpec("catalog_returns", 144_000, 90.0, 1.0),
    TableSpec("web_returns", 72_000, 90.0, 1.0),
    TableSpec("inventory", 11_745_000, 30.0, 1.0),
]

_BIG_DIMS = [
    TableSpec("customer", 100_000, 132.0, 0.75),
    TableSpec("customer_address", 50_000, 110.0, 0.75),
    TableSpec("customer_demographics", 1_920_800, 42.0, 0.0),
]

_SMALL_DIMS = [
    TableSpec("item", 18_000, 255.0, 0.45),
    TableSpec("date_dim", 73_049, 141.0, 0.0),
    TableSpec("time_dim", 86_400, 59.0, 0.0),
    TableSpec("store", 102, 263.0, 0.45),
    TableSpec("warehouse", 10, 117.0, 0.45),
    TableSpec("web_site", 30, 292.0, 0.45),
    TableSpec("promotion", 300, 124.0, 0.45),
    TableSpec("household_demographics", 7_200, 21.0, 0.0),
]

TABLE_CATALOG: dict[str, TableSpec] = {
    t.name: t for t in _FACTS + _BIG_DIMS + _SMALL_DIMS
}

#: Fact-table popularity: TPC-DS templates hit the three sales channels far
#: more often than the returns tables (store > catalog > web).
_FACT_WEIGHTS = np.array([0.27, 0.21, 0.17, 0.11, 0.09, 0.08, 0.07])


def _query_seed(query_id: str) -> int:
    """Stable per-query seed (CRC32 of the id; Python's hash is salted)."""
    return zlib.crc32(query_id.encode("utf-8"))


def _base_id(query_id: str) -> str:
    """``q14b`` → ``q14`` (variants share their base's template)."""
    return query_id[:-1] if query_id.endswith("b") else query_id


def _exchange(child: PlanNode) -> PlanNode:
    return PlanNode(
        kind=OperatorKind.EXCHANGE, children=[child], rows_out=child.rows_out
    )


def _scan_branch(
    table: TableSpec,
    scale_factor: float,
    rng: np.random.Generator,
) -> PlanNode:
    """Scan → pushable filter → project over one table."""
    scan = PlanNode(kind=OperatorKind.SCAN, source=table.source(scale_factor))
    selectivity = float(np.exp(rng.uniform(np.log(0.02), np.log(0.6))))
    node = PlanNode(
        kind=OperatorKind.FILTER,
        children=[scan],
        rows_out=scan.rows_out * selectivity,
        selectivity=selectivity,
        pushable=bool(rng.random() < 0.8),
    )
    columns_kept = float(rng.uniform(0.2, 0.8))
    node = PlanNode(
        kind=OperatorKind.PROJECT,
        children=[node],
        rows_out=node.rows_out,
        columns_kept=columns_kept,
    )
    return node


def _join(
    left: PlanNode,
    right: PlanNode,
    rows_out: float,
    shuffle_left: bool = False,
    shuffle_right: bool = False,
) -> PlanNode:
    if shuffle_left:
        left = _exchange(left)
    if shuffle_right:
        right = _exchange(right)
    return PlanNode(
        kind=OperatorKind.JOIN, children=[left, right], rows_out=rows_out
    )


@dataclass(frozen=True)
class _Complexity:
    n_facts: int
    n_small_dims: int
    n_big_dims: int
    extra_ops: int


def _complexity_for(rng: np.random.Generator) -> _Complexity:
    roll = rng.random()
    if roll < 0.25:  # simple reporting query
        return _Complexity(
            n_facts=1,
            n_small_dims=int(rng.integers(1, 3)),
            n_big_dims=0,
            extra_ops=int(rng.integers(0, 2)),
        )
    if roll < 0.70:  # medium
        return _Complexity(
            n_facts=int(rng.integers(1, 3)),
            n_small_dims=int(rng.integers(2, 5)),
            n_big_dims=int(rng.integers(0, 2)),
            extra_ops=int(rng.integers(1, 3)),
        )
    return _Complexity(  # complex multi-channel query
        n_facts=int(rng.integers(2, 4)),
        n_small_dims=int(rng.integers(3, 7)),
        n_big_dims=int(rng.integers(1, 3)),
        extra_ops=int(rng.integers(2, 5)),
    )


def _fact_branch(
    rng: np.random.Generator,
    scale_factor: float,
    n_small_dims: int,
    n_big_dims: int,
) -> PlanNode:
    """One fact table joined with its dimensions.

    Small dimensions broadcast-join (no exchange); big dimensions shuffle
    both sides, creating stage boundaries exactly where Spark would.
    """
    fact = _FACTS[int(rng.choice(len(_FACTS), p=_FACT_WEIGHTS))]
    node = _scan_branch(fact, scale_factor, rng)
    for _ in range(n_small_dims):
        dim = _SMALL_DIMS[int(rng.integers(0, len(_SMALL_DIMS)))]
        dim_branch = _scan_branch(dim, scale_factor, rng)
        keep = float(rng.uniform(0.3, 1.0))
        node = _join(node, dim_branch, rows_out=node.rows_out * keep)
    for _ in range(n_big_dims):
        dim = _BIG_DIMS[int(rng.integers(0, len(_BIG_DIMS)))]
        dim_branch = _scan_branch(dim, scale_factor, rng)
        keep = float(rng.uniform(0.3, 1.0))
        node = _join(
            node,
            dim_branch,
            rows_out=node.rows_out * keep,
            shuffle_left=True,
            shuffle_right=True,
        )
    return node


def _apply_extra_op(
    node: PlanNode, rng: np.random.Generator
) -> PlanNode:
    """Sprinkle one of the rarer operator kinds on top of a branch."""
    kind = [
        OperatorKind.WINDOW,
        OperatorKind.EXPAND,
        OperatorKind.GENERATE,
        OperatorKind.INTERSECT,
        OperatorKind.EXCEPT,
    ][int(rng.integers(0, 5))]
    if kind in (OperatorKind.INTERSECT, OperatorKind.EXCEPT):
        # Set operations need two inputs; reuse a cheap calendar branch.
        other = _scan_branch(_SMALL_DIMS[1], 1.0, rng)
        return PlanNode(
            kind=kind,
            children=[node, other],
            rows_out=node.rows_out * 0.5,
        )
    if kind == OperatorKind.EXPAND:
        return PlanNode(kind=kind, children=[node], rows_out=node.rows_out * 2)
    if kind == OperatorKind.GENERATE:
        return PlanNode(kind=kind, children=[node], rows_out=node.rows_out * 1.5)
    return PlanNode(kind=kind, children=[_exchange(node)], rows_out=node.rows_out)


def build_query(
    query_id: str, scale_factor: float, seed: int = 0
) -> LogicalPlan:
    """Build the plan for one query at a scale factor.

    Args:
        query_id: one of :data:`QUERY_IDS`.
        scale_factor: TPC-DS scale factor (paper: 10 and 100).
        seed: workload-level seed, mixed into every query's template seed.

    Returns:
        A validated :class:`~repro.engine.plan.LogicalPlan`.  The same
        (query_id, scale_factor, seed) always yields the same plan.
    """
    if query_id not in QUERY_IDS:
        raise ValueError(f"unknown query id: {query_id!r}")
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")

    is_variant = query_id.endswith("b")
    rng = np.random.default_rng(_query_seed(_base_id(query_id)) + 7919 * seed)
    complexity = _complexity_for(rng)

    branches = [
        _fact_branch(
            rng, scale_factor, complexity.n_small_dims, complexity.n_big_dims
        )
        for _ in range(complexity.n_facts)
    ]
    if len(branches) == 1:
        node = branches[0]
    elif rng.random() < 0.4 or is_variant:
        # Multi-channel queries union their branches (q14-style).
        node = PlanNode(
            kind=OperatorKind.UNION,
            children=[_exchange(b) for b in branches],
            rows_out=sum(b.rows_out for b in branches),
        )
    else:
        node = branches[0]
        for other in branches[1:]:
            keep = float(rng.uniform(0.05, 0.6))
            node = _join(
                node,
                other,
                rows_out=max(node.rows_out, other.rows_out) * keep,
                shuffle_left=True,
                shuffle_right=True,
            )

    for _ in range(complexity.extra_ops):
        node = _apply_extra_op(node, rng)

    # Every query aggregates (TPC-DS is a reporting workload).
    group_reduction = float(np.exp(rng.uniform(np.log(1e-4), np.log(5e-2))))
    node = PlanNode(
        kind=OperatorKind.AGGREGATE,
        children=[_exchange(node)],
        rows_out=max(node.rows_out * group_reduction, 1.0),
    )
    if rng.random() < 0.55:
        node = PlanNode(
            kind=OperatorKind.SORT,
            children=[_exchange(node)],
            rows_out=node.rows_out,
        )
    if rng.random() < 0.6:
        node = PlanNode(
            kind=OperatorKind.LIMIT,
            children=[node],
            rows_out=min(node.rows_out, 100.0),
        )

    if is_variant:
        # Variants re-parameterize the base query: different predicate
        # constants → different selectivity at the top of the plan.
        variant_rng = np.random.default_rng(_query_seed(query_id))
        node = PlanNode(
            kind=OperatorKind.FILTER,
            children=[node],
            rows_out=node.rows_out * 0.7,
            selectivity=float(variant_rng.uniform(0.4, 0.9)),
            pushable=False,
        )

    plan = LogicalPlan(root=node, query_id=query_id)
    plan.validate()
    return plan


def tpcds_workload(
    scale_factor: float, seed: int = 0
) -> list[LogicalPlan]:
    """All 103 query plans at the given scale factor."""
    return [build_query(qid, scale_factor, seed) for qid in QUERY_IDS]

"""Synthetic production Spark trace.

The paper motivates per-query allocation with insights from "a large subset
of daily production Spark workloads at Microsoft consisting of 90,224
applications and 840,278 queries across 3,245 clusters" (Section 2.1–2.2,
Figures 2 and 3a/3b).  That telemetry is proprietary; this module generates
a seeded synthetic trace whose marginal distributions match every statistic
the paper reports:

- more than 60 % of applications run more than one query (Fig 2a), with a
  heavy tail reaching thousands of queries;
- within an application, queries vary: the median coefficient of variation
  is ≈20 % for operator counts, ≈40 % for rows processed, ≈60 % for query
  times (Fig 2b);
- ≈70 % of applications never share their cluster (Fig 2c);
- 59 % of applications enable dynamic allocation; 97 % of those keep the
  default min/max thresholds (0 and 2^31−1); the rest set ranges that are
  mostly 2, growing to 64 (Fig 3a);
- of the 41 % without dynamic allocation, 80 % run with the default 2
  executors (Fig 3b), with a tail reaching thousands of total cores.

Per-application coefficients of variation are *computed from per-query
draws*, not sampled directly, so the trace behaves like real telemetry
under any downstream aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProductionTrace", "generate_production_trace"]

#: Spark's pathological defaults the paper calls out (Section 2.2).
DEFAULT_MIN_EXECUTORS = 0
DEFAULT_MAX_EXECUTORS = 2**31 - 1


@dataclass(frozen=True)
class ProductionTrace:
    """One synthetic production workload snapshot.

    All arrays are per-application unless noted.

    Attributes:
        queries_per_app: number of queries each application ran.
        cov_operator_counts: CoV (%) of operator counts across the app's
            queries (0 for single-query apps).
        cov_rows_processed: CoV (%) of rows processed.
        cov_query_times: CoV (%) of query run times.
        max_concurrent_apps: peak number of applications sharing the app's
            cluster while it ran (1 = never shared).
        dynamic_allocation: whether the app enabled dynamic allocation.
        default_thresholds: for DA apps, whether min/max kept the defaults.
        da_range: for DA apps with custom thresholds, ``max − min``
          (0 elsewhere).
        static_executors: for non-DA apps, the static executor count
          (0 elsewhere).
        cores_per_executor: executor width used for the total-cores CDF.
        n_clusters: number of distinct clusters in the trace.
    """

    queries_per_app: np.ndarray
    cov_operator_counts: np.ndarray
    cov_rows_processed: np.ndarray
    cov_query_times: np.ndarray
    max_concurrent_apps: np.ndarray
    dynamic_allocation: np.ndarray
    default_thresholds: np.ndarray
    da_range: np.ndarray
    static_executors: np.ndarray
    cores_per_executor: int
    n_clusters: int

    @property
    def n_applications(self) -> int:
        return int(self.queries_per_app.size)

    @property
    def n_queries(self) -> int:
        return int(self.queries_per_app.sum())

    def multi_query_fraction(self) -> float:
        """Fraction of applications with more than one query (Fig 2a)."""
        return float(np.mean(self.queries_per_app > 1))

    def unshared_cluster_fraction(self) -> float:
        """Fraction of applications that never share a cluster (Fig 2c)."""
        return float(np.mean(self.max_concurrent_apps == 1))

    def da_fraction(self) -> float:
        return float(np.mean(self.dynamic_allocation))

    def default_threshold_fraction(self) -> float:
        """Among DA apps, the fraction keeping Spark's default range."""
        da = self.dynamic_allocation
        if not np.any(da):
            return 0.0
        return float(np.mean(self.default_thresholds[da]))

    def custom_da_ranges(self) -> np.ndarray:
        """DA ranges of the apps that customized their thresholds."""
        mask = self.dynamic_allocation & ~self.default_thresholds
        return self.da_range[mask]

    def static_allocations(self) -> np.ndarray:
        """Executor counts of the apps without dynamic allocation."""
        return self.static_executors[~self.dynamic_allocation]

    def static_total_cores(self) -> np.ndarray:
        return self.static_allocations() * self.cores_per_executor


def _per_app_cov(
    rng: np.random.Generator,
    queries_per_app: np.ndarray,
    median_cov: float,
) -> np.ndarray:
    """Per-app CoV (%) computed from simulated per-query draws.

    Each app draws a dispersion parameter around the target (spread across
    apps), then its queries draw lognormal values; the CoV of those draws
    is returned.  Single-query apps get CoV 0 by construction.
    """
    # Lognormal sigma whose CoV equals the target median.
    target_sigma = float(np.sqrt(np.log(1.0 + (median_cov / 100.0) ** 2)))
    n_apps = queries_per_app.size
    app_sigma = target_sigma * rng.lognormal(mean=0.0, sigma=0.6, size=n_apps)
    covs = np.zeros(n_apps)
    for i, (q, sigma) in enumerate(zip(queries_per_app, app_sigma)):
        if q < 2:
            continue
        draws = rng.lognormal(mean=0.0, sigma=sigma, size=int(q))
        mean = draws.mean()
        covs[i] = 100.0 * draws.std() / mean if mean > 0 else 0.0
    return covs


def generate_production_trace(
    n_applications: int = 9_000,
    n_clusters: int = 325,
    cores_per_executor: int = 4,
    seed: int = 0,
) -> ProductionTrace:
    """Generate a synthetic production trace.

    Args:
        n_applications: trace size (the paper's snapshot had 90,224 apps;
            the default is a 10× downscale that preserves every CDF).
        n_clusters: distinct clusters (downscaled from 3,245 likewise).
        cores_per_executor: executor width for the total-cores CDF.
        seed: RNG seed; the trace is fully deterministic given the seed.
    """
    if n_applications < 1 or n_clusters < 1:
        raise ValueError("trace sizes must be positive")
    rng = np.random.default_rng(seed)

    # --- Fig 2a: queries per application --------------------------------
    # ~38 % single-query apps; the rest follow a heavy-tailed lognormal
    # reaching into the thousands.
    single = rng.random(n_applications) < 0.38
    tail = np.ceil(rng.lognormal(mean=1.4, sigma=1.5, size=n_applications))
    queries_per_app = np.where(single, 1, 1 + tail).astype(int)
    queries_per_app = np.minimum(queries_per_app, 10_000)

    # --- Fig 2b: within-app variation ------------------------------------
    # Targets are set so that, *counting single-query apps as zero
    # variation*, half of all applications still exceed the paper's 20 % /
    # 40 % / 60 % thresholds (Figure 2b reads the CDF over all apps).
    cov_ops = _per_app_cov(rng, queries_per_app, median_cov=50.0)
    cov_rows = _per_app_cov(rng, queries_per_app, median_cov=110.0)
    cov_times = _per_app_cov(rng, queries_per_app, median_cov=260.0)

    # --- Fig 2c: concurrency -------------------------------------------
    # ~70 % of apps never share their cluster; the rest see geometrically
    # rarer peaks up to 64 concurrent applications.
    shared = rng.random(n_applications) >= 0.70
    peaks = np.ones(n_applications, dtype=int)
    extra = rng.geometric(p=0.45, size=n_applications)
    peaks[shared] = np.minimum(1 + extra[shared] * 2, 64)

    # --- Fig 3a/3b: allocation configuration -----------------------------
    dynamic = rng.random(n_applications) < 0.59
    defaults = rng.random(n_applications) < 0.97

    # Custom DA ranges: ~60 % at 2, the rest spread over 4..64.
    range_choices = np.array([2, 4, 8, 16, 32, 64])
    range_weights = np.array([0.60, 0.14, 0.10, 0.07, 0.05, 0.04])
    da_range = rng.choice(
        range_choices, size=n_applications, p=range_weights
    )
    da_range = np.where(dynamic & ~defaults, da_range, 0)

    # Static allocations: 80 % at the default of 2 executors; tail up to
    # 512 executors (2048 cores at ec=4).
    static_choices = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256, 512])
    static_weights = np.array(
        [0.04, 0.80, 0.05, 0.035, 0.025, 0.02, 0.012, 0.008, 0.006, 0.004]
    )
    static = rng.choice(
        static_choices, size=n_applications, p=static_weights
    )
    static = np.where(~dynamic, static, 0)

    return ProductionTrace(
        queries_per_app=queries_per_app,
        cov_operator_counts=cov_ops,
        cov_rows_processed=cov_rows,
        cov_query_times=cov_times,
        max_concurrent_apps=peaks,
        dynamic_allocation=dynamic,
        default_thresholds=defaults & dynamic,
        da_range=da_range,
        static_executors=static,
        cores_per_executor=cores_per_executor,
        n_clusters=n_clusters,
    )

"""Workload bundles: plans + optimized plans + cached stage graphs.

A :class:`Workload` ties together everything downstream code needs for one
(scale factor, seed) instantiation of the TPC-DS-like benchmark: the raw
plans, the optimizer-rewritten plans (features are extracted from
*optimized* plans, as in the paper), and the compiled stage graphs the
simulator executes.  Stage graphs are compiled lazily and cached — the
experiment harness touches each query many times (six executor counts,
several policies, repeated runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.optimizer import Optimizer
from repro.engine.plan import LogicalPlan
from repro.engine.stages import (
    DEFAULT_COMPILER_CONFIG,
    StageCompilerConfig,
    StageGraph,
    compile_stages,
)
from repro.workloads.tpcds import QUERY_IDS, build_query

__all__ = ["Workload"]


@dataclass
class Workload:
    """One instantiation of the TPC-DS-like workload.

    Args:
        scale_factor: TPC-DS scale factor.
        seed: workload seed (varies the templates; the paper's workload is
            fixed, so benches use the default).
        query_ids: subset of queries (defaults to all 103).
        compiler_config: stage-compiler knobs.
    """

    scale_factor: float
    seed: int = 0
    query_ids: tuple[str, ...] = QUERY_IDS
    compiler_config: StageCompilerConfig = DEFAULT_COMPILER_CONFIG
    _plans: dict[str, LogicalPlan] = field(default_factory=dict, repr=False)
    _optimized: dict[str, LogicalPlan] = field(default_factory=dict, repr=False)
    _graphs: dict[str, StageGraph] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        unknown = set(self.query_ids) - set(QUERY_IDS)
        if unknown:
            raise ValueError(f"unknown query ids: {sorted(unknown)}")
        self._optimizer = Optimizer()

    def plan(self, query_id: str) -> LogicalPlan:
        """The raw (pre-optimization) plan for a query."""
        if query_id not in self._plans:
            if query_id not in self.query_ids:
                raise KeyError(query_id)
            self._plans[query_id] = build_query(
                query_id, self.scale_factor, self.seed
            )
        return self._plans[query_id]

    def optimized_plan(self, query_id: str) -> LogicalPlan:
        """The optimizer-rewritten plan (the featurization input)."""
        if query_id not in self._optimized:
            context = self._optimizer.optimize(self.plan(query_id))
            self._optimized[query_id] = context.plan
        return self._optimized[query_id]

    def stage_graph(self, query_id: str) -> StageGraph:
        """The compiled stage DAG the simulator executes."""
        if query_id not in self._graphs:
            self._graphs[query_id] = compile_stages(
                self.optimized_plan(query_id), self.compiler_config
            )
        return self._graphs[query_id]

    def __iter__(self):
        return iter(self.query_ids)

    def __len__(self) -> int:
        return len(self.query_ids)

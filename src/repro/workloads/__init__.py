"""Workload substrates.

- :mod:`~repro.workloads.tpcds` — a TPC-DS-like analytical workload: 103
  deterministic query-plan templates (99 queries plus the b-variants the
  paper lists) whose cardinalities scale with the TPC-DS scale factor.
- :mod:`~repro.workloads.generator` — bundles templates into a
  :class:`~repro.workloads.generator.Workload` with cached stage graphs.
- :mod:`~repro.workloads.production` — a synthetic stand-in for the
  Microsoft production telemetry behind the paper's Figures 2 and 3a/3b.
"""

from repro.workloads.generator import Workload
from repro.workloads.production import ProductionTrace, generate_production_trace
from repro.workloads.tpcds import QUERY_IDS, build_query, tpcds_workload

__all__ = [
    "QUERY_IDS",
    "build_query",
    "tpcds_workload",
    "Workload",
    "ProductionTrace",
    "generate_production_trace",
]

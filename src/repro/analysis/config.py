"""Configuration: scopes and allowlists from ``[tool.repro-analysis]``.

The defaults below encode the repo's actual contracts, so a bare
``python -m repro.analysis src`` enforces them with no configuration at
all.  ``pyproject.toml`` can extend (never silently replace) the
allowlists — extension keeps the shipped contract the floor, and makes
every local waiver visible as a diff to ``[tool.repro-analysis]``.

Scope patterns are dotted module names with ``fnmatch`` wildcards
(``repro.engine.*`` matches the package root and everything below it;
a pattern without wildcards matches that module exactly).

On Python ≥ 3.11 the section is read with :mod:`tomllib`; on 3.10 a
deliberately tiny TOML-subset parser (tables, strings, booleans,
integers, string lists) keeps the analyzer dependency-free — the
section's schema never needs more than that subset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields
from fnmatch import fnmatchcase

__all__ = ["AnalysisConfig", "load_config", "parse_toml_subset", "module_matches"]


def module_matches(module: str, patterns: tuple[str, ...]) -> bool:
    """Whether a dotted module name falls under any scope pattern.

    ``repro.engine.*`` is understood the way an import path reads: it
    covers ``repro.engine`` itself *and* every submodule.
    """
    for pattern in patterns:
        if fnmatchcase(module, pattern):
            return True
        if pattern.endswith(".*") and module == pattern[:-2]:
            return True
    return False


@dataclass(frozen=True)
class AnalysisConfig:
    """Every knob the checkers read, with the repo contract as default.

    Attributes:
        select: rule names to run (all registered rules when empty).
        wall_clock_modules: scope of the ``wall-clock`` rule — the
            simulation core, where the only legal clock is the event
            loop's.
        wall_clock_allow_modules: measured-overhead modules where real
            wall-clock reads are the documented exception (prediction
            service timings, export runtime, trainer fit times,
            AutoExecutor stopwatch).
        rng_modules: scope of the ``unseeded-rng`` rule (library code;
            drivers and tests draw their own seeds explicitly anyway).
        heap_key_modules: modules whose ``heapq.heappush`` calls must
            push the two-class ``(time, class-rank, counter, ...)`` key.
        taxonomy_module: repo-relative path of the file declaring
            ``EVENT_KINDS`` / ``RAW_DATA_FIELDS``.
        taxonomy_census_modules: scope whose emit sites make up the
            taxonomy census (library code only — a bench script
            replaying a trace is not an emitter).
        emit_helpers: function names that forward a ``kind`` argument to
            a tracer, mapped implicitly to "kind is the second
            positional argument" (``_trace(now, kind, ...)``).
        set_iteration_modules: scope of the ``set-iteration`` rule —
            the event-handling / float-accumulation core where
            iteration order feeds arithmetic.
        streaming_classes: ``module:ClassName`` scopes holding the
            O(1)-memory streaming accumulators; growth calls inside
            them are findings unless the attribute is allowlisted.
        streaming_bounded_attrs: attribute names inside those classes
            that are provably bounded (sketch buckets, merge scratch).
    """

    select: tuple[str, ...] = ()
    wall_clock_modules: tuple[str, ...] = (
        "repro.engine.*",
        "repro.fleet.*",
        "repro.core.*",
        "repro.export.*",
        "repro.obs.*",
        "repro.sparklens.*",
        "repro.serve.*",
    )
    wall_clock_allow_modules: tuple[str, ...] = (
        "repro.fleet.prediction",
        "repro.export.runtime",
        "repro.core.training",
        "repro.core.autoexecutor",
        # The serving layer's one measured-overhead module: service
        # latency sketches read real elapsed time there.  The rest of
        # repro.serve (protocol framing, batching, the server loop) is
        # clock-free by contract.
        "repro.serve.app",
    )
    rng_modules: tuple[str, ...] = (
        # Library code and the drivers that feed gated numbers: a bench
        # whose inputs come from global RNG state is unreproducible in
        # exactly the way its baselines cannot tolerate.
        "repro.*",
        "benchmarks.*",
        "examples.*",
    )
    heap_key_modules: tuple[str, ...] = (
        "repro.engine.scheduler",
        "repro.fleet.engine",
        "repro.fleet.cluster",
    )
    taxonomy_module: str = "src/repro/obs/trace.py"
    taxonomy_census_modules: tuple[str, ...] = ("repro.*",)
    emit_helpers: tuple[str, ...] = ("_trace",)
    set_iteration_modules: tuple[str, ...] = (
        "repro.engine.*",
        "repro.fleet.*",
    )
    streaming_classes: tuple[str, ...] = (
        "repro.fleet.metrics:PoolStreamStats",
        "repro.fleet.metrics:SkylineTracker",
        "repro.obs.metrics:StreamingFleetStats",
        "repro.obs.sketch:QuantileSketch",
    )
    streaming_bounded_attrs: tuple[str, ...] = (
        # StreamingFleetStats' sketch attributes: their .add() is a
        # bounded histogram fold, not container growth.
        "latency",
        "queue_delay",
        "run_seconds",
    )

    #: keys whose pyproject values *extend* the default tuple instead of
    #: replacing it — allowlists only ever widen.
    _EXTEND = frozenset(
        {
            "wall_clock_allow_modules",
            "emit_helpers",
            "streaming_bounded_attrs",
            "streaming_classes",
        }
    )

    @classmethod
    def from_mapping(cls, raw: dict[str, object]) -> "AnalysisConfig":
        """Build a config from a ``[tool.repro-analysis]`` mapping.

        Unknown keys are a hard error: a typoed allowlist key that
        silently does nothing would un-gate CI.
        """
        known = {f.name: f for f in fields(cls) if not f.name.startswith("_")}
        kwargs: dict[str, object] = {}
        for key, value in raw.items():
            name = key.replace("-", "_")
            if name not in known:
                raise ValueError(
                    f"[tool.repro-analysis] unknown key {key!r}; "
                    f"expected one of {sorted(known)}"
                )
            if name == "taxonomy_module":
                if not isinstance(value, str):
                    raise ValueError(f"{key} must be a string")
                kwargs[name] = value
                continue
            if isinstance(value, str):
                value = [value]
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ValueError(f"{key} must be a string or list of strings")
            defaults: tuple[str, ...] = known[name].default  # type: ignore[assignment]
            if name in cls._EXTEND:
                kwargs[name] = defaults + tuple(v for v in value if v not in defaults)
            else:
                kwargs[name] = tuple(value)
        return cls(**kwargs)  # type: ignore[arg-type]


# --- minimal TOML subset (3.10 fallback) ---------------------------------

_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_\-\.\"']+)\s*=\s*(?P<value>.+)$")


def _strip_comment(line: str) -> str:
    """Drop a trailing comment, respecting single/double quotes."""
    out: list[str] = []
    quote: str | None = None
    for ch in line:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _parse_scalar(text: str) -> object:
    text = text.strip()
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {text!r}") from None


def _parse_list(text: str) -> list[object]:
    inner = text.strip()[1:-1].strip()
    if not inner:
        return []
    items: list[object] = []
    for piece in _split_top_level(inner):
        piece = piece.strip()
        if piece:
            items.append(_parse_scalar(piece))
    return items


def _split_top_level(text: str) -> list[str]:
    parts: list[str] = []
    buf: list[str] = []
    quote: str | None = None
    for ch in text:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            buf.append(ch)
        elif ch == ",":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if buf:
        parts.append("".join(buf))
    return parts


def parse_toml_subset(text: str) -> dict[str, dict[str, object]]:
    """Parse the TOML subset the analyzer's config section needs.

    Tables, string/bool/int/float scalars, and (possibly multiline)
    string lists.  This exists only as the Python 3.10 fallback —
    :func:`load_config` prefers :mod:`tomllib` — and it raises on
    anything outside the subset rather than guessing.
    """
    tables: dict[str, dict[str, object]] = {}
    current: dict[str, object] = tables.setdefault("", {})
    pending_key: str | None = None
    pending_buf = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if pending_key is not None:
            pending_buf += " " + line
            if _balanced(pending_buf):
                current[pending_key] = _parse_list(pending_buf)
                pending_key = None
                pending_buf = ""
            continue
        if not line:
            continue
        table_match = _TABLE_RE.match(line)
        if table_match is not None:
            current = tables.setdefault(table_match.group("name").strip(), {})
            continue
        key_match = _KEY_RE.match(line)
        if key_match is None:
            raise ValueError(f"unsupported TOML line: {raw_line!r}")
        key = key_match.group("key").strip().strip("\"'")
        value = key_match.group("value").strip()
        if value.startswith("["):
            if _balanced(value):
                current[key] = _parse_list(value)
            else:
                pending_key = key
                pending_buf = value
        else:
            current[key] = _parse_scalar(value)
    if pending_key is not None:
        raise ValueError(f"unterminated list for key {pending_key!r}")
    return tables


def _balanced(text: str) -> bool:
    depth = 0
    quote: str | None = None
    for ch in text:
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth == 0


def _read_pyproject(path: str) -> dict[str, object]:
    try:
        import tomllib
    except ImportError:  # Python 3.10
        with open(path, encoding="utf-8") as handle:
            tables = parse_toml_subset(handle.read())
        section = tables.get("tool.repro-analysis", {})
        return dict(section)
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    tool = data.get("tool", {})
    section = tool.get("repro-analysis", {})
    if not isinstance(section, dict):
        raise ValueError("[tool.repro-analysis] must be a table")
    return section


def load_config(root: str = ".") -> AnalysisConfig:
    """Load the config for a repo root (defaults when no section/file)."""
    import os

    path = os.path.join(root, "pyproject.toml")
    if not os.path.exists(path):
        return AnalysisConfig()
    return AnalysisConfig.from_mapping(_read_pyproject(path))

"""Visitor core: findings, parsed modules, imports, scopes, suppressions.

Everything a checker needs that :mod:`ast` does not provide directly:

* **parent links** — ``ctx.parent(node)`` for upward walks;
* **import resolution** — ``ctx.resolve(node)`` maps an expression like
  ``np.random.default_rng`` back to its fully qualified name
  (``numpy.random.default_rng``) through the module's import aliases;
* **scope attribution** — ``ctx.scope_of(node)`` names the enclosing
  function/class chain (``PoolRuntime.finish``), so findings read like
  tracebacks and allowlists can target one function;
* **inline suppression** — a trailing ``# repro-analysis: ignore[rule]``
  comment waives that line for the named rules (bare ``ignore`` waives
  all of them), mirroring ``noqa`` so waivers are greppable.

The module is self-contained and stdlib-only by design: the analysis
package gates CI, so it must import in every environment the test matrix
covers with nothing beyond the interpreter.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "parse_module",
    "module_name_for",
]

#: ``# repro-analysis: ignore`` or ``# repro-analysis: ignore[a, b]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-analysis:\s*ignore(?:\[(?P<rules>[\w\-, ]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: [rule] message`` — editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for ``--format=json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative file path.

    ``src/repro/fleet/engine.py`` → ``repro.fleet.engine`` (the ``src``
    layout root is stripped); ``benchmarks/perf/run_bench.py`` →
    ``benchmarks.perf.run_bench``.  Nothing imports these names — they
    exist so scope patterns in the config read like import paths.
    """
    norm = path.replace("\\", "/").strip("/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number → waived rule names (``None`` = every rule).

    Tokenized rather than regexed over raw lines so a suppression-shaped
    string literal cannot silence a real finding.
    """
    table: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[tok.start[0]] = None
            else:
                names = frozenset(
                    r.strip() for r in rules.split(",") if r.strip()
                )
                table[tok.start[0]] = names or None
    except tokenize.TokenError:
        # A file that does not tokenize will not parse either; the
        # driver reports the SyntaxError, so there is nothing to do here.
        pass
    return table


@dataclass
class ModuleContext:
    """One parsed module plus the derived maps checkers consume."""

    path: str
    module: str
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local alias → fully qualified name (``np`` → ``numpy``,
    #: ``perf_counter`` → ``time.perf_counter``).
    imports: dict[str, str] = field(default_factory=dict)
    suppressed: dict[int, frozenset[str] | None] = field(default_factory=dict)

    # --- construction ----------------------------------------------------
    @classmethod
    def build(cls, path: str, source: str, module: str | None = None) -> "ModuleContext":
        """Parse ``source`` and derive every map in one pass."""
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            module=module if module is not None else module_name_for(path),
            source=source,
            tree=tree,
            suppressed=_suppressions(source),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx.parents[child] = parent
        ctx._index_imports()
        return ctx

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never name stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    # --- queries ---------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent, or ``None`` for the module node."""
        return self.parents.get(node)

    def resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name for a Name/Attribute chain.

        Returns ``None`` when the base name is not an import alias — a
        local variable, parameter, or anything else the table cannot
        vouch for.  That makes the checkers conservative: they only flag
        what provably refers to the forbidden module.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing def/class chain, ``"<module>"`` at top level."""
        names: list[str] = []
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """Nearest enclosing class definition, if any."""
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parents.get(current)
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a trailing comment waives ``rule`` on ``line``."""
        if line not in self.suppressed:
            return False
        rules = self.suppressed[line]
        return rules is None or rule in rules

    def walk(self) -> Iterator[ast.AST]:
        """All nodes, document order (thin alias for ``ast.walk``)."""
        return ast.walk(self.tree)


def parse_module(
    path: str, source: str | None = None, root: str | None = None
) -> ModuleContext:
    """Read (if needed) and parse one file into a :class:`ModuleContext`.

    ``root`` anchors the dotted module name: the path is made relative
    to it first, so scope patterns match identically whether the
    analyzer is invoked with relative or absolute paths.
    """
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    name_path = path
    if root is not None:
        rel = os.path.relpath(path, root)
        if not rel.startswith(".."):
            name_path = rel
    return ModuleContext.build(path, source, module=module_name_for(name_path))

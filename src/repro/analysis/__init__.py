"""Static enforcement of the repo's determinism and resource contracts.

Every load-bearing guarantee in this codebase — bit-identical
fleet-of-one parity, seed-derived fault draws, the two-class heap-key
total order, the closed ``EVENT_KINDS`` trace taxonomy, the O(1)-memory
streaming contract — is otherwise enforced only *dynamically*, by parity
and property suites that catch a violation hours after it is written and
only on the inputs they happen to exercise.  This package encodes those
contracts as AST checks that fail CI at the offending line instead.

The framework is deliberately dependency-free: :mod:`ast` plus a small
visitor core (:mod:`repro.analysis.core`) with parent links, scope
tracking, and import-alias resolution.  Checkers live in
:mod:`repro.analysis.checkers`; configuration (scopes and allowlists)
comes from ``[tool.repro-analysis]`` in ``pyproject.toml``
(:mod:`repro.analysis.config`).

Run it as a CLI (nonzero exit on findings)::

    python -m repro.analysis src benchmarks examples
    python -m repro.analysis src --format=json

or programmatically::

    from repro.analysis import run_analysis
    findings = run_analysis(["src"], root=".")

Suppress a single finding inline with a trailing
``# repro-analysis: ignore[rule-name]`` comment — reserved, like any
allowlist entry, for sites where the contract genuinely does not apply
(e.g. a measured-overhead wall-clock read).
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.core import Finding, ModuleContext, parse_module
from repro.analysis.driver import collect_files, run_analysis
from repro.analysis.checkers import ALL_CHECKERS

__all__ = [
    "ALL_CHECKERS",
    "AnalysisConfig",
    "Finding",
    "ModuleContext",
    "collect_files",
    "load_config",
    "parse_module",
    "run_analysis",
]

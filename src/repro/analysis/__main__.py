"""CLI: ``python -m repro.analysis [paths] [--format=text|json]``.

Exit status: 0 clean, 1 findings, 2 bad invocation/config.  This module
is the one place in ``src/`` allowed to print — reporting to stdout is
its whole job (see the ruff per-file-ignores note in pyproject.toml).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.config import load_config
from repro.analysis.driver import run_analysis

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism-and-contracts linter for this repo "
            "(see README: 'Determinism contract & static analysis')"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root holding pyproject.toml and the taxonomy module",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings as editor-clickable lines (text) or a JSON report",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.name}: {checker.description}")
        return 0

    try:
        config = load_config(args.root)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        known = {checker.name for checker in ALL_CHECKERS}
        names = tuple(s.strip() for s in args.select.split(",") if s.strip())
        unknown = [name for name in names if name not in known]
        if unknown:
            print(
                f"error: unknown rule(s) {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        config = replace(config, select=names)

    findings = run_analysis(args.paths, root=args.root, config=config)

    if args.format == "json":
        report = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "rules": sorted({f.rule for f in findings}),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            f"{len(findings)} finding(s)" if findings else "clean: no findings"
        )
        print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())

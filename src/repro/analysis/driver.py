"""Run every selected checker over a file set and collect findings."""

from __future__ import annotations

import os

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.core import Finding, parse_module

__all__ = ["collect_files", "run_analysis"]

#: Directory basenames never worth parsing.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "output"})


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[str] = set()
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    out.append(full)
    return out


def run_analysis(
    paths: list[str],
    root: str = ".",
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Analyze ``paths`` and return findings sorted by location.

    A file that fails to parse becomes a ``parse-error`` finding rather
    than an exception: the gate must report the broken file's name, not
    die on it.
    """
    cfg = config if config is not None else load_config(root)
    selected = [
        checker_cls(cfg, root)
        for checker_cls in ALL_CHECKERS
        if not cfg.select or checker_cls.name in cfg.select
    ]
    findings: list[Finding] = []
    for path in collect_files(paths):
        try:
            ctx = parse_module(path, root=root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for checker in selected:
            findings.extend(checker.check_module(ctx))
    for checker in selected:
        findings.extend(checker.finalize())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings

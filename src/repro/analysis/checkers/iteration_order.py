"""``set-iteration``: no order-dependent arithmetic over unordered sets.

CPython iterates a set in hash-table order, which for strings varies
with ``PYTHONHASHSEED`` and for ints varies with insertion history.
Inside the engine/fleet core, iteration feeds float accumulation and
event scheduling, where order *is* the result: summing the same floats
in two orders differs in the last ulp, and pushing events in two orders
changes heap tie-breaking.  The parity suites only catch this when the
divergence moves a gated number on the inputs they sample — so the rule
bans the pattern outright in the configured modules: no ``for`` loop or
comprehension may draw directly from a set literal, set comprehension,
or ``set()``/``frozenset()`` call.  Normalize first: ``sorted(...)`` is
the documented fix and passes the check.

Membership tests, length checks, and set algebra are all fine — only
*iteration* leaks the unordered order.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.config import module_matches
from repro.analysis.core import Finding, ModuleContext

__all__ = ["SetIterationChecker"]

_SET_CALLS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST) -> bool:
    """Whether the expression syntactically produces a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CALLS
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (| & - ^) over set operands is still a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationChecker(Checker):
    name = "set-iteration"
    description = (
        "no iteration over set literals/comprehensions/set() calls in the "
        "engine/fleet core; sort first (sorted(...))"
    )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        if not module_matches(ctx.module, self.config.set_iteration_modules):
            return []
        findings: list[Finding] = []
        for node in ctx.walk():
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if not _is_set_expr(candidate):
                    continue
                item = self.finding(
                    ctx,
                    candidate,
                    "iteration over an unordered set in the simulation "
                    f"core ({ctx.scope_of(node)}): hash order feeds the "
                    "result here; iterate sorted(...) (or an ordered "
                    "container) instead",
                )
                if item is not None:
                    findings.append(item)
        return findings

"""``wall-clock``: the simulation core may only read the event-loop clock.

Bit-identical replay means every number a simulation produces must be a
function of its inputs.  A ``time.time()`` / ``perf_counter()`` /
``datetime.now()`` read inside the engine or fleet smuggles the host's
wall clock into that function — results then vary with machine load, and
the parity suites can only catch it if the variance happens to move a
gated number.  The documented exceptions are the *measured-overhead*
modules (prediction-service timings, export runtime, trainer fit times),
which exist to measure real elapsed time and say so in their docstrings;
they are allowlisted by module in
:attr:`~repro.analysis.config.AnalysisConfig.wall_clock_allow_modules`.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.config import module_matches
from repro.analysis.core import Finding, ModuleContext

__all__ = ["WallClockChecker"]

#: Fully qualified callables that read the host clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockChecker(Checker):
    name = "wall-clock"
    description = (
        "no host-clock reads (time.*, datetime.now) inside the simulation "
        "core; measured-overhead modules are allowlisted"
    )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        cfg = self.config
        if not module_matches(ctx.module, cfg.wall_clock_modules):
            return []
        if module_matches(ctx.module, cfg.wall_clock_allow_modules):
            return []
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve(node.func)
            if qualname in _WALL_CLOCK_CALLS:
                item = self.finding(
                    ctx,
                    node,
                    f"wall-clock read {qualname}() in simulation module "
                    f"{ctx.module} ({ctx.scope_of(node)}): results must be "
                    "a function of the event-loop clock only; move the "
                    "measurement to an allowlisted measured-overhead "
                    "module or extend wall_clock_allow_modules",
                )
                if item is not None:
                    findings.append(item)
        return findings

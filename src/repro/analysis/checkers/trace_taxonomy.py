"""``trace-taxonomy``: the closed ``EVENT_KINDS`` set, enforced both ways.

The trace vocabulary is a *closed* taxonomy: every event an engine emits
uses a kind declared in ``repro.obs.trace.EVENT_KINDS``, and every
declared kind is actually emitted somewhere.  The first direction keeps
consumers (``TraceAnalyzer``, replay tooling) total over real logs; the
second keeps the taxonomy honest — a kind nothing emits is documentation
drift wearing a frozenset.

Emit sites come in the three shapes the engines actually use, all
handled here:

* typed construction — ``TraceEvent(now, "kind", ...)`` (positional or
  ``kind=`` keyword), including the ``tuple.__new__(TraceEvent, (...))``
  fast path;
* raw hot-path tuples — ``tracer.emit((now, "kind", ...))`` /
  ``trace_emit((...))``, where the kind is element 1 of a tuple literal
  passed to an ``*emit`` callable;
* emit helpers — ``self._trace(now, "kind", ...)`` forwarding functions
  named in :attr:`~repro.analysis.config.AnalysisConfig.emit_helpers`
  (kind is always their second argument).

Constructions whose kind is a variable are flagged as unverifiable —
except inside the declared emit helpers themselves and inside the
taxonomy module (whose deserializers rebuild events from parsed data by
construction).
"""

from __future__ import annotations

import ast
import os

from repro.analysis.checkers.base import Checker
from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.core import Finding, ModuleContext, module_name_for

__all__ = ["TraceTaxonomyChecker", "emit_site_census", "load_taxonomy"]


def load_taxonomy(path: str) -> tuple[dict[str, int], dict[str, int]]:
    """Extract ``EVENT_KINDS`` and ``RAW_DATA_FIELDS`` declarations.

    Returns ``(kinds, raw_kinds)``, each mapping a kind name to the line
    it is declared on — purely static, so the analyzer never imports the
    code it is judging.
    """
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    kinds: dict[str, int] = {}
    raw_kinds: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "EVENT_KINDS":
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "frozenset"
                and value.args
            ):
                value = value.args[0]
            if isinstance(value, ast.Set):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        kinds[elt.value] = elt.lineno
        elif target.id == "RAW_DATA_FIELDS" and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    raw_kinds[key.value] = key.lineno
    return kinds, raw_kinds


def _callable_name(func: ast.AST) -> str | None:
    """Terminal name of the called expression (``a.b.emit`` → ``emit``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class TraceTaxonomyChecker(Checker):
    name = "trace-taxonomy"
    description = (
        "every trace emission uses a declared EVENT_KINDS kind, and every "
        "declared kind has at least one emit site"
    )

    def __init__(self, config: AnalysisConfig, root: str = ".") -> None:
        super().__init__(config, root)
        taxonomy_path = os.path.join(root, config.taxonomy_module)
        self.taxonomy_path = taxonomy_path
        if os.path.exists(taxonomy_path):
            self.kinds, self.raw_kinds = load_taxonomy(taxonomy_path)
        else:
            # No taxonomy in reach (e.g. analyzing a lone script): the
            # rule has nothing to enforce against.
            self.kinds, self.raw_kinds = {}, {}
        self.taxonomy_module_name = module_name_for(config.taxonomy_module)
        #: kind → emit sites seen across the run, for finalize() and
        #: for the taxonomy-agreement test's census.
        self.census: dict[str, list[tuple[str, int]]] = {}
        self.saw_census_module = False
        self.saw_taxonomy_module = False

    # --- per-module pass --------------------------------------------------
    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        if not self.kinds:
            return []
        if not module_matches(ctx.module, self.config.taxonomy_census_modules):
            return []
        self.saw_census_module = True
        if ctx.module == self.taxonomy_module_name:
            self.saw_taxonomy_module = True
            return []  # declarations + deserializers, not emit sites
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            for kind_node in self._kind_exprs(node):
                finding = self._record(ctx, node, kind_node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _kind_exprs(self, node: ast.Call) -> list[ast.AST]:
        """The expressions holding this call's event kind, if any."""
        name = _callable_name(node.func)
        out: list[ast.AST] = []
        # Typed construction: TraceEvent(now, kind, ...) / kind=...
        if name == "TraceEvent":
            if len(node.args) >= 2:
                out.append(node.args[1])
            else:
                for kw in node.keywords:
                    if kw.arg == "kind":
                        out.append(kw.value)
        # Fast path: tuple.__new__(TraceEvent, (now, kind, ...)).
        elif (
            name == "__new__"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "tuple"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "TraceEvent"
            and isinstance(node.args[1], ast.Tuple)
            and len(node.args[1].elts) >= 2
        ):
            out.append(node.args[1].elts[1])
        # Emit helper: self._trace(now, kind, ...).
        elif name in self.config.emit_helpers:
            if len(node.args) >= 2:
                out.append(node.args[1])
        # Raw hot-path tuple handed to an *emit callable.
        elif (
            name is not None
            and name.endswith("emit")
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Tuple)
            and len(node.args[0].elts) >= 2
        ):
            out.append(node.args[0].elts[1])
        return out

    def _record(
        self, ctx: ModuleContext, call: ast.Call, kind_node: ast.AST
    ) -> Finding | None:
        if isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str):
            kind = kind_node.value
            self.census.setdefault(kind, []).append((ctx.path, call.lineno))
            if kind not in self.kinds:
                return self.finding(
                    ctx,
                    call,
                    f"trace emission with kind {kind!r} not in the closed "
                    "EVENT_KINDS taxonomy "
                    f"({self.config.taxonomy_module}); declare it there or "
                    "fix the emit site",
                )
            return None
        # Variable kind: fine inside the declared forwarding helpers
        # (their parameter *is* the kind), unverifiable anywhere else.
        scope = ctx.scope_of(call).split(".")[-1]
        if scope in self.config.emit_helpers:
            return None
        return self.finding(
            ctx,
            call,
            "trace emission whose kind is not a string literal — the "
            "closed-taxonomy rule cannot verify it; emit a literal kind "
            "or route through a declared emit helper",
        )

    # --- cross-module pass ------------------------------------------------
    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for kind, line in sorted(self.raw_kinds.items()):
            if kind not in self.kinds:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=self.taxonomy_path,
                        line=line,
                        col=0,
                        message=(
                            f"RAW_DATA_FIELDS declares hot-path kind "
                            f"{kind!r} that EVENT_KINDS does not contain"
                        ),
                    )
                )
        # Dead kinds are only judgeable when the run actually covered
        # the emitting library (someone linting a lone benchmark script
        # should not be told every kind is dead).
        if not (self.saw_census_module and self.saw_taxonomy_module):
            return findings
        for kind, line in sorted(self.kinds.items()):
            if kind not in self.census:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=self.taxonomy_path,
                        line=line,
                        col=0,
                        message=(
                            f"dead trace kind {kind!r}: declared in "
                            "EVENT_KINDS but no emit site in the analyzed "
                            "tree produces it"
                        ),
                    )
                )
        return findings


def emit_site_census(
    paths: list[str], root: str = ".", config: AnalysisConfig | None = None
) -> dict[str, list[tuple[str, int]]]:
    """Static emit-site census over ``paths`` — kind → [(path, line)].

    The taxonomy-agreement test uses this to assert the static view,
    ``EVENT_KINDS``, and the runtime serialization all agree.
    """
    from repro.analysis.config import load_config
    from repro.analysis.driver import collect_files
    from repro.analysis.core import parse_module

    cfg = config if config is not None else load_config(root)
    checker = TraceTaxonomyChecker(cfg, root)
    for path in collect_files(paths):
        checker.check_module(parse_module(path, root=root))
    return checker.census

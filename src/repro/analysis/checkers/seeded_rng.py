"""``unseeded-rng``: randomness flows from explicit seeds, never globals.

The fault layer's determinism contract derives every draw from
``(seed, stream position, entity id)`` via ``numpy.random.SeedSequence``
— never from event interleaving or interpreter state.  A bare
``random.random()`` or legacy ``np.random.normal()`` call breaks that in
the worst possible way: the run still *looks* deterministic under one
interleaving and silently diverges under another (xdist, multiprocess
shards).  The rule:

* stdlib ``random`` module-level draws are forbidden (``random.Random``
  instances constructed *with* a seed are fine);
* numpy's legacy global-state API (``np.random.<draw>``,
  ``np.random.seed``) is forbidden — only the ``Generator`` API entry
  points (``default_rng``, ``SeedSequence``, type references) are legal;
* ``default_rng()`` / ``random.Random()`` *without* a seed argument are
  forbidden — an unseeded generator is OS entropy by another name.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.config import module_matches
from repro.analysis.core import Finding, ModuleContext

__all__ = ["SeededRngChecker"]

#: numpy.random names that are *not* global-state draws: constructors,
#: types, and seeding machinery of the Generator API.
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # referenced in type checks; calls are caught below
    }
)

#: Constructors that take the seed as their first argument; calling them
#: with no arguments asks the OS for entropy.
_SEED_FIRST_ARG = frozenset({"numpy.random.default_rng", "random.Random"})


class SeededRngChecker(Checker):
    name = "unseeded-rng"
    description = (
        "no global-state RNG (random.*, legacy np.random.*) and no "
        "unseeded default_rng()/Random() in library code"
    )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        if not module_matches(ctx.module, self.config.rng_modules):
            return []
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve(node.func)
            if qualname is None:
                continue
            message = self._classify(qualname, node)
            if message is None:
                continue
            item = self.finding(ctx, node, message)
            if item is not None:
                findings.append(item)
        return findings

    def _classify(self, qualname: str, node: ast.Call) -> str | None:
        parts = qualname.split(".")
        if qualname in _SEED_FIRST_ARG:
            if not node.args and not node.keywords:
                return (
                    f"{qualname}() without a seed draws OS entropy; pass an "
                    "explicit seed or SeedSequence derived from the run's "
                    "(seed, stream position, entity id) rule"
                )
            return None
        if parts[:2] == ["numpy", "random"]:
            if len(parts) == 2:
                return None  # bare module reference (e.g. a type annotation)
            if parts[2] in _NP_RANDOM_OK:
                return None
            return (
                f"legacy global-state numpy RNG {qualname}(); use a "
                "Generator from numpy.random.default_rng(seed) threaded in "
                "as a parameter"
            )
        if parts[0] == "random" and len(parts) >= 2:
            if parts[1] == "Random":
                return None  # seeded instances handled above
            return (
                f"stdlib global-state RNG {qualname}(); draws must flow "
                "from an explicit seeded generator parameter"
            )
        return None

"""``heap-key``: event heaps push the documented two-class key tuple.

The serve loops' total event order is ``(time, class-rank, counter)``:
class 0 is an arrival keyed by stream position, class 1 everything else
keyed by the push counter.  That tuple is *the* determinism boundary —
it is what makes same-instant ties break identically whether arrivals
enter the heap eagerly (record mode), lazily (streaming mode), or from
a multiprocess feed.  A ``heappush`` that pushes a raw float, or a tuple
whose second element is a float expression, reintroduces
interleaving-dependent tie order: two events at the same instant compare
by whatever payload happens to sit next, which can differ between
otherwise-identical runs (and raises ``TypeError`` on unorderable
payloads only when a tie actually happens — the worst kind of latent).

The rule, for every ``heapq.heappush`` in the configured modules: the
pushed key must be a tuple literal of at least three elements whose
second element is an integer class rank (then the third must be a
counter — ``next(...)`` or a named stream position) or directly a
``next(...)`` insertion counter (the single-query scheduler's
degenerate one-class form).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.config import module_matches
from repro.analysis.core import Finding, ModuleContext

__all__ = ["HeapKeyChecker"]


def _is_next_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "next"
    )


def _is_int_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


class HeapKeyChecker(Checker):
    name = "heap-key"
    description = (
        "heapq.heappush in the serve loops must push the two-class "
        "(time, class-rank, counter, ...) key tuple"
    )

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        if not module_matches(ctx.module, self.config.heap_key_modules):
            return []
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve(node.func)
            if qualname != "heapq.heappush":
                continue
            message = self._violation(node)
            if message is None:
                continue
            item = self.finding(ctx, node, message)
            if item is not None:
                findings.append(item)
        return findings

    def _violation(self, node: ast.Call) -> str | None:
        if len(node.args) != 2:
            return None  # malformed call; leave it to the interpreter
        key = node.args[1]
        if not isinstance(key, ast.Tuple):
            return (
                "heappush key must be the documented (time, class-rank, "
                "counter, ...) tuple literal, not a bare expression — "
                "same-instant ties would compare by payload"
            )
        elts = key.elts
        if len(elts) < 2:
            return (
                "heappush key tuple needs a deterministic tie-breaker "
                "after the time element"
            )
        second = elts[1]
        if _is_next_call(second):
            return None  # (time, next(counter), ...): single-class form
        if _is_int_literal(second):
            if len(elts) < 3:
                return (
                    "two-class heap key is missing its counter: after the "
                    "class rank the third element must be next(counter) "
                    "or the stream position"
                )
            third = elts[2]
            if _is_next_call(third) or isinstance(third, ast.Name):
                return None
            return (
                "two-class heap key's counter element must be "
                "next(counter) or a named stream position, not "
                f"{ast.dump(third)[:40]}… — anything else makes tie "
                "order interleaving-dependent"
            )
        return (
            "heap key's second element must be an integer class rank or "
            "next(counter); a float/raw expression makes same-instant "
            "tie order depend on event interleaving"
        )

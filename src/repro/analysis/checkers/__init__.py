"""Checker registry: one class per contract, instantiated per run.

A checker sees every analyzed module once (:meth:`Checker.check_module`)
and may report cross-module findings afterwards
(:meth:`Checker.finalize` — how dead trace kinds are detected).
Checkers are stateful within a run and never reused across runs.
"""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.heap_keys import HeapKeyChecker
from repro.analysis.checkers.iteration_order import SetIterationChecker
from repro.analysis.checkers.seeded_rng import SeededRngChecker
from repro.analysis.checkers.streaming_retention import StreamingRetentionChecker
from repro.analysis.checkers.trace_taxonomy import TraceTaxonomyChecker
from repro.analysis.checkers.wall_clock import WallClockChecker

#: Registration order is report order for same-line findings.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    WallClockChecker,
    SeededRngChecker,
    HeapKeyChecker,
    TraceTaxonomyChecker,
    SetIterationChecker,
    StreamingRetentionChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "HeapKeyChecker",
    "SeededRngChecker",
    "SetIterationChecker",
    "StreamingRetentionChecker",
    "TraceTaxonomyChecker",
    "WallClockChecker",
]

"""``unbounded-growth``: streaming accumulators must stay O(1) per pool.

The streaming serve's contract is that memory is independent of stream
length: per-query state is freed at finish and everything that survives
folds into bounded accumulators (exact sums, ``QuantileSketch`` bucket
histograms, ``SkylineTracker`` scalars).  The contract dies one innocent
line at a time — an ``append`` to a debug list inside ``observe()`` is
invisible until the million-query bench trips the RSS ceiling hours
later.  This rule guards the fold path itself: inside the configured
streaming accumulator classes
(:attr:`~repro.analysis.config.AnalysisConfig.streaming_classes`), any
container-growth call reachable from ``self`` — ``append``, ``extend``,
``insert``, ``appendleft``, ``extendleft``, ``add`` — and any
``self.x += [...]`` is a finding, unless the grown attribute is declared
bounded in
:attr:`~repro.analysis.config.AnalysisConfig.streaming_bounded_attrs`
(the sketch attributes, whose ``add`` is a histogram fold, not growth).

Growth on locals is fine (temporaries die with the frame); only state
that survives the call can leak.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.core import Finding, ModuleContext

__all__ = ["StreamingRetentionChecker"]

_GROWTH_METHODS = frozenset(
    {"append", "extend", "insert", "appendleft", "extendleft", "add"}
)


def _self_root_attr(node: ast.AST) -> str | None:
    """First attribute name on a ``self.…`` receiver chain, else None.

    Handles nesting through attributes, subscripts, and calls:
    ``self._counts.setdefault(k, []).append`` roots at ``_counts``.
    """
    last_attr: str | None = None
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            last_attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            return last_attr if current.id == "self" else None
        else:
            return None


def _grows_a_list(value: ast.AST) -> bool:
    """Whether an ``+=`` right-hand side syntactically appends elements."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "list"
    )


class StreamingRetentionChecker(Checker):
    name = "unbounded-growth"
    description = (
        "no unbounded per-query container growth inside the streaming "
        "accumulator classes (the O(1)-memory serve contract)"
    )

    def _scoped_classes(self, module: str) -> frozenset[str]:
        names = set()
        for spec in self.config.streaming_classes:
            mod, _, cls = spec.partition(":")
            if cls and mod == module:
                names.add(cls)
        return frozenset(names)

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        classes = self._scoped_classes(ctx.module)
        if not classes:
            return []
        bounded = frozenset(self.config.streaming_bounded_attrs)
        findings: list[Finding] = []
        for node in ctx.walk():
            attr: str | None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_METHODS
            ):
                attr = _self_root_attr(node.func.value)
                verb = f".{node.func.attr}()"
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                if not _grows_a_list(node.value):
                    continue
                attr = _self_root_attr(node.target)
                verb = "+= [...]"
            else:
                continue
            if attr is None or attr in bounded:
                continue
            enclosing = ctx.enclosing_class(node)
            if enclosing is None or enclosing.name not in classes:
                continue
            item = self.finding(
                ctx,
                node,
                f"container growth {verb} on self.{attr} inside streaming "
                f"accumulator {enclosing.name}: per-query state must fold "
                "into bounded accumulators (O(1)-memory contract); if "
                f"self.{attr} is provably bounded, declare it in "
                "streaming_bounded_attrs",
            )
            if item is not None:
                findings.append(item)
        return findings

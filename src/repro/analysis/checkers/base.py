"""The checker contract shared by every rule."""

from __future__ import annotations

import ast

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import Finding, ModuleContext

__all__ = ["Checker"]


class Checker:
    """One contract, checked over a run's modules.

    Subclasses set :attr:`name` (the rule id used in findings, config
    ``select``, and ``ignore[...]`` comments) and :attr:`description`
    (one line, shown by ``--list-rules``), and implement
    :meth:`check_module`; cross-module rules also override
    :meth:`finalize`.
    """

    name: str = ""
    description: str = ""

    def __init__(self, config: AnalysisConfig, root: str = ".") -> None:
        self.config = config
        self.root = root

    def check_module(self, ctx: ModuleContext) -> list[Finding]:
        """Findings local to one module (called once per module)."""
        raise NotImplementedError

    def finalize(self) -> list[Finding]:
        """Cross-module findings, after every module has been seen."""
        return []

    # --- shared helpers ---------------------------------------------------
    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding | None:
        """Build a finding unless an inline comment waives it."""
        line = getattr(node, "lineno", 1)
        if ctx.is_suppressed(self.name, line):
            return None
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
        )

"""Sparklens scheduler replay: estimate t(n) from one finished run.

The estimator implements the model the paper attributes to Sparklens
(Section 3.2): for every hypothetical executor count ``n``, each stage
takes at least its *critical* (longest) task, and at most the time to push
its total observed work through ``n × ec`` slots; stage completion times
combine along the dependency DAG, and the driver time is added serially:

    stage_time(n)  = max(critical_task, total_work / (n · ec))
    finish(stage)  = max over deps finish + stage_time(n)
    t_est(n)       = driver + finish(final stage)

Properties (asserted in tests):

- monotone non-increasing in ``n``;
- saturates at ``driver + critical-path of longest tasks``;
- exact at ``n → ∞`` wave-free limit;
- *blind to input-size changes*: estimates are derived entirely from the
  logged durations, so a log from SF=10 cannot anticipate SF=100 behaviour
  (the paper's Section 5.5 observation).
"""

from __future__ import annotations

import numpy as np

from repro.sparklens.log import ExecutionLog

__all__ = ["SparklensEstimator"]


class SparklensEstimator:
    """Post-hoc t(n) estimator over a single run's execution log.

    Args:
        log: the finished run's execution log.

    The estimator is deterministic and cheap: one pass over the stage DAG
    per estimate.
    """

    def __init__(self, log: ExecutionLog) -> None:
        self.log = log

    def estimate(self, n_executors: int) -> float:
        """Estimated run time (seconds) with ``n_executors`` executors."""
        if n_executors < 1:
            raise ValueError("executor count must be >= 1")
        slots = n_executors * self.log.cores_per_executor
        finish: dict[int, float] = {}
        for stage in self.log.stages:
            stage_time = max(
                stage.critical_task, stage.total_work / slots
            )
            start = max(
                (finish[d] for d in stage.dependencies), default=0.0
            )
            finish[stage.stage_id] = start + stage_time
        return self.log.driver_seconds + max(finish.values())

    def estimate_curve(self, n_values: np.ndarray | list[int]) -> np.ndarray:
        """Vector of estimates over a grid of executor counts."""
        return np.array([self.estimate(int(n)) for n in n_values])

    def saturation_time(self) -> float:
        """Estimate at infinite parallelism (critical tasks only)."""
        finish: dict[int, float] = {}
        for stage in self.log.stages:
            start = max(
                (finish[d] for d in stage.dependencies), default=0.0
            )
            finish[stage.stage_id] = start + stage.critical_task
        return self.log.driver_seconds + max(finish.values())

    def recommended_executors(self, tolerance: float = 0.02) -> int:
        """Smallest n whose estimate is within ``tolerance`` of saturation.

        This mirrors Sparklens' headline recommendation: the executor count
        past which adding more buys (almost) nothing.
        """
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        floor = self.saturation_time()
        n = 1
        while self.estimate(n) > floor * (1.0 + tolerance):
            n += 1
        return n

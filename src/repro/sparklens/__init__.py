"""Sparklens-like post-hoc run-time estimator.

Qubole Sparklens analyzes the executor logs of a *finished* Spark
application and estimates what its run time would have been with other
executor counts, by replaying the scheduler: it determines the critical
path and distributes the remaining tasks over the hypothetical executor
fleet (paper Section 3.2).  The paper uses these estimates — obtained from
a single run at ``n = 16`` — to augment its training data.

This subpackage reproduces that tool against the engine simulator's
execution logs.  Estimates are deterministic, monotone non-increasing in
``n``, and saturate once every stage is bounded by its longest task —
the exact properties the paper relies on (Section 3.1, reason 3).
"""

from repro.sparklens.log import ExecutionLog, StageLog
from repro.sparklens.simulator import SparklensEstimator

__all__ = ["ExecutionLog", "StageLog", "SparklensEstimator"]

"""Execution logs captured from finished runs.

An :class:`ExecutionLog` is what a real deployment would scrape from the
Spark event log: the per-stage task durations actually observed, the stage
dependency DAG, and the driver time.  Crucially it records durations *as
observed at the run's executor count* — a post-hoc analyzer cannot know how
durations would change under different memory pressure, which is exactly
the bias the paper measures in Sparklens estimates at small ``n``
(Section 5.2) and under changed input sizes (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["StageLog", "ExecutionLog"]


@dataclass
class StageLog:
    """Observed execution record of one stage.

    Attributes:
        stage_id: stage identifier within the query.
        dependencies: stage ids this stage waited for.
        task_durations: observed per-task wall-clock durations (seconds).
    """

    stage_id: int
    dependencies: list[int]
    task_durations: np.ndarray

    def __post_init__(self) -> None:
        self.task_durations = np.asarray(self.task_durations, dtype=float)
        if self.task_durations.size == 0:
            raise ValueError("a stage log must contain at least one task")
        if np.any(self.task_durations <= 0):
            raise ValueError("task durations must be positive")

    @property
    def total_work(self) -> float:
        return float(self.task_durations.sum())

    @property
    def critical_task(self) -> float:
        return float(self.task_durations.max())

    @property
    def num_tasks(self) -> int:
        return int(self.task_durations.size)


@dataclass
class ExecutionLog:
    """Complete post-execution record of one query run.

    Attributes:
        query_id: workload identifier.
        driver_seconds: serial driver time observed.
        stages: per-stage logs, topologically ordered by id.
        cores_per_executor: ``ec`` of the logged run.
        executors_used: peak executor count of the logged run.
    """

    query_id: str
    driver_seconds: float
    stages: list[StageLog] = field(default_factory=list)
    cores_per_executor: int = 4
    executors_used: int = 16

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("an execution log needs at least one stage")
        ids = {s.stage_id for s in self.stages}
        for stage in self.stages:
            for dep in stage.dependencies:
                if dep not in ids:
                    raise ValueError(f"unknown dependency {dep}")
                if dep >= stage.stage_id:
                    raise ValueError("stage ids must be topologically ordered")

    @property
    def total_work(self) -> float:
        """Total observed task-seconds across all stages."""
        return sum(stage.total_work for stage in self.stages)

"""repro: a reproduction of "Predictive Price-Performance Optimization for
Serverless Query Processing" (Sen, Roy, Jindal — EDBT 2023).

The package implements **AutoExecutor** — parametric price-performance
models (PPMs) that predict a query's run time as a function of its
computational resources, trained from compile-time plan features and used
to request near-optimal executor counts before execution — together with
every substrate the paper's evaluation needs:

- :mod:`repro.core` — the PPMs, parameter model, selection objectives,
  total-cores modeling, and the AutoExecutor optimizer rule;
- :mod:`repro.engine` — a Spark-like cluster/scheduler simulator;
- :mod:`repro.sparklens` — the post-hoc run-time estimator used for
  training-data augmentation;
- :mod:`repro.workloads` — a TPC-DS-like plan generator and a synthetic
  production trace;
- :mod:`repro.ml` — random forests, linear models, cross-validation, and
  permutation importance (the scikit-learn substitute);
- :mod:`repro.export` — a portable model format + runtime (the ONNX
  substitute);
- :mod:`repro.fleet` — a shared serverless pool serving a stream of
  concurrent queries: arrival processes, admission control over finite
  capacity, a multi-query fleet engine, and an online prediction service
  with a plan-signature cache;
- :mod:`repro.obs` — observability: structured tracing with a zero-cost
  off switch, streaming metric sketches, and a trace analyzer that
  rebuilds timelines, skylines, and Sparklens execution logs;
- :mod:`repro.experiments` — the harness behind the paper's figures.

Quickstart::

    from repro import AutoExecutor, Workload

    workload = Workload(scale_factor=100)
    system = AutoExecutor(family="power_law").train(workload)
    n = system.select_executors(workload.optimized_plan("q94"))
"""

from repro.core.autoexecutor import AutoExecutor, AutoExecutorRule
from repro.core.ppm import AmdahlPPM, PowerLawPPM
from repro.fleet.engine import FleetEngine
from repro.fleet.prediction import PredictionService
from repro.obs import (
    JsonlTracer,
    QuantileSketch,
    RingBufferTracer,
    TraceAnalyzer,
    TraceEvent,
)
from repro.workloads.generator import Workload

__version__ = "1.3.0"

__all__ = [
    "AutoExecutor",
    "AutoExecutorRule",
    "PowerLawPPM",
    "AmdahlPPM",
    "Workload",
    "FleetEngine",
    "PredictionService",
    "TraceEvent",
    "RingBufferTracer",
    "JsonlTracer",
    "TraceAnalyzer",
    "QuantileSketch",
    "__version__",
]

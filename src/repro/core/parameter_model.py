"""The parameter model ``g: query features → PPM parameters``.

This is the ML half of the paper's framework (Section 3.4): a regression
model trained with one row per query — features from Table 2, targets the
fitted PPM parameters — and scored *once* per query at optimization time.
The predicted parameters instantiate the PPM, and evaluating ``t(n)`` at
any number of candidate configurations is then just arithmetic.  (The
contrast with the non-parametric approach — one row and one model score
per configuration — is benchmarked in the ablation bench.)

The default estimator is the random forest the paper uses (100 trees,
default settings); any estimator with ``fit``/``predict`` works, mirroring
the paper's "any ML library" flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FEATURE_NAMES, QueryFeatures
from repro.core.ppm import AmdahlPPM, PowerLawPPM, PricePerfModel
from repro.ml.forest import RandomForestRegressor

__all__ = ["ParameterModel"]

_FAMILIES = {
    "power_law": PowerLawPPM,
    "amdahl": AmdahlPPM,
}

#: Scale-like parameters (run times / work volumes) span orders of
#: magnitude across queries; the estimator regresses them in log space so
#: that leaf averaging is multiplicative, not additive.  Shape parameters
#: (the power-law exponent ``a``) stay raw.
_LOG_PARAMS: dict[str, tuple[bool, ...]] = {
    "power_law": (False, True, True),  # (a, b, m)
    "amdahl": (True, True),  # (s, p)
}

_LOG_EPSILON = 1e-3


def _to_target_space(params: np.ndarray, log_mask: tuple[bool, ...]) -> np.ndarray:
    out = np.array(params, dtype=float, copy=True)
    for col, use_log in enumerate(log_mask):
        if use_log:
            out[:, col] = np.log(np.maximum(out[:, col], 0.0) + _LOG_EPSILON)
    return out


def _from_target_space(targets: np.ndarray, log_mask: tuple[bool, ...]) -> np.ndarray:
    out = np.array(targets, dtype=float, copy=True)
    for col, use_log in enumerate(log_mask):
        if use_log:
            out[..., col] = np.maximum(np.exp(out[..., col]) - _LOG_EPSILON, 0.0)
    return out


@dataclass
class ParameterModel:
    """A trained map from plan features to a PPM instance.

    Args:
        family: ``"power_law"`` (AE_PL) or ``"amdahl"`` (AE_AL).
        estimator: multi-output regressor; defaults to the paper's random
            forest (100 estimators).
        feature_names: feature subset to use, in order (defaults to the
            full Table 2 list; pass a subset for the Section 5.7 feature
            ablation).
    """

    family: str
    estimator: object | None = None
    feature_names: tuple[str, ...] = FEATURE_NAMES
    _fitted: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.family not in _FAMILIES:
            raise ValueError(
                f"unknown PPM family {self.family!r}; "
                f"expected one of {sorted(_FAMILIES)}"
            )
        if self.estimator is None:
            self.estimator = RandomForestRegressor(
                n_estimators=100, random_state=0
            )
        unknown = set(self.feature_names) - set(FEATURE_NAMES)
        if unknown:
            raise ValueError(f"unknown feature names: {sorted(unknown)}")

    @property
    def ppm_class(self) -> type[PricePerfModel]:
        return _FAMILIES[self.family]

    @property
    def param_names(self) -> tuple[str, ...]:
        return self.ppm_class.PARAM_NAMES

    def _project(self, features: np.ndarray) -> np.ndarray:
        """Select the configured feature columns from full feature rows."""
        if features.shape[1] == len(self.feature_names):
            return features
        if features.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"feature matrix has {features.shape[1]} columns; expected "
                f"{len(FEATURE_NAMES)} (full) or {len(self.feature_names)}"
            )
        cols = [FEATURE_NAMES.index(name) for name in self.feature_names]
        return features[:, cols]

    def fit(self, features: np.ndarray, params: np.ndarray) -> "ParameterModel":
        """Train on one row per query.

        Args:
            features: matrix ``(n_queries, n_features)`` (full Table 2
                vectors are projected onto the configured subset).
            params: matrix ``(n_queries, n_params)`` of fitted PPM
                parameters, ordered as :attr:`param_names`.
        """
        features = np.asarray(features, dtype=float)
        params = np.asarray(params, dtype=float)
        if params.ndim != 2 or params.shape[1] != len(self.param_names):
            raise ValueError(
                f"params must be (n, {len(self.param_names)}) for family "
                f"{self.family!r}"
            )
        if features.shape[0] != params.shape[0]:
            raise ValueError("features and params row counts differ")
        targets = _to_target_space(params, _LOG_PARAMS[self.family])
        self.estimator.fit(self._project(features), targets)
        self._fitted = True
        return self

    def predict_params(self, features: np.ndarray) -> np.ndarray:
        """Raw predicted parameter matrix for a batch of feature rows."""
        if not self._fitted:
            raise RuntimeError("this ParameterModel is not fitted yet")
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        targets = self.estimator.predict(self._project(features))
        out = _from_target_space(np.atleast_2d(targets), _LOG_PARAMS[self.family])
        return out[0] if single else out

    def predict_ppm(self, features: QueryFeatures | np.ndarray) -> PricePerfModel:
        """Score once and instantiate the predicted PPM for one query.

        Predicted parameters are clamped into the family's monotone-valid
        region by ``from_parameters`` (the paper's monotonicity constraint
        applied to ML outputs).
        """
        if isinstance(features, QueryFeatures):
            vector = features.values
        else:
            vector = np.asarray(features, dtype=float)
        params = self.predict_params(vector)
        return self.ppm_class.from_parameters(params)

    def predict_curve(
        self, features: QueryFeatures | np.ndarray, n_grid
    ) -> np.ndarray:
        """Convenience: predicted run-time curve over a candidate grid."""
        return self.predict_ppm(features).predict_curve(n_grid)

    def export_metadata(self) -> dict:
        """Metadata a portable-model scorer needs to reproduce this model's
        predictions exactly: the PPM family and the log-space target mask
        (the estimator predicts transformed targets; see ``_LOG_PARAMS``).
        """
        return {
            "family": self.family,
            "log_params": list(_LOG_PARAMS[self.family]),
            "feature_names": list(self.feature_names),
        }

"""Price-Performance Models (paper Section 3.1).

A PPM represents a query's run time as a monotone non-increasing function
of its computational resources ``n`` (executors, or total cores ``k``):

- **AE_PL** — power law with saturation (Equation 3):
  ``t(n) = max(b · n^a, m)`` with ``a ≤ 0``, ``b > 0``, ``m ≥ 0``.
- **AE_AL** — Amdahl's law (Equation 4): ``t(n) = s + p / n`` with a serial
  component ``s ≥ 0`` and a perfectly scalable component ``p ≥ 0``.

Both are fitted to (n, t) samples per query (Section 3.4): AE_PL by linear
regression in log-log space over the non-saturating region, AE_AL by linear
regression of ``t`` on ``1/n``.  Note: the paper's printed Equation 5 says
``log t = log b + n·log a``, which contradicts Equation 3; we implement the
power-law-consistent form ``log t = log b + a·log n`` (see DESIGN.md).

Monotonicity is a hard constraint (Section 3.1 gives four reasons); the
fitters clamp parameters into the monotone region and the classes validate
on construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.ml.linear import LinearRegression

__all__ = [
    "PricePerfModel",
    "PowerLawPPM",
    "AmdahlPPM",
    "fit_power_law",
    "fit_amdahl",
]


class PricePerfModel(ABC):
    """Abstract PPM: monotone non-increasing run-time curve ``t(n)``."""

    #: parameter names, in the order :meth:`parameters` returns them.
    PARAM_NAMES: tuple[str, ...] = ()

    @abstractmethod
    def predict(self, n: float) -> float:
        """Predicted run time (seconds) at resource level ``n``."""

    @abstractmethod
    def parameters(self) -> np.ndarray:
        """Parameter vector, ordered as :attr:`PARAM_NAMES`."""

    def predict_curve(self, n_values) -> np.ndarray:
        """Vectorized :meth:`predict` over a grid of resource levels."""
        return np.array([self.predict(float(n)) for n in np.asarray(n_values)])


@dataclass(frozen=True)
class PowerLawPPM(PricePerfModel):
    """AE_PL: ``t(n) = max(b · n^a, m)`` (paper Equation 3).

    Attributes:
        a: power-law exponent; must be ≤ 0 for monotonicity.
        b: scale (the time at ``n = 1`` in the unsaturated regime); > 0.
        m: saturation floor — the query's minimum achievable run time.
    """

    a: float
    b: float
    m: float

    PARAM_NAMES = ("a", "b", "m")

    def __post_init__(self) -> None:
        if self.a > 0:
            raise ValueError(
                f"monotonicity requires a <= 0 (got a={self.a!r}); "
                "clamp predicted parameters before constructing the PPM"
            )
        if self.b <= 0:
            raise ValueError("b must be positive")
        if self.m < 0:
            raise ValueError("m must be non-negative")

    def predict(self, n: float) -> float:
        if n < 1:
            raise ValueError("resource level must be >= 1")
        return float(max(self.b * n**self.a, self.m))

    def parameters(self) -> np.ndarray:
        return np.array([self.a, self.b, self.m])

    def saturation_n(self) -> float:
        """Resource level where the power law meets the floor ``m``.

        Returns ``inf`` when the floor is never reached (``m = 0`` or the
        curve is flat below it already).
        """
        if self.m <= 0:
            return float("inf")
        if self.b <= self.m:
            return 1.0
        if self.a == 0:
            return float("inf")
        return float((self.m / self.b) ** (1.0 / self.a))

    @classmethod
    def from_parameters(cls, params: np.ndarray) -> "PowerLawPPM":
        """Build from a (possibly model-predicted) raw parameter vector.

        Predicted parameters are clamped into the valid monotone region:
        ``a ≤ 0``, ``b > 0``, ``m ≥ 0`` — the defensive step the paper's
        monotonicity constraint implies for ML-predicted values.
        """
        a, b, m = (float(p) for p in np.asarray(params, dtype=float))
        return cls(a=min(a, 0.0), b=max(b, 1e-9), m=max(m, 0.0))


@dataclass(frozen=True)
class AmdahlPPM(PricePerfModel):
    """AE_AL: ``t(n) = s + p / n`` (paper Equation 4).

    Attributes:
        s: serial (resource-invariant) latency component; ≥ 0.
        p: perfectly parallelizable work; ≥ 0.
    """

    s: float
    p: float

    PARAM_NAMES = ("s", "p")

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError("s must be non-negative")
        if self.p < 0:
            raise ValueError("p must be non-negative")

    def predict(self, n: float) -> float:
        if n < 1:
            raise ValueError("resource level must be >= 1")
        return float(self.s + self.p / n)

    def parameters(self) -> np.ndarray:
        return np.array([self.s, self.p])

    @classmethod
    def from_parameters(cls, params: np.ndarray) -> "AmdahlPPM":
        """Build from a raw parameter vector, clamping into validity."""
        s, p = (float(x) for x in np.asarray(params, dtype=float))
        return cls(s=max(s, 0.0), p=max(p, 0.0))


def fit_power_law(
    n_values,
    t_values,
    saturation_tolerance: float = 0.02,
) -> PowerLawPPM:
    """Fit AE_PL to (n, t) samples (paper Section 3.4).

    ``m`` is the minimum observed time.  The power-law part is fitted by
    linear regression of ``log t`` on ``log n`` over the *non-saturating
    region* — samples up to the first ``n`` whose time is within
    ``saturation_tolerance`` of the minimum (beyond it the curve is flat
    by construction and would bias the slope).

    Raises ``ValueError`` on fewer than two samples or non-positive times.
    """
    n = np.asarray(n_values, dtype=float)
    t = np.asarray(t_values, dtype=float)
    _validate_samples(n, t)

    order = np.argsort(n)
    n, t = n[order], t[order]
    m = float(t.min())

    # Non-saturating region: everything up to (and including) the first
    # sample that reaches the floor.
    at_floor = t <= m * (1.0 + saturation_tolerance)
    first_floor = int(np.argmax(at_floor)) if at_floor.any() else len(n) - 1
    region = slice(0, first_floor + 1)
    n_fit, t_fit = n[region], t[region]

    if len(n_fit) < 2 or np.all(n_fit == n_fit[0]):
        # Degenerate: flat curve (or a single unsaturated point) — the
        # query does not scale; represent it as a constant at the floor.
        return PowerLawPPM(a=0.0, b=max(m, 1e-9), m=m)

    reg = LinearRegression().fit(np.log(n_fit)[:, None], np.log(t_fit))
    a = float(np.clip(reg.coef_[0], -4.0, 0.0))
    b = float(np.exp(reg.intercept_))
    return PowerLawPPM(a=a, b=max(b, 1e-9), m=m)


def fit_amdahl(n_values, t_values) -> AmdahlPPM:
    """Fit AE_AL by regressing ``t`` on ``1/n`` (paper Section 3.4).

    Negative fitted components are clamped with a constrained refit: a
    negative serial term refits ``p`` through the origin; a negative
    parallel term degenerates to a constant curve.
    """
    n = np.asarray(n_values, dtype=float)
    t = np.asarray(t_values, dtype=float)
    _validate_samples(n, t)

    inv_n = 1.0 / n
    reg = LinearRegression().fit(inv_n[:, None], t)
    s = float(reg.intercept_)
    p = float(reg.coef_[0])
    if s < 0:
        # Refit through the origin: p = argmin Σ (t - p/n)^2.
        p = float(np.sum(t * inv_n) / np.sum(inv_n * inv_n))
        s = 0.0
    if p < 0:
        p = 0.0
        s = float(t.mean())
    return AmdahlPPM(s=max(s, 0.0), p=max(p, 0.0))


def _validate_samples(n: np.ndarray, t: np.ndarray) -> None:
    if n.shape != t.shape or n.ndim != 1:
        raise ValueError("n and t must be 1-D arrays of equal length")
    if len(n) < 2:
        raise ValueError("fitting needs at least two (n, t) samples")
    if np.any(n < 1):
        raise ValueError("resource levels must be >= 1")
    if np.any(t <= 0):
        raise ValueError("run times must be positive")

"""AutoExecutor: the end-to-end system (paper Section 4, Figure 6).

Two entry points:

- :class:`AutoExecutor` — the offline facade: train parameter models from a
  workload, predict curves, select configurations.
- :class:`AutoExecutorRule` — the optimizer extension implementing
  Figure 6's five steps inside the live query path:

  1. model load and cache (models are loaded into the optimizer process
     once and cached — the inference step is on the query's critical path);
  2. plan featurization;
  3. PPM parameter prediction (one model score per query);
  4. selection (default: the point "right before the performance flattens",
     i.e. the elbow);
  5. resource request via the optimizer context.

The rule pairs with :class:`repro.engine.allocation.PredictiveAllocation`
for execution: predictive scale-up, reactive idle deallocation
(Section 4.6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.cores import Factorization, factorize_cores
from repro.core.features import QueryFeatures
from repro.core.parameter_model import ParameterModel
from repro.core.ppm import PricePerfModel
from repro.core.selection import elbow_point, oracle_executors, true_runtime_curve
from repro.core.training import (
    DEFAULT_N_GRID,
    TrainingDataset,
    build_training_dataset,
)
from repro.engine.cluster import Cluster, NodeSpec
from repro.engine.optimizer import OptimizerContext
from repro.workloads.generator import Workload

__all__ = ["AutoExecutor", "AutoExecutorRule", "SelectionObjective"]

#: An objective maps (n_grid, predicted curve) to a chosen executor count.
SelectionObjective = Callable[[np.ndarray, np.ndarray], int]


@dataclass
class AutoExecutor:
    """Offline facade: train once, predict and select per query.

    Args:
        family: PPM family, ``"power_law"`` (the paper's better performer)
            or ``"amdahl"``.
        n_grid: candidate executor counts.
        objective: selection strategy over predicted curves (default: the
            paper's elbow selection).
    """

    family: str = "power_law"
    n_grid: np.ndarray = field(default_factory=lambda: DEFAULT_N_GRID.copy())
    objective: SelectionObjective = elbow_point
    model: ParameterModel | None = None
    dataset: TrainingDataset | None = None

    def train(
        self, workload: Workload, cluster: Cluster | None = None
    ) -> "AutoExecutor":
        """Build training data from the workload and fit the model."""
        self.dataset = build_training_dataset(
            workload, cluster, n_grid=self.n_grid
        )
        self.model = self.dataset.fit_parameter_model(self.family)
        return self

    def train_from_dataset(self, dataset: TrainingDataset) -> "AutoExecutor":
        """Fit from a prebuilt dataset (the CV driver uses this)."""
        self.dataset = dataset
        self.model = dataset.fit_parameter_model(self.family)
        return self

    def _require_model(self) -> ParameterModel:
        if self.model is None:
            raise RuntimeError("AutoExecutor is not trained yet")
        return self.model

    def predict_ppm(self, plan_or_features) -> PricePerfModel:
        """Predict the PPM for a query (scored once, per Section 3.4)."""
        features = _as_features(plan_or_features)
        return self._require_model().predict_ppm(features)

    def predict_curve(self, plan_or_features) -> np.ndarray:
        return self.predict_ppm(plan_or_features).predict_curve(self.n_grid)

    def select_executors(self, plan_or_features) -> int:
        """Predict the curve and apply the selection objective."""
        curve = self.predict_curve(plan_or_features)
        return self.objective(self.n_grid, curve)

    def true_curve(self, graph, cluster: Cluster | None = None) -> np.ndarray:
        """The simulated ground-truth ``t(n)`` over this system's grid.

        One batched sweep (:mod:`repro.engine.sweep`) — the curve
        :meth:`predict_curve` is approximating.  Needs no trained model.
        """
        return true_runtime_curve(graph, self.n_grid, cluster)

    def select_executors_oracle(
        self, graph, cluster: Cluster | None = None
    ) -> int:
        """Hindsight selection: the objective on the *true* curve.

        The zero-prediction-error upper bound this system's
        :meth:`select_executors` is evaluated against (Section 5.3).
        """
        return oracle_executors(
            graph, self.n_grid, cluster, objective=self.objective
        )

    def select_configuration(
        self,
        plan_or_features,
        cores_per_executor: int = 4,
        node: NodeSpec = NodeSpec(),
        executor_memory_gb: float = 28.0,
    ) -> Factorization:
        """Select a full (executors, cores-per-executor) configuration.

        Section 3.3: the PPM's resource axis is really the total core
        count ``k = n · ec`` — run times collapse onto ``k`` regardless of
        the factorization.  This method selects the executor count on the
        trained (ec-specific) curve, converts it to a core budget, and
        factorizes that budget back into ``(n, ec)`` by minimizing
        stranded node cores subject to memory.
        """
        n = self.select_executors(plan_or_features)
        k = n * cores_per_executor
        return factorize_cores(
            k, node=node, executor_memory_gb=executor_memory_gb
        )

    def make_rule(self, **rule_kwargs) -> "AutoExecutorRule":
        """Package the trained model as an optimizer extension rule."""
        model = self._require_model()
        return AutoExecutorRule(
            model_loader=lambda: model,
            n_grid=self.n_grid,
            objective=self.objective,
            **rule_kwargs,
        )


def _as_features(plan_or_features) -> QueryFeatures:
    if isinstance(plan_or_features, QueryFeatures):
        return plan_or_features
    return QueryFeatures.from_plan(plan_or_features)


class AutoExecutorRule:
    """Prediction-based optimizer rule (Figure 6, steps 1–5).

    Args:
        model_loader: zero-arg callable returning an object with
            ``predict_ppm`` — a :class:`ParameterModel` or a portable-model
            scorer from :mod:`repro.export`.  Called lazily on the first
            query and cached (step 1): model load must not recur in the
            live query path.
        n_grid: candidate executor counts.
        objective: selection strategy (default elbow).
        min_executors / max_executors: clamp on the final request.

    The rule records its decisions (predicted parameters, chosen count,
    timings) in the optimizer context's annotations for observability.
    """

    def __init__(
        self,
        model_loader: Callable[[], object],
        n_grid: np.ndarray = DEFAULT_N_GRID,
        objective: SelectionObjective = elbow_point,
        min_executors: int = 1,
        max_executors: int = 48,
    ) -> None:
        if min_executors < 1 or max_executors < min_executors:
            raise ValueError("invalid executor clamp range")
        self._model_loader = model_loader
        self._model_cache: object | None = None
        self.n_grid = np.asarray(n_grid)
        self.objective = objective
        self.min_executors = min_executors
        self.max_executors = max_executors
        #: cumulative timing telemetry (Section 5.6 overheads).
        self.timings: dict[str, list[float]] = {
            "model_load": [],
            "featurize": [],
            "score": [],
            "select": [],
        }

    def _load_model(self) -> object:
        # Step 1: load once, cache in-process.
        if self._model_cache is None:
            start = time.perf_counter()
            self._model_cache = self._model_loader()
            self.timings["model_load"].append(time.perf_counter() - start)
        return self._model_cache

    def apply(self, context: OptimizerContext) -> None:
        """Run steps 1–5 against an optimized plan."""
        model = self._load_model()

        start = time.perf_counter()
        features = QueryFeatures.from_plan(context.plan)  # step 2
        self.timings["featurize"].append(time.perf_counter() - start)

        start = time.perf_counter()
        ppm = model.predict_ppm(features)  # step 3 (single score)
        self.timings["score"].append(time.perf_counter() - start)

        start = time.perf_counter()
        curve = ppm.predict_curve(self.n_grid)  # PPM arithmetic, not scoring
        chosen = self.objective(self.n_grid, curve)  # step 4
        self.timings["select"].append(time.perf_counter() - start)

        chosen = int(np.clip(chosen, self.min_executors, self.max_executors))
        context.request_executors(chosen)  # step 5
        context.annotations["autoexecutor.ppm_params"] = ppm.parameters()
        context.annotations["autoexecutor.executors"] = chosen

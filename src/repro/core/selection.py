"""Configuration selection objectives (paper Section 5.3).

Given a predicted run-time curve over a candidate grid of executor counts,
these objectives pick the operating point:

- :func:`min_time_executors` — smallest ``n`` achieving the curve minimum.
- :func:`limited_slowdown` — smallest ``n`` whose time is within a factor
  ``H`` of the minimum (``H = 1`` is "fastest with fewest executors").
- :func:`elbow_point` — the paper's default strategy: normalize both axes
  to [0, 1] (Equations 7–8) and take the smallest ``n`` where the
  normalized slope crosses from above 1 to at-most 1 (Equation 9) — the
  point right before the curve flattens.

All objectives take the curve as parallel arrays ``(n_grid, t_curve)``
and return a value from ``n_grid``.  Where the curve itself comes from is
the caller's choice: AutoExecutor applies objectives to *predicted*
curves, while :func:`true_runtime_curve` / :func:`oracle_executors`
measure the real curve with one batched simulator sweep
(:func:`~repro.engine.sweep.simulate_query_sweep`) — the hindsight
selection every prediction is judged against.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cluster import Cluster
from repro.engine.scheduler import DEFAULT_SCHEDULER_CONFIG, SchedulerConfig
from repro.engine.stages import StageGraph
from repro.engine.sweep import simulate_query_sweep

__all__ = [
    "min_time_executors",
    "limited_slowdown",
    "elbow_point",
    "true_runtime_curve",
    "oracle_executors",
]


def _validate(n_grid, t_curve) -> tuple[np.ndarray, np.ndarray]:
    n = np.asarray(n_grid, dtype=float)
    t = np.asarray(t_curve, dtype=float)
    if n.shape != t.shape or n.ndim != 1:
        raise ValueError("n_grid and t_curve must be equal-length 1-D arrays")
    if n.size < 2:
        raise ValueError("selection needs at least two candidate points")
    if np.any(np.diff(n) <= 0):
        raise ValueError("n_grid must be strictly increasing")
    if np.any(t <= 0):
        raise ValueError("run times must be positive")
    return n, t


def min_time_executors(n_grid, t_curve) -> int:
    """Smallest ``n`` achieving the minimum time on the curve."""
    n, t = _validate(n_grid, t_curve)
    return int(n[int(np.argmin(t))])


def limited_slowdown(n_grid, t_curve, target_slowdown: float) -> int:
    """Smallest ``n`` with ``t(n) ≤ H · t_min`` (paper's first scenario).

    Args:
        target_slowdown: ``H ≥ 1``; ``H = 1`` selects the fewest executors
            that still achieve the best performance.
    """
    if target_slowdown < 1.0:
        raise ValueError("target slowdown H must be >= 1")
    n, t = _validate(n_grid, t_curve)
    threshold = float(t.min()) * target_slowdown
    eligible = np.nonzero(t <= threshold + 1e-12)[0]
    return int(n[eligible[0]])


def elbow_point(n_grid, t_curve) -> int:
    """The paper's elbow selection (Equations 7–9).

    Both axes are range-scaled to [0, 1]:

        u(n) = (n − min n) / (max n − min n)
        v(t) = (t − min t) / (max t − min t)

    and the normalized slope between consecutive grid points is

        slope(u(n_i)) = (v(t_{i−1}) − v(t_i)) / (u(n_i) − u(n_{i−1})).

    The elbow ``L`` is the smallest ``n_i`` with ``slope(u(n_i)) ≥ 1`` and
    ``slope(u(n_{i+1})) ≤ 1``.  Falls back to the min-time point when the
    curve is flat (no normalization possible) and to the last grid point
    when the slope never drops to 1 (curve still steep at the end).
    """
    n, t = _validate(n_grid, t_curve)
    t_span = float(t.max() - t.min())
    n_span = float(n[-1] - n[0])
    if t_span <= 0:
        return min_time_executors(n, t)

    u = (n - n[0]) / n_span
    v = (t - t.min()) / t_span
    # slope[i] is the normalized descent rate arriving at grid point i.
    slope = (v[:-1] - v[1:]) / (u[1:] - u[:-1])

    for i in range(len(slope) - 1):
        if slope[i] >= 1.0 and slope[i + 1] <= 1.0:
            return int(n[i + 1])
    if slope[-1] >= 1.0:
        return int(n[-1])
    # The curve starts already flat (slope < 1 everywhere): the first
    # point is the elbow.
    return int(n[0])


def true_runtime_curve(
    graph: StageGraph,
    n_grid,
    cluster: Cluster | None = None,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
) -> np.ndarray:
    """The query's *actual* ``t(n)`` over the candidate grid.

    One batched sweep of the engine simulator under static allocation —
    the ground-truth curve selection objectives are evaluated against
    (and the fleet's oracle baseline measures).
    """
    cluster = cluster or Cluster()
    results = simulate_query_sweep(graph, n_grid, cluster, config)
    return np.array([r.runtime for r in results])


def oracle_executors(
    graph: StageGraph,
    n_grid,
    cluster: Cluster | None = None,
    objective=elbow_point,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
) -> int:
    """Hindsight selection: the objective applied to the true curve.

    Perfect curve knowledge, zero prediction error — the upper bound the
    paper's predicted selections chase (Section 5.3's "optimal" rows).
    """
    curve = true_runtime_curve(graph, n_grid, cluster, config)
    return int(objective(np.asarray(n_grid, dtype=float), curve))

"""Error metrics and curve interpolation (paper Equations 6–9 support).

- :func:`e_metric` — the paper's accuracy metric ``E(n)`` (Equation 6):
  total absolute time error over total actual time, across a query set.
- :func:`interpolate_curve` — the piecewise-linear interpolation the paper
  applies to the Actual and Sparklens series to expand the candidate
  configuration set to every ``n ∈ [1, 48]`` (Section 5.3).
- :func:`slowdown` — actual-slowdown accounting for configuration
  selection experiments (Figure 10).
"""

from __future__ import annotations

import numpy as np

__all__ = ["e_metric", "interpolate_curve", "slowdown"]


def e_metric(actual_by_query: dict, predicted_by_query: dict) -> float:
    """Paper Equation 6 at one resource level.

    Args:
        actual_by_query: ``{query_id: t_q(n)}`` actual run times.
        predicted_by_query: ``{query_id: t̂_q(n)}`` predicted run times;
            keys must cover the actual keys.

    Returns:
        ``Σ_q |t̂_q(n) − t_q(n)| / Σ_q t_q(n)``.
    """
    if not actual_by_query:
        raise ValueError("E(n) needs at least one query")
    missing = set(actual_by_query) - set(predicted_by_query)
    if missing:
        raise KeyError(f"missing predictions for {sorted(missing)}")
    total_err = 0.0
    total_actual = 0.0
    for qid, actual in actual_by_query.items():
        total_err += abs(predicted_by_query[qid] - actual)
        total_actual += actual
    if total_actual <= 0:
        raise ValueError("E(n) undefined for non-positive total actual time")
    return total_err / total_actual


def interpolate_curve(
    n_samples,
    t_samples,
    n_grid,
) -> np.ndarray:
    """Piecewise-linear interpolation of a run-time curve onto a grid.

    Outside the sampled range the curve is extended flat (the paper's
    samples span the full grid, so this only matters defensively).
    """
    n = np.asarray(n_samples, dtype=float)
    t = np.asarray(t_samples, dtype=float)
    if n.shape != t.shape or n.ndim != 1 or len(n) < 1:
        raise ValueError("samples must be equal-length 1-D arrays")
    order = np.argsort(n)
    return np.interp(np.asarray(n_grid, dtype=float), n[order], t[order])


def slowdown(curve: np.ndarray, chosen_index: int) -> float:
    """Slowdown of a chosen configuration relative to the curve minimum.

    Args:
        curve: run times over the candidate grid.
        chosen_index: index of the selected configuration.

    Returns:
        ``t[chosen] / min(t)`` (≥ 1 for any choice on the curve).
    """
    curve = np.asarray(curve, dtype=float)
    if curve.ndim != 1 or curve.size == 0:
        raise ValueError("curve must be a non-empty 1-D array")
    if not 0 <= chosen_index < curve.size:
        raise IndexError("chosen_index outside the curve")
    t_min = float(curve.min())
    if t_min <= 0:
        raise ValueError("curve values must be positive")
    return float(curve[chosen_index] / t_min)

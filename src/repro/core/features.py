"""Compile-time query featurization (paper Table 2).

The parameter model's features must be available *before* execution — at
compile/optimization time — because AutoExecutor predicts the executor
count before the query runs and must score the model with the same features
it was trained on (Section 3.4).  The feature list is exactly Table 2:

- the count of each operator kind in the optimized plan (14 kinds),
- the total operator count,
- the maximum plan depth,
- the number of input data sources,
- the estimated total input bytes,
- the estimated total rows processed by all operators.

No runtime statistics appear here, by design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.plan import OPERATOR_KINDS, LogicalPlan

__all__ = ["FEATURE_NAMES", "QueryFeatures", "featurize_plans"]


#: Feature vector layout.  The names for the two data-size features match
#: the paper's Figure 15 labels.
FEATURE_NAMES: tuple[str, ...] = tuple(
    [kind.value for kind in OPERATOR_KINDS]
    + ["NumOps", "MaxDepth", "NumInputs", "TotalInputBytes", "TotalRowsProcessed"]
)


@dataclass(frozen=True)
class QueryFeatures:
    """Featurized query plan.

    Attributes:
        values: feature vector ordered as :data:`FEATURE_NAMES`.
        query_id: source query identifier (bookkeeping only; never fed to
            the model).
    """

    values: np.ndarray
    query_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=float)
        )
        if self.values.shape != (len(FEATURE_NAMES),):
            raise ValueError(
                f"feature vector must have {len(FEATURE_NAMES)} entries, "
                f"got shape {self.values.shape}"
            )

    @classmethod
    def from_plan(cls, plan: LogicalPlan) -> "QueryFeatures":
        """Extract Table 2 features from an optimized plan."""
        counts = plan.operator_counts()
        values = [float(counts[kind]) for kind in OPERATOR_KINDS]
        values.append(float(plan.num_operators()))
        values.append(float(plan.max_depth()))
        values.append(float(len(plan.input_sources())))
        values.append(plan.total_input_bytes())
        values.append(plan.total_rows_processed())
        return cls(values=np.array(values), query_id=plan.query_id)

    def __getitem__(self, name: str) -> float:
        """Look a feature up by name (e.g. ``features["MaxDepth"]``)."""
        try:
            index = FEATURE_NAMES.index(name)
        except ValueError:
            raise KeyError(name) from None
        return float(self.values[index])

    def masked(self, keep: tuple[str, ...]) -> np.ndarray:
        """Project the vector onto a feature subset (Section 5.7 ablation).

        Returns the values of ``keep`` in the given order.
        """
        return np.array([self[name] for name in keep])


def featurize_plans(plans) -> np.ndarray:
    """Stack Table 2 feature vectors for a sequence of plans into a matrix."""
    return np.stack([QueryFeatures.from_plan(p).values for p in plans])

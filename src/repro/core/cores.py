"""Total-cores modeling and executor factorization (paper Section 3.3).

The PPM can take the *total core count* ``k = n · ec`` as its resource
axis instead of the executor count: the paper shows run times for different
``(n, ec)`` factorizations of the same ``k`` collapse onto a single curve
(Figure 5), so modeling ``k`` directly avoids adding ``ec`` as a model
input.  Once an optimal ``k`` is chosen, it must be factorized back into
``(n, ec)``; the paper poses this as minimizing stranded node cores

    minimize    C mod ec
    subject to  em · ⌊C / ec⌋ ≤ M          (executors fit in node memory)
    and         ec | k                      (k splits into whole executors)

with smaller ``ec`` preferred on ties (finer cost-performance granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cluster import NodeSpec

__all__ = ["Factorization", "factorize_cores", "CONFIG_GRID_TABLE1"]


#: The (ec, n, k) configuration grid of the paper's Table 1.
CONFIG_GRID_TABLE1: tuple[tuple[int, int, int], ...] = (
    (2, 3, 6),
    (2, 16, 32),
    (4, 1, 4),
    (4, 3, 12),
    (4, 4, 16),
    (4, 8, 32),
    (4, 16, 64),
    (4, 32, 128),
    (4, 48, 192),
    (6, 3, 18),
    (6, 16, 96),
    (8, 3, 24),
    (8, 16, 128),
)


@dataclass(frozen=True)
class Factorization:
    """A chosen ``(n, ec)`` split of a total core budget ``k``.

    Attributes:
        executors: executor count ``n``.
        cores_per_executor: executor width ``ec``.
        stranded_cores_per_node: node cores no executor can use.
    """

    executors: int
    cores_per_executor: int
    stranded_cores_per_node: int

    @property
    def total_cores(self) -> int:
        return self.executors * self.cores_per_executor


def factorize_cores(
    k: int,
    node: NodeSpec = NodeSpec(),
    executor_memory_gb: float = 28.0,
    min_cores_per_executor: int = 1,
    max_cores_per_executor: int | None = None,
) -> Factorization:
    """Factorize a core budget ``k`` into ``(n, ec)``.

    Implements the paper's optimization: among executor widths ``ec`` that
    (a) divide ``k`` exactly and (b) fit node memory, pick the one
    stranding the fewest node cores; ties prefer smaller ``ec`` (finer
    granularity for later price-performance adjustments).

    Args:
        k: total core budget (from the cores-based PPM).
        node: node shape (paper: 8 cores / 64 GB).
        executor_memory_gb: per-executor memory ``em`` (paper: 28 GB).
        min_cores_per_executor / max_cores_per_executor: practical bounds
            (very small ``ec`` complicates overhead-memory sizing, very
            large ``ec`` inflates GC — Section 3.3's closing caveats).

    Raises:
        ValueError: when no feasible factorization exists.
    """
    if k < 1:
        raise ValueError("core budget k must be >= 1")
    if min_cores_per_executor < 1:
        raise ValueError("min_cores_per_executor must be >= 1")
    upper = max_cores_per_executor or node.cores
    upper = min(upper, node.cores)

    best: Factorization | None = None
    for ec in range(min_cores_per_executor, upper + 1):
        if k % ec != 0:
            continue
        executors_per_node = node.cores // ec
        if executors_per_node < 1:
            continue
        if executor_memory_gb * executors_per_node > node.memory_gb:
            # Too many executors of this width for node memory; reduce to
            # what memory allows, which also strands cores.
            executors_per_node = int(node.memory_gb // executor_memory_gb)
            if executors_per_node < 1:
                continue
        stranded = node.cores - ec * executors_per_node
        candidate = Factorization(
            executors=k // ec,
            cores_per_executor=ec,
            stranded_cores_per_node=stranded,
        )
        if (
            best is None
            or candidate.stranded_cores_per_node < best.stranded_cores_per_node
            or (
                candidate.stranded_cores_per_node == best.stranded_cores_per_node
                and candidate.cores_per_executor < best.cores_per_executor
            )
        ):
            best = candidate
    if best is None:
        raise ValueError(
            f"no feasible (n, ec) factorization for k={k} on {node}"
        )
    return best

"""AutoExecutor: predictive price-performance optimization (the paper's core).

The pipeline (paper Sections 3–4):

1. :mod:`~repro.core.ppm` — the parametric Price-Performance Model:
   ``t(n) = max(b·n^a, m)`` (AE_PL) or ``t(n) = s + p/n`` (AE_AL), fitted
   per query from (n, t) samples.
2. :mod:`~repro.core.features` — Table 2 featurization of optimized plans.
3. :mod:`~repro.core.parameter_model` — the learned map
   ``g: features → PPM parameters`` (random forest), scored once per query.
4. :mod:`~repro.core.selection` — price-perf objectives over a predicted
   curve: limited slowdown, elbow point, minimum time.
5. :mod:`~repro.core.cores` — modeling total cores ``k = n·ec`` and
   factorizing an optimal ``k`` back into ``(n, ec)``.
6. :mod:`~repro.core.training` — telemetry → Sparklens augmentation →
   labels → trained parameter models.
7. :mod:`~repro.core.autoexecutor` — the end-to-end facade and the
   optimizer extension rule (Figure 6's five steps).
"""

from repro.core.autoexecutor import AutoExecutor, AutoExecutorRule
from repro.core.cores import factorize_cores
from repro.core.errors import e_metric, interpolate_curve
from repro.core.features import FEATURE_NAMES, QueryFeatures
from repro.core.parameter_model import ParameterModel
from repro.core.ppm import (
    AmdahlPPM,
    PowerLawPPM,
    PricePerfModel,
    fit_amdahl,
    fit_power_law,
)
from repro.core.selection import elbow_point, limited_slowdown, min_time_executors
from repro.core.training import TrainingDataset, build_training_dataset

__all__ = [
    "PricePerfModel",
    "PowerLawPPM",
    "AmdahlPPM",
    "fit_power_law",
    "fit_amdahl",
    "QueryFeatures",
    "FEATURE_NAMES",
    "ParameterModel",
    "limited_slowdown",
    "elbow_point",
    "min_time_executors",
    "factorize_cores",
    "e_metric",
    "interpolate_curve",
    "TrainingDataset",
    "build_training_dataset",
    "AutoExecutor",
    "AutoExecutorRule",
]

"""Training-data pipeline (paper Sections 3.4 and 4.1).

Production telemetry only contains each query's run time at the executor
count it actually ran with.  The paper augments it: every training query is
run **once** (at ``n = 16``), Sparklens post-processes the log into run-time
estimates for *all* candidate executor counts, the PPM is fitted to those
estimates, and the fitted parameters become the (per-query) training
targets for the parameter model.

This module reproduces that pipeline against the engine simulator:

    workload ──simulate once at n=16──▶ execution logs
             ──Sparklens──▶ t̂(n) curves over the candidate grid
             ──fit PPM──▶ per-query (a, b, m) / (s, p) labels
             ──featurize──▶ Table 2 feature rows
             ──▶ TrainingDataset ──▶ fitted ParameterModels
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import QueryFeatures
from repro.core.parameter_model import ParameterModel
from repro.core.ppm import fit_amdahl, fit_power_law
from repro.engine.cluster import Cluster
from repro.engine.sweep import simulate_query_sweep
from repro.sparklens.simulator import SparklensEstimator
from repro.workloads.generator import Workload

__all__ = [
    "TrainingDataset",
    "build_training_dataset",
    "build_training_dataset_from_logs",
    "DEFAULT_N_GRID",
    "FIT_N_VALUES",
]

#: Candidate executor counts, ``n ∈ [1, 48]`` (paper Section 5.1/5.3).
DEFAULT_N_GRID: np.ndarray = np.arange(1, 49)

#: The configurations PPM labels are fitted at — the paper fits "to run
#: times of each query for different configurations", i.e. the sampled
#: grid of Section 5.1, not a dense curve.
FIT_N_VALUES: np.ndarray = np.array([1, 3, 8, 16, 32, 48])

#: The single executor count training queries are run at (Section 5.1).
TRAINING_RUN_EXECUTORS = 16


@dataclass
class TrainingDataset:
    """One-row-per-query training data (the parametric approach).

    Attributes:
        query_ids: queries, in row order.
        features: feature matrix ``(n_queries, n_features)``.
        sparklens_curves: per-query Sparklens estimates over ``n_grid``.
        power_law_params: fitted ``(a, b, m)`` labels per query.
        amdahl_params: fitted ``(s, p)`` labels per query.
        n_grid: the candidate executor grid the curves span.
        fit_seconds_per_point: mean wall-clock seconds to fit the PPMs for
            one query (the Section 5.6 "~0.3 msec per training data point"
            overhead).
    """

    query_ids: list[str]
    features: np.ndarray
    sparklens_curves: dict[str, np.ndarray]
    power_law_params: np.ndarray
    amdahl_params: np.ndarray
    n_grid: np.ndarray
    fit_seconds_per_point: float = 0.0

    def subset(self, indices) -> "TrainingDataset":
        """Row subset (used by the cross-validation driver)."""
        indices = np.asarray(indices, dtype=int)
        ids = [self.query_ids[i] for i in indices]
        return TrainingDataset(
            query_ids=ids,
            features=self.features[indices],
            sparklens_curves={q: self.sparklens_curves[q] for q in ids},
            power_law_params=self.power_law_params[indices],
            amdahl_params=self.amdahl_params[indices],
            n_grid=self.n_grid,
            fit_seconds_per_point=self.fit_seconds_per_point,
        )

    def fit_parameter_model(
        self, family: str, **model_kwargs
    ) -> ParameterModel:
        """Train a :class:`ParameterModel` of the given family on this data."""
        model = ParameterModel(family=family, **model_kwargs)
        targets = (
            self.power_law_params
            if family == "power_law"
            else self.amdahl_params
        )
        return model.fit(self.features, targets)


def build_training_dataset(
    workload: Workload,
    cluster: Cluster | None = None,
    n_grid: np.ndarray = DEFAULT_N_GRID,
    training_executors: int = TRAINING_RUN_EXECUTORS,
) -> TrainingDataset:
    """Run the full augmentation pipeline over a workload.

    Each query is simulated once at ``training_executors`` with log
    capture; Sparklens estimates its curve over ``n_grid``; both PPM
    families are fitted to the estimates (always monotone, per Section 3.1
    reason 3); features come from the optimized plans.
    """
    cluster = cluster or Cluster()
    plans = []
    logs = []
    for query_id in workload:
        plans.append(workload.optimized_plan(query_id))
        # A single-count sweep: the training run is static allocation on a
        # dedicated cluster, exactly the compiled fast path's territory.
        result = simulate_query_sweep(
            workload.stage_graph(query_id),
            [training_executors],
            cluster,
            record_log=True,
        )[0]
        assert result.execution_log is not None
        logs.append(result.execution_log)
    return build_training_dataset_from_logs(plans, logs, n_grid=n_grid)


def build_training_dataset_from_logs(
    plans,
    logs,
    n_grid: np.ndarray = DEFAULT_N_GRID,
) -> TrainingDataset:
    """Build training data from past executions (the production loop).

    This is the Section 4.1 path: a deployment does not re-run its
    workload for training — it collects telemetry (plans + execution
    logs) from queries as they run, augments each with Sparklens, and
    trains from that.  ``plans[i]`` must be the optimized plan whose run
    produced ``logs[i]``.
    """
    if len(plans) != len(logs):
        raise ValueError("plans and logs must pair up one-to-one")
    if not plans:
        raise ValueError("training needs at least one executed query")
    n_grid = np.asarray(n_grid)

    ids: list[str] = []
    feature_rows: list[np.ndarray] = []
    curves: dict[str, np.ndarray] = {}
    pl_params: list[np.ndarray] = []
    al_params: list[np.ndarray] = []
    fit_time = 0.0

    for plan, log in zip(plans, logs):
        estimator = SparklensEstimator(log)
        curve = estimator.estimate_curve(n_grid)

        # Fit the PPM at the sampled configurations (Section 5.1's grid),
        # exactly as the paper fits to per-configuration run times.
        fit_cols = np.searchsorted(n_grid, FIT_N_VALUES)
        fit_cols = fit_cols[fit_cols < len(n_grid)]
        start = time.perf_counter()
        pl = fit_power_law(n_grid[fit_cols], curve[fit_cols])
        al = fit_amdahl(n_grid[fit_cols], curve[fit_cols])
        fit_time += time.perf_counter() - start

        ids.append(plan.query_id)
        feature_rows.append(QueryFeatures.from_plan(plan).values)
        curves[plan.query_id] = curve
        pl_params.append(pl.parameters())
        al_params.append(al.parameters())

    return TrainingDataset(
        query_ids=ids,
        features=np.stack(feature_rows),
        sparklens_curves=curves,
        power_law_params=np.stack(pl_params),
        amdahl_params=np.stack(al_params),
        n_grid=n_grid,
        fit_seconds_per_point=fit_time / max(len(ids), 1),
    )

"""Fleet: concurrent multi-query serving on a shared serverless pool.

The paper's production setting (Section 2) is not one query on a dedicated
cluster — it is a *shared pool* serving a stream of concurrent queries,
where every executor granted to one query is an executor another query
cannot have.  This subpackage simulates that setting end to end:

- :mod:`~repro.fleet.arrivals` — query arrival processes: Poisson streams
  and replays of the :mod:`repro.workloads.production` telemetry trace;
- :mod:`~repro.fleet.admission` — the capacity arbiter: per-query executor
  budgets granted out of a finite pool, with FIFO and fair-share queueing;
- :mod:`~repro.fleet.engine` — the fleet engine: many query runs
  multiplexed on one discrete-event clock, each executing its stage DAG
  (via the shared :class:`repro.engine.execution.ExecutionCore`) on its
  granted share of the pool, with optional mid-query dynamic scaling
  through any :mod:`repro.engine.allocation` policy;
- :mod:`~repro.fleet.prediction` — the online prediction service: a
  trained AutoExecutor behind a plan-signature memo cache with batched
  portable-runtime inference, so per-query selection overhead is measured
  rather than assumed;
- :mod:`~repro.fleet.adaptive` — continual learning: finished-query
  outcomes feed a bounded seed-deterministic replay buffer through the
  engines' feedback hook, a drift detector watches rolling prediction
  error, and retrained models shadow-score live traffic before being
  hot-swapped behind the prediction service (generation-tagged cache
  invalidation), with the retraining bill priced into the metrics;
- :mod:`~repro.fleet.metrics` — fleet-level serving metrics: latency
  percentiles, queueing delay, pool utilization, and dollar cost
  (including the bill for autoscaled-but-idle capacity), with
  :class:`~repro.fleet.metrics.ClusterMetrics` rolling pools up into
  the cluster view;
- :mod:`~repro.fleet.cluster` — the sharded fleet: N pools behind a
  router on one clock, each optionally autoscaled;
- :mod:`~repro.fleet.routing` — placement policies: round-robin,
  least-queued, and cost-aware (weighing queued work by the prediction
  service's run-time estimates);
- :mod:`~repro.fleet.autoscaler` — per-pool elastic capacity from
  queue-delay and utilization signals, with scale-up lag and a
  scale-down cooldown;
- :mod:`~repro.fleet.parallel` — multiprocess sharded serving: one OS
  process per pool, bit-identical to the single-process drivers for
  state-blind routers on static pools.

Streaming scale: :attr:`FleetConfig.streaming
<repro.fleet.engine.FleetConfig>` switches every driver to O(1) memory
per pool — generator arrival streams (e.g.
:func:`~repro.fleet.arrivals.poisson_arrival_stream`), per-pool
:class:`~repro.fleet.metrics.PoolStreamStats` accumulators instead of
record lists, and optional JSONL record spooling
(:func:`~repro.fleet.metrics.read_spooled_records` reads it back).

Fault tolerance: a seed-driven :class:`repro.engine.faults.FaultPlan`
threads through :attr:`FleetConfig.faults <repro.fleet.engine.FleetConfig>`
— executor crashes with task re-execution, stragglers, and preemptible
spot capacity with reclamation — and the metrics grow the matching
ledger (retries, wasted work, spot-vs-on-demand dollar split).

Quickstart::

    from repro import AutoExecutor, Workload
    from repro.fleet import (
        FleetEngine, PredictionService, poisson_arrivals
    )

    workload = Workload(scale_factor=50)
    system = AutoExecutor().train(workload)
    service = PredictionService.from_autoexecutor(system)
    engine = FleetEngine(workload, capacity=128, allocator=service.allocate)
    metrics = engine.serve(
        poisson_arrivals(workload.query_ids, n_queries=200, rate_qps=0.5)
    )
    print(metrics.describe())
"""

from repro.engine.faults import FaultPlan, FaultStats, SpotMarket
from repro.fleet.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    DriftDetector,
    ReplayBuffer,
    ReplayPoint,
)
from repro.fleet.admission import (
    AdmissionRequest,
    CapacityArbiter,
    FairShareAdmission,
    FIFOAdmission,
    PoolShare,
)
from repro.fleet.arrivals import (
    QueryArrival,
    poisson_arrival_stream,
    poisson_arrivals,
    trace_arrivals,
)
from repro.fleet.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.fleet.cluster import PoolSpec, ShardedFleet
from repro.fleet.engine import (
    FeedbackSink,
    FleetConfig,
    FleetEngine,
    PoolRuntime,
    StreamingConfig,
    allocator_annotations,
    oracle_allocator,
    static_allocator,
)
from repro.fleet.metrics import (
    AdaptiveStats,
    ClusterMetrics,
    FleetMetrics,
    PoolStreamStats,
    QueryRecord,
    SkylineTracker,
    read_spooled_records,
)
from repro.fleet.parallel import ProcessShardExecutor
from repro.fleet.prediction import Prediction, PredictionService
from repro.fleet.routing import (
    CostAwareRouter,
    LeastQueuedRouter,
    PoolView,
    RoundRobinRouter,
    Router,
    RoutingRequest,
)

__all__ = [
    "QueryArrival",
    "poisson_arrival_stream",
    "poisson_arrivals",
    "trace_arrivals",
    "AdmissionRequest",
    "FIFOAdmission",
    "FairShareAdmission",
    "CapacityArbiter",
    "PoolShare",
    "FleetEngine",
    "FleetConfig",
    "StreamingConfig",
    "PoolRuntime",
    "FeedbackSink",
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptiveStats",
    "DriftDetector",
    "ReplayBuffer",
    "ReplayPoint",
    "ProcessShardExecutor",
    "FaultPlan",
    "FaultStats",
    "SpotMarket",
    "static_allocator",
    "oracle_allocator",
    "allocator_annotations",
    "FleetMetrics",
    "ClusterMetrics",
    "QueryRecord",
    "PoolStreamStats",
    "SkylineTracker",
    "read_spooled_records",
    "Prediction",
    "PredictionService",
    "ShardedFleet",
    "PoolSpec",
    "Router",
    "RoutingRequest",
    "PoolView",
    "RoundRobinRouter",
    "LeastQueuedRouter",
    "CostAwareRouter",
    "AutoscalerConfig",
    "PoolAutoscaler",
]

"""Fleet: concurrent multi-query serving on a shared serverless pool.

The paper's production setting (Section 2) is not one query on a dedicated
cluster — it is a *shared pool* serving a stream of concurrent queries,
where every executor granted to one query is an executor another query
cannot have.  This subpackage simulates that setting end to end:

- :mod:`~repro.fleet.arrivals` — query arrival processes: Poisson streams
  and replays of the :mod:`repro.workloads.production` telemetry trace;
- :mod:`~repro.fleet.admission` — the capacity arbiter: per-query executor
  budgets granted out of a finite pool, with FIFO and fair-share queueing;
- :mod:`~repro.fleet.engine` — the fleet engine: many query runs
  multiplexed on one discrete-event clock, each executing its stage DAG
  (via the shared :class:`repro.engine.execution.ExecutionCore`) on its
  granted share of the pool, with optional mid-query dynamic scaling
  through any :mod:`repro.engine.allocation` policy;
- :mod:`~repro.fleet.prediction` — the online prediction service: a
  trained AutoExecutor behind a plan-signature memo cache with batched
  portable-runtime inference, so per-query selection overhead is measured
  rather than assumed;
- :mod:`~repro.fleet.metrics` — fleet-level serving metrics: latency
  percentiles, queueing delay, pool utilization, and dollar cost.

Quickstart::

    from repro import AutoExecutor, Workload
    from repro.fleet import (
        FleetEngine, PredictionService, poisson_arrivals
    )

    workload = Workload(scale_factor=50)
    system = AutoExecutor().train(workload)
    service = PredictionService.from_autoexecutor(system)
    engine = FleetEngine(workload, capacity=128, allocator=service.allocate)
    metrics = engine.serve(
        poisson_arrivals(workload.query_ids, n_queries=200, rate_qps=0.5)
    )
    print(metrics.describe())
"""

from repro.fleet.admission import (
    AdmissionRequest,
    CapacityArbiter,
    FairShareAdmission,
    FIFOAdmission,
    PoolShare,
)
from repro.fleet.arrivals import QueryArrival, poisson_arrivals, trace_arrivals
from repro.fleet.engine import (
    FleetConfig,
    FleetEngine,
    oracle_allocator,
    static_allocator,
)
from repro.fleet.metrics import FleetMetrics, QueryRecord
from repro.fleet.prediction import Prediction, PredictionService

__all__ = [
    "QueryArrival",
    "poisson_arrivals",
    "trace_arrivals",
    "AdmissionRequest",
    "FIFOAdmission",
    "FairShareAdmission",
    "CapacityArbiter",
    "PoolShare",
    "FleetEngine",
    "FleetConfig",
    "static_allocator",
    "oracle_allocator",
    "FleetMetrics",
    "QueryRecord",
    "Prediction",
    "PredictionService",
]

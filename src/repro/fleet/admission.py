"""Admission control: finite pool capacity, queueing, arbitration.

The shared pool holds a fixed number of executors.  Every query asks the
:class:`CapacityArbiter` for a budget before it may start; when the pool
cannot cover the budget the request queues.  Which queued request goes
next is the admission policy's call:

- :class:`FIFOAdmission` — strict arrival order with head-of-line
  blocking: a large request at the head makes everyone behind it wait,
  even if they would fit (the behaviour of a naive job queue).
- :class:`FairShareAdmission` — among the requests that fit *right now*,
  grant the one whose application currently holds the least capacity
  (ties broken by arrival order).  Small tenants are not starved by big
  bursty ones, and capacity that would sit idle under FIFO gets used.

Two acquisition paths exist side by side.  :meth:`CapacityArbiter.submit`
/ :meth:`~CapacityArbiter.admit` is the *queued, atomic* path: a query's
admission budget is reserved whole or not at all, under the admission
policy's ordering.  :meth:`CapacityArbiter.try_acquire` is the
*immediate, partial* path: grant whatever fits right now, used by the
fleet engine's mid-query dynamic scaling (growing an already-admitted
query's grant under backlog pressure) and by the per-query
:class:`PoolShare` adapters, which implement
:class:`repro.engine.cluster.CapacitySource` so a single
``simulate_query`` run can draw its executors straight from the shared
pool instead of an infinite one.

The same bounded-wait discipline reappears one layer up in the HTTP
serving surface: :mod:`repro.serve` fronts the prediction service with
a bounded request queue that sheds (HTTP 429) rather than queueing into
timeout — admission control for recommendation traffic, where this
module is admission control for executor capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

__all__ = [
    "AdmissionRequest",
    "AdmissionPolicy",
    "FIFOAdmission",
    "FairShareAdmission",
    "CapacityArbiter",
    "PoolShare",
]


@dataclass(frozen=True)
class AdmissionRequest:
    """A query's ask: an executor budget out of the shared pool.

    Attributes:
        query_index: the requesting query (fleet stream index).
        app_id: owning application (the fair-share unit).
        executors: budget requested — granted atomically or not at all.
        submit_time: fleet-clock time the request entered the queue.
    """

    query_index: int
    app_id: int
    executors: int
    submit_time: float

    def __post_init__(self) -> None:
        if self.executors < 1:
            raise ValueError("admission requests need at least 1 executor")


class AdmissionPolicy(Protocol):
    """Chooses which queued request (if any) is admitted next."""

    name: str

    def pick(
        self,
        queue: Sequence[AdmissionRequest],
        free: int,
        app_usage: Mapping[int, int],
    ) -> int | None:
        """Return the queue position to admit, or ``None`` to wait.

        Args:
            queue: pending requests in arrival order.
            free: uncommitted pool capacity (executors).
            app_usage: currently granted executors per application.
        """
        ...  # pragma: no cover


class FIFOAdmission:
    """Strict arrival order; the head of the line blocks everyone."""

    name = "fifo"

    def pick(
        self,
        queue: Sequence[AdmissionRequest],
        free: int,
        app_usage: Mapping[int, int],
    ) -> int | None:
        if queue and queue[0].executors <= free:
            return 0
        return None


class FairShareAdmission:
    """Least-loaded application first, among the requests that fit."""

    name = "fair_share"

    def pick(
        self,
        queue: Sequence[AdmissionRequest],
        free: int,
        app_usage: Mapping[int, int],
    ) -> int | None:
        best: int | None = None
        best_usage = -1
        for pos, request in enumerate(queue):
            if request.executors > free:
                continue
            usage = app_usage.get(request.app_id, 0)
            if best is None or usage < best_usage:
                best, best_usage = pos, usage
        return best


class CapacityArbiter:
    """Grants per-query executor budgets out of a finite pool.

    The invariant the whole fleet rests on: the sum of outstanding grants
    never exceeds ``capacity``.  Grants are atomic (a query starts with
    its full budget reserved, though executors still *arrive* gradually
    per the cluster's provisioning lag) and are returned piecemeal — idle
    releases hand back single executors, completion hands back the rest.

    Capacity is *time-varying* under a pool autoscaler
    (:mod:`repro.fleet.autoscaler`): :meth:`resize` moves the pool's
    size between grants.  Shrinks never revoke outstanding grants — a
    scale-down racing an in-flight grant clamps at ``in_use``; the
    arbiter keeps no pending target, so a caller that wants the lower
    size must re-issue :meth:`resize` once grants release (the
    autoscaler's periodic evaluation does exactly that) — so the grant
    invariant holds at every instant.  ``max_capacity`` is the ceiling
    the autoscaler may ever reach; budget requests are admissible up to
    that ceiling (they queue until capacity grows to fit them).

    Args:
        capacity: pool size in executors.
        policy: admission policy; defaults to FIFO.
        max_capacity: largest size :meth:`resize` may grow the pool to
            (defaults to ``capacity``: a statically provisioned pool).
    """

    def __init__(
        self,
        capacity: int,
        policy: AdmissionPolicy | None = None,
        max_capacity: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1 executor")
        self.capacity = int(capacity)
        self.max_capacity = (
            self.capacity if max_capacity is None else int(max_capacity)
        )
        if self.max_capacity < self.capacity:
            raise ValueError("max_capacity cannot be below capacity")
        self.policy: AdmissionPolicy = policy if policy is not None else FIFOAdmission()
        self._queue: list[AdmissionRequest] = []
        self._granted: dict[int, int] = {}
        self._app_of: dict[int, int] = {}
        self._app_usage: dict[int, int] = {}
        self.in_use = 0

    @property
    def free(self) -> int:
        return max(0, self.capacity - self.in_use)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def queued_executors(self) -> int:
        """Total executor demand sitting in the admission queue."""
        return sum(request.executors for request in self._queue)

    @property
    def queued_requests(self) -> tuple[AdmissionRequest, ...]:
        """Read-only snapshot of the queue, arrival order."""
        return tuple(self._queue)

    @property
    def oldest_submit_time(self) -> float | None:
        """Submit time of the longest-waiting queued request."""
        if not self._queue:
            return None
        return min(request.submit_time for request in self._queue)

    def resize(self, new_capacity: int) -> int:
        """Move the pool to ``new_capacity`` executors; returns the size
        actually applied.

        Shrinks clamp at ``in_use`` — outstanding grants are never
        revoked, the pool just stops granting until enough capacity is
        released.  The clamped size *sticks*: no pending target is
        remembered, so reaching a lower size after grants release takes
        another ``resize`` call.  Grows clamp at ``max_capacity``.
        """
        if new_capacity < 1:
            raise ValueError("pool capacity must be at least 1 executor")
        self.capacity = min(max(int(new_capacity), self.in_use, 1), self.max_capacity)
        return self.capacity

    def granted_to(self, query_index: int) -> int:
        """Executors currently reserved for a query."""
        return self._granted.get(query_index, 0)

    def app_usage(self, app_id: int) -> int:
        """Executors currently reserved across an application's queries."""
        return self._app_usage.get(app_id, 0)

    def submit(self, request: AdmissionRequest) -> None:
        """Queue a budget request (admission happens in :meth:`admit`)."""
        if request.executors > self.max_capacity:
            raise ValueError(
                f"request for {request.executors} executors can never be "
                f"admitted to a pool of at most {self.max_capacity}"
            )
        if request.query_index in self._granted:
            raise ValueError(
                f"query {request.query_index} already holds a grant"
            )
        self._queue.append(request)

    def admit(self) -> list[AdmissionRequest]:
        """Admit queued requests while the policy finds one that fits."""
        admitted: list[AdmissionRequest] = []
        while self._queue:
            pos = self.policy.pick(self._queue, self.free, self._app_usage)
            if pos is None:
                break
            request = self._queue.pop(pos)
            self._grant(request.query_index, request.app_id, request.executors)
            admitted.append(request)
        return admitted

    def _grant(self, query_index: int, app_id: int, count: int) -> None:
        if count > self.free:
            raise RuntimeError(
                "admission policy granted beyond pool capacity"
            )
        self.in_use += count
        self._granted[query_index] = self._granted.get(query_index, 0) + count
        self._app_of[query_index] = app_id
        self._app_usage[app_id] = self._app_usage.get(app_id, 0) + count

    def try_acquire(self, query_index: int, app_id: int, count: int) -> int:
        """Immediately grant up to ``count`` executors, bypassing the queue.

        This is the incremental path: :class:`PoolShare` uses it for
        single query runs, and the fleet engine uses it to *grow* an
        admitted query's grant mid-run under a dynamic-scaling policy
        (initial budgets always reserve atomically through
        :meth:`submit`/:meth:`admit`).
        """
        granted = max(0, min(int(count), self.free))
        if granted:
            self._grant(query_index, app_id, granted)
        return granted

    def release(self, query_index: int, count: int | None = None) -> int:
        """Return executors from a query's grant back to the pool.

        Args:
            query_index: the grant to shrink.
            count: executors to return; ``None`` returns the whole grant.

        Returns:
            The number of executors actually returned.
        """
        held = self._granted.get(query_index, 0)
        count = held if count is None else int(count)
        if count > held:
            raise ValueError(
                f"query {query_index} holds {held} executors, cannot "
                f"release {count}"
            )
        if count <= 0:
            return 0
        self.in_use -= count
        app_id = self._app_of[query_index]
        self._app_usage[app_id] -= count
        remaining = held - count
        if remaining:
            self._granted[query_index] = remaining
        else:
            del self._granted[query_index]
            del self._app_of[query_index]
            if self._app_usage[app_id] == 0:
                del self._app_usage[app_id]
        return count

    def share(self, query_index: int, app_id: int = 0) -> "PoolShare":
        """A :class:`~repro.engine.cluster.CapacitySource` view of the pool
        for one query, usable directly with ``simulate_query``."""
        return PoolShare(self, query_index, app_id)


class PoolShare:
    """Per-query capacity-source adapter over a :class:`CapacityArbiter`.

    Passing ``arbiter.share(q)`` as ``simulate_query``'s
    ``capacity_source`` makes that run draw (and return) its executors
    from the shared pool: grants shrink to what the pool can spare.
    """

    def __init__(
        self, arbiter: CapacityArbiter, query_index: int, app_id: int
    ) -> None:
        self.arbiter = arbiter
        self.query_index = query_index
        self.app_id = app_id

    def acquire(self, count: int) -> int:
        return self.arbiter.try_acquire(self.query_index, self.app_id, count)

    def release(self, count: int) -> None:
        self.arbiter.release(self.query_index, count)

"""Query arrival processes for the fleet simulator.

Two modes, both seeded and fully deterministic:

- **Poisson**: queries arrive as a memoryless stream at a configured rate,
  each tagged with an application drawn from a small app population — the
  classic open-loop serving model, used to sweep arrival rates in the
  concurrency benchmarks.
- **Trace replay**: applications are sampled from a
  :class:`repro.workloads.production.ProductionTrace` — the synthetic
  stand-in for the paper's Microsoft telemetry — so the stream inherits
  the production shape: most apps issue several queries back to back
  (Figure 2a), producing the bursty, app-correlated load the admission
  policies have to arbitrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.workloads.production import ProductionTrace

__all__ = [
    "QueryArrival",
    "poisson_arrival_stream",
    "poisson_arrivals",
    "trace_arrivals",
]


@dataclass(frozen=True)
class QueryArrival:
    """One query entering the shared pool.

    Attributes:
        index: position in the arrival stream (0-based, time order).
        query_id: workload query to run (a ``repro.workloads`` id).
        app_id: owning application — the unit fair-share arbitrates over.
        arrival_time: submission time on the fleet clock (seconds).
    """

    index: int
    query_id: str
    app_id: int
    arrival_time: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival times cannot be negative")


def _finalize(
    times: np.ndarray, query_ids: list[str], app_ids: np.ndarray
) -> list[QueryArrival]:
    """Sort by time and re-index into a clean stream."""
    order = np.argsort(times, kind="stable")
    return [
        QueryArrival(
            index=i,
            query_id=query_ids[j],
            app_id=int(app_ids[j]),
            arrival_time=float(times[j]),
        )
        for i, j in enumerate(order)
    ]


def poisson_arrivals(
    query_ids: Sequence[str],
    n_queries: int,
    rate_qps: float,
    n_apps: int = 16,
    seed: int = 0,
) -> list[QueryArrival]:
    """A Poisson stream of ``n_queries`` arrivals at ``rate_qps``.

    Args:
        query_ids: candidate workload queries, sampled uniformly.
        n_queries: stream length.
        rate_qps: mean arrival rate (queries per second).
        n_apps: size of the application population queries are attributed
            to (fair-share needs more than one owner to matter).
        seed: RNG seed; the stream is deterministic given the seed.
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if rate_qps <= 0:
        raise ValueError("arrival rate must be positive")
    if not query_ids:
        raise ValueError("query_ids must be non-empty")
    if n_apps < 1:
        raise ValueError("need at least one application")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_qps, size=n_queries)
    times = np.cumsum(gaps)
    times -= times[0]  # the first query opens the stream at t = 0
    picks = rng.integers(0, len(query_ids), size=n_queries)
    apps = rng.integers(0, n_apps, size=n_queries)
    return _finalize(times, [query_ids[p] for p in picks], apps)


def poisson_arrival_stream(
    query_ids: Sequence[str],
    n_queries: int,
    rate_qps: float,
    n_apps: int = 16,
    seed: int = 0,
) -> Iterator[QueryArrival]:
    """Generator form of a Poisson stream, for streaming-mode serving.

    Yields ``n_queries`` time-ordered :class:`QueryArrival` objects one
    at a time in O(1) memory — the shape million-query serves need.
    Draws are interleaved per arrival (gap, query pick, app pick), so a
    given seed produces a *different* stream than the batch-drawing
    :func:`poisson_arrivals`; the two functions are distinct processes,
    not two materializations of one.  Deterministic given the seed.

    Args:
        query_ids: candidate workload queries, sampled uniformly.
        n_queries: stream length.
        rate_qps: mean arrival rate (queries per second).
        n_apps: size of the application population queries are
            attributed to.
        seed: RNG seed.
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if rate_qps <= 0:
        raise ValueError("arrival rate must be positive")
    if not query_ids:
        raise ValueError("query_ids must be non-empty")
    if n_apps < 1:
        raise ValueError("need at least one application")
    rng = np.random.default_rng(seed)
    scale = 1.0 / rate_qps
    t = 0.0
    for i in range(n_queries):
        if i:  # the first query opens the stream at t = 0
            t += float(rng.exponential(scale=scale))
        yield QueryArrival(
            index=i,
            query_id=query_ids[int(rng.integers(0, len(query_ids)))],
            app_id=int(rng.integers(0, n_apps)),
            arrival_time=t,
        )


def trace_arrivals(
    trace: ProductionTrace,
    query_ids: Sequence[str],
    n_queries: int,
    horizon_seconds: float = 600.0,
    mean_intra_app_gap: float = 5.0,
    max_queries_per_app: int = 64,
    seed: int = 0,
) -> list[QueryArrival]:
    """Replay the production trace's application shape as an arrival stream.

    Applications are drawn (uniformly, with replacement) from the trace;
    each sampled app starts at a uniform point in the horizon and issues
    ``queries_per_app`` queries back to back with exponential think time —
    reproducing the bursty multi-query sessions of Figure 2a.  Sampling
    stops once ``n_queries`` arrivals have accumulated; the stream is then
    truncated to exactly ``n_queries``.

    Args:
        trace: the production telemetry trace to replay.
        query_ids: candidate workload queries, sampled uniformly per query.
        n_queries: stream length after truncation.
        horizon_seconds: window application start times are spread over.
        mean_intra_app_gap: mean seconds between one app's queries.
        max_queries_per_app: cap on a single app's burst (the trace's tail
            reaches thousands of queries; one such app would be the whole
            stream).
        seed: RNG seed; the stream is deterministic given the seed.
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if horizon_seconds <= 0 or mean_intra_app_gap <= 0:
        raise ValueError("horizon and think time must be positive")
    if not query_ids:
        raise ValueError("query_ids must be non-empty")
    rng = np.random.default_rng(seed)
    times: list[float] = []
    qids: list[str] = []
    apps: list[int] = []
    while len(times) < n_queries:
        app = int(rng.integers(0, trace.n_applications))
        burst = int(min(trace.queries_per_app[app], max_queries_per_app))
        start = float(rng.uniform(0.0, horizon_seconds))
        gaps = rng.exponential(scale=mean_intra_app_gap, size=burst)
        gaps[0] = 0.0
        for t in start + np.cumsum(gaps):
            times.append(float(t))
            qids.append(query_ids[int(rng.integers(0, len(query_ids)))])
            apps.append(app)
    arrivals = _finalize(
        np.asarray(times), qids, np.asarray(apps, dtype=int)
    )[:n_queries]
    # Re-anchor so the stream still opens at t = 0 after truncation.
    t0 = arrivals[0].arrival_time
    return [
        QueryArrival(a.index, a.query_id, a.app_id, a.arrival_time - t0)
        for a in arrivals
    ]

"""Pool autoscaling: elastic capacity from queue-delay and utilization.

A statically provisioned pool pays for its peak all the time; a pool
sized for its average melts down under bursts.  The
:class:`PoolAutoscaler` closes the gap the way serverless pool managers
do: watch two pressure signals — how long the oldest queued request has
waited, and how much of the provisioned capacity is reserved — and move
the pool's size between a floor and a ceiling.

Two asymmetries make the model honest:

- **Scale-up lag**: requested capacity is *not* usable immediately.  The
  driver schedules a ``scale_online`` event ``scale_up_lag_s`` in the
  future, and only when it fires does the arbiter's capacity grow — so a
  burst still queues through the provisioning window, exactly as it
  would against a real cluster manager.  Requested-but-not-yet-online
  capacity is tracked as ``pending`` and counted against demand, so the
  scaler does not re-request the same executors every tick of the lag
  window.
- **Scale-down cooldown**: after *any* scaling action the pool must hold
  its size for ``scale_down_cooldown_s`` before shrinking.  Without it,
  a bursty stream makes the scaler oscillate — shed capacity in every
  gap, re-buy it (plus the lag) at every burst — which is both slower
  and more expensive than holding.

Shrinks reclaim only *free* capacity (the arbiter additionally clamps at
outstanding grants, so a scale-down racing an in-flight grant can never
revoke it), and every provisioned executor-second — idle or not — is
billed by :class:`repro.fleet.metrics.FleetMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.routing import PoolView
from repro.obs.trace import TraceEvent, Tracer

__all__ = ["AutoscalerConfig", "PoolAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs for one pool's autoscaler.

    Attributes:
        min_capacity: floor the pool never shrinks below.
        max_capacity: ceiling the pool never grows above.
        scale_up_step: most executors added per scale-up decision.
        scale_down_step: most executors shed per scale-down decision.
        scale_up_lag_s: seconds between requesting capacity and that
            capacity coming online (the provisioning window).
        scale_down_cooldown_s: seconds after any scaling action before a
            shrink may trigger.
        queue_delay_threshold_s: oldest-queued-request wait that forces a
            scale-up regardless of utilization.
        high_utilization: reserved fraction above which a non-empty
            queue triggers a scale-up.
        low_utilization: reserved fraction below which an empty queue
            allows a scale-down.
    """

    min_capacity: int
    max_capacity: int
    scale_up_step: int = 8
    scale_down_step: int = 4
    scale_up_lag_s: float = 15.0
    scale_down_cooldown_s: float = 60.0
    queue_delay_threshold_s: float = 5.0
    high_utilization: float = 0.85
    low_utilization: float = 0.40

    def __post_init__(self) -> None:
        if self.min_capacity < 1 or self.max_capacity < self.min_capacity:
            raise ValueError("need 1 <= min_capacity <= max_capacity")
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ValueError("scaling steps must be at least 1 executor")
        if self.scale_up_lag_s < 0 or self.scale_down_cooldown_s < 0:
            raise ValueError("lag and cooldown must be non-negative")
        if not (0.0 <= self.low_utilization < self.high_utilization <= 1.0):
            raise ValueError("need 0 <= low_utilization < high_utilization <= 1")


class PoolAutoscaler:
    """Decides capacity deltas for one pool; the driver applies them.

    The contract with the driver (:class:`repro.fleet.cluster.ShardedFleet`):
    call :meth:`evaluate` at every tick with the pool's live view; a
    positive return is a capacity request the driver must bring online
    after :attr:`AutoscalerConfig.scale_up_lag_s` (then report via
    :meth:`capacity_online`); a negative return is an immediate shrink
    of free capacity.  The scaler keeps the pending-request and cooldown
    state; the arbiter keeps the grant invariant.

    Args:
        config: the scaling knobs.
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving one
            ``autoscale_up`` / ``autoscale_down`` event per non-zero
            decision.
        pool: pool index stamped on emitted events.
    """

    def __init__(
        self,
        config: AutoscalerConfig,
        tracer: Tracer | None = None,
        pool: int = -1,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.pool = pool
        self.pending = 0
        self.last_action_at: float | None = None
        self.scale_ups = 0
        self.scale_downs = 0

    def capacity_online(self, now: float, delta: int) -> None:
        """The driver brought ``delta`` requested executors online."""
        self.pending -= delta
        self.last_action_at = now

    def _cooldown_over(self, now: float) -> bool:
        if self.last_action_at is None:
            return True
        return now - self.last_action_at >= self.config.scale_down_cooldown_s

    def evaluate(self, now: float, view: PoolView) -> int:
        """Return the capacity delta to apply (0 = hold).

        Positive deltas update the scaler's own pending/cooldown state
        (the driver only schedules the online event); negative deltas
        update the cooldown clock.
        """
        cfg = self.config
        provisioned = view.capacity + self.pending
        utilization = view.in_use / view.capacity if view.capacity else 1.0

        queue_wait = 0.0
        if view.oldest_submit_time is not None:
            queue_wait = now - view.oldest_submit_time

        pressed = queue_wait >= cfg.queue_delay_threshold_s or (
            utilization >= cfg.high_utilization and view.queue_length > 0
        )
        if pressed and provisioned < cfg.max_capacity:
            # Demand-driven: grow toward what is reserved plus queued,
            # never past the ceiling, at most one step per decision.
            demand = view.in_use + view.queued_executors
            needed = demand - provisioned
            if needed > 0:
                delta = min(needed, cfg.scale_up_step, cfg.max_capacity - provisioned)
                self.pending += delta
                self.last_action_at = now
                self.scale_ups += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        TraceEvent(
                            now,
                            "autoscale_up",
                            self.pool,
                            data={"executors": delta, "pending": self.pending},
                        )
                    )
                return delta

        if (
            view.queue_length == 0
            and self.pending == 0
            and utilization <= cfg.low_utilization
            and view.capacity > cfg.min_capacity
            and self._cooldown_over(now)
        ):
            # Only free capacity can be decommissioned; the arbiter
            # additionally clamps at in-flight grants.
            delta = min(
                cfg.scale_down_step, view.capacity - cfg.min_capacity, view.free
            )
            if delta > 0:
                self.last_action_at = now
                self.scale_downs += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        TraceEvent(
                            now,
                            "autoscale_down",
                            self.pool,
                            data={"executors": delta},
                        )
                    )
                return -delta
        return 0

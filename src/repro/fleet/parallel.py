"""Multiprocess sharded serving: one OS process per pool.

:class:`~repro.fleet.cluster.ShardedFleet` multiplexes every pool on one
discrete-event heap in one process — correct, but serial.  Routing is
the only cross-pool coupling, and for routers that ignore live pool
state (``uses_pool_state = False``, e.g. round-robin) the placement of
every query is a pure function of the arrival stream.  That makes the
pools *independent simulations*: :class:`ProcessShardExecutor` keeps
the allocator and router in the parent, streams each pool its routed
submits over a queue, and lets ``multiprocessing`` workers drive the
pool runtimes in parallel on real cores.

**Determinism contract** (asserted in ``tests/fleet/test_parallel.py``):
on the same arrival stream, seed, and configuration, a multiprocess
serve produces a :class:`~repro.fleet.metrics.ClusterMetrics` equal to
the single-process :meth:`ShardedFleet.serve
<repro.fleet.cluster.ShardedFleet.serve>` — records bit-for-bit in
record mode, per-pool streaming accumulators bit-for-bit in streaming
mode.  The argument: each worker replays exactly the event subsequence
its pool saw in the shared heap.  Submits arrive in global submit
order; the worker's local heap uses the same ``(time, class, seq)``
key; the tick chain is re-anchored at the cluster-wide first admission
time and advanced by the identical repeated float addition (ticks
skipped while a pool is empty are no-ops there).  Per-pool metric folds
run in the pool's own finish order, which is what the single-process
driver uses too.

**Restrictions** (checked at construction / serve time):

- the router must declare ``uses_pool_state = False`` — the parent has
  no live pool state to offer;
- pools must be statically provisioned (no autoscalers — an
  autoscaler's signals are cross-pool via the shared tick);
- no tracer (a cluster-ordered trace would serialize the workers);
- arrivals must be time-ordered (the parent streams them; it cannot
  sort what it has not seen).

Two documented measure-zero caveats inherit from re-anchoring: a tick
landing on *exactly* the same float instant as a submit or pool event
may order differently than the shared heap would.  With continuous
arrival gaps and task durations such collisions have probability zero;
integer-timed synthetic streams should use the single-process driver
when byte-identity matters.

The allocator staying in the parent is the same separation the HTTP
serving layer exploits: :mod:`repro.serve` runs a
:class:`~repro.fleet.prediction.PredictionService` with no fleet behind
it at all, because the executor-count decision is a pure function of
the plan features — independent of which pool (or process) eventually
runs the query.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import traceback
from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.cluster import Cluster
from repro.fleet.arrivals import QueryArrival
from repro.fleet.cluster import PoolSpec
from repro.fleet.engine import (
    Allocator,
    FleetConfig,
    PoolRuntime,
    _raise_stalled,
    allocator_annotations,
    decision_fields,
)
from repro.fleet.metrics import ClusterMetrics, FleetMetrics
from repro.fleet.routing import (
    PoolView,
    Router,
    RoundRobinRouter,
    RoutingRequest,
)
from repro.workloads.generator import Workload

if TYPE_CHECKING:  # multiprocessing.Queue is a factory method, not a type
    from multiprocessing.queues import Queue as MpQueue

__all__ = ["ProcessShardExecutor"]

_INF = float("inf")


def _static_views(specs: Sequence[PoolSpec]) -> list[PoolView]:
    """Placeholder snapshots for state-blind routers.

    A ``uses_pool_state = False`` router may read only the static shape
    fields (``index``, ``capacity``, ``max_capacity``) and the pool
    count; the dynamic fields are frozen at their idle values.
    """
    return [
        PoolView(
            index=i,
            capacity=spec.capacity,
            max_capacity=spec.capacity,
            free=spec.capacity,
            in_use=0,
            queue_length=0,
            queued_executors=0,
            queued_work_seconds=0.0,
            active_queries=0,
        )
        for i, spec in enumerate(specs)
    ]


def _drive_shard(
    feed: MpQueue[tuple[object, ...]],
    pool_index: int,
    workload: Workload,
    spec: PoolSpec,
    cluster: Cluster,
    config: FleetConfig,
) -> FleetMetrics:
    """Replay one pool's event subsequence from the parent's feed.

    The feed carries ``("anchor", t)`` once (cluster-wide first
    admission time, for tick re-anchoring), then ``("batch", watermark,
    submits)`` messages — every submit this pool will ever receive with
    ``t_submit < watermark`` has been delivered — and finally
    ``("end",)``.  The local heap may only advance to events strictly
    below the watermark; anything at or past it waits for the next
    message.
    """
    counter = itertools.count()
    events: list[tuple[float, int, int, str, int, object]] = []

    def push(time: float, kind: str, q: int = -1, payload: object = None) -> None:
        heapq.heappush(events, (time, 1, next(counter), kind, q, payload))

    anchor: float | None = None
    last_tick: float | None = None
    ticking = False
    pending: deque = deque()
    watermark = -_INF
    end = False
    submitted = 0
    finished = 0

    def start_ticks(now: float) -> None:
        # Continue the cluster-wide tick chain: the single-process
        # driver anchors one chain at the first admission *anywhere*
        # and advances it by repeated float addition.  Replay the same
        # additions from the anchor (or from wherever the chain last
        # parked), skipping ticks that fell while this pool was empty —
        # no-ops on a static pool with nothing queued or running.
        nonlocal ticking
        if not config.wants_ticks or ticking:
            return
        ticking = True
        t = (anchor if last_tick is None else last_tick) + config.tick_interval
        while t <= now:
            t += config.tick_interval
        heapq.heappush(events, (t, 1, next(counter), "tick", -1, None))

    runtime = PoolRuntime(
        workload=workload,
        capacity=spec.capacity,
        cluster=cluster,
        admission=spec.admission,
        config=config,
        push=push,
        start_ticks=start_ticks,
        compiled={},
        max_capacity=spec.max_capacity,
        tracer=None,
        pool_index=pool_index,
    )

    def horizon() -> float:
        t = pending[0][0] if pending else _INF
        return min(t, events[0][0]) if events else t

    while True:
        while not end and horizon() >= watermark:
            msg = feed.get()
            tag = msg[0]
            if tag == "batch":
                watermark = msg[1]
                pending.extend(msg[2])
            elif tag == "anchor":
                anchor = msg[1]
            else:  # ("end", final_batch) — rides with the last submits so
                # the worker needs no further feed reads once it arrives.
                end = True
                watermark = _INF
                pending.extend(msg[1])
        if not pending and not events:
            break
        if pending and (not events or pending[0][0] <= events[0][0]):
            now, q, arrival, budget, cached, seconds, notes = pending.popleft()
            submitted += 1
            runtime.submit(now, q, arrival, budget, cached, seconds, notes)
            continue
        now, _, _, kind, q, payload = heapq.heappop(events)
        if kind == "driver_done":
            runtime.handle_driver_done(now, q)
        elif kind == "exec_arrive":
            runtime.handle_exec_arrive(now, q)
        elif kind == "task_done":
            if runtime.handle_task_done(now, q, payload):
                finished += 1
        elif kind == "exec_fail":
            runtime.handle_exec_fail(now, q, payload)
        elif kind == "tick":
            runtime.on_tick(now)
            last_tick = now
            if finished < submitted or pending or not end:
                if end and finished < submitted and not events and not pending:
                    _raise_stalled(runtime.arbiter, submitted - finished)
                heapq.heappush(
                    events,
                    (now + config.tick_interval, 1, next(counter), "tick", -1, None),
                )
            else:
                # Park the chain; a later admission resumes it from
                # last_tick with the same repeated additions.
                ticking = False

    if finished < submitted:
        unfinished = submitted - finished
        if runtime.arbiter.queue_length > 0:
            _raise_stalled(runtime.arbiter, unfinished)
        raise RuntimeError(
            f"shard {pool_index} ended with {unfinished} unfinished queries "
            f"(running: {runtime.unfinished_queries()}, "
            f"queued: {runtime.arbiter.queue_length})"
        )
    return runtime.finalize()


def _shard_worker(
    feed: MpQueue[tuple[object, ...]],
    results: MpQueue[tuple[int, FleetMetrics | None, str | None]],
    pool_index: int,
    workload: Workload,
    spec: PoolSpec,
    cluster: Cluster,
    config: FleetConfig,
) -> None:
    try:
        metrics = _drive_shard(feed, pool_index, workload, spec, cluster, config)
    except BaseException:
        results.put((pool_index, None, traceback.format_exc()))
    else:
        results.put((pool_index, metrics, None))


class ProcessShardExecutor:
    """Serve an arrival stream with one worker process per pool.

    Same construction surface as :class:`~repro.fleet.cluster
    .ShardedFleet` minus the tracer, plus the restrictions in the
    module docstring.  ``serve`` supports both record mode and
    streaming mode (via :attr:`FleetConfig.streaming`), with per-query
    spool files written by the worker that owns each pool.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        pools: per-pool shapes (``PoolSpec`` or plain int capacities);
            every pool must be statically provisioned.
        allocator: per-query executor-budget decision — runs in the
            *parent*, so it need not be picklable.
        router: placement policy; must declare ``uses_pool_state =
            False`` (default round-robin qualifies).
        cluster: node/executor shapes and provisioning lag (shared).
        config: fleet knobs (shared by every pool).
        batch_size: arrivals per feed message — a latency/throughput
            knob with no effect on results.
    """

    def __init__(
        self,
        workload: Workload,
        pools: Sequence[PoolSpec | int],
        allocator: Allocator,
        router: Router | None = None,
        cluster: Cluster = Cluster(),
        config: FleetConfig = FleetConfig(),
        batch_size: int = 512,
    ) -> None:
        specs = [
            spec if isinstance(spec, PoolSpec) else PoolSpec(capacity=int(spec))
            for spec in pools
        ]
        if not specs:
            raise ValueError("a sharded fleet needs at least one pool")
        for i, spec in enumerate(specs):
            if spec.autoscaler is not None:
                raise ValueError(
                    f"pool {i} is autoscaled: ProcessShardExecutor requires "
                    "statically provisioned pools (autoscaler signals are "
                    "cross-pool; use ShardedFleet)"
                )
        self.router: Router = router if router is not None else RoundRobinRouter()
        if getattr(self.router, "uses_pool_state", True):
            raise ValueError(
                f"router {self.router.name!r} uses live pool state, which a "
                "multiprocess parent does not hold; use a router with "
                "uses_pool_state = False (e.g. RoundRobinRouter) or the "
                "single-process ShardedFleet"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if config.feedback is not None:
            raise ValueError(
                "ProcessShardExecutor cannot run a feedback sink: the "
                "outcome loop mutates one shared model, and per-worker "
                "copies would silently diverge; use the single-process "
                "ShardedFleet for continual learning"
            )
        self.workload = workload
        self.pools = specs
        self.allocator = allocator
        self.cluster = cluster
        self.config = config
        self.batch_size = batch_size

    @property
    def n_pools(self) -> int:
        return len(self.pools)

    @property
    def max_budget(self) -> int:
        return max(spec.max_capacity for spec in self.pools)

    def serve(self, arrivals: Iterable[QueryArrival]) -> ClusterMetrics:
        """Play out the whole stream; returns the cluster's metrics."""
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            ctx = multiprocessing.get_context()
        n = self.n_pools
        config = self.config
        streaming = config.streaming
        # Bounded feeds give backpressure: a slow worker stalls the
        # parent instead of buffering the whole stream in its queue.
        feeds = [ctx.Queue(maxsize=64) for _ in range(n)]
        results = ctx.Queue()
        workers = [
            ctx.Process(
                target=_shard_worker,
                args=(
                    feeds[i],
                    results,
                    i,
                    self.workload,
                    self.pools[i],
                    self.cluster,
                    config,
                ),
                daemon=True,
            )
            for i in range(n)
        ]
        for w in workers:
            w.start()
        try:
            pool_of, placed_qs, total = self._dispatch(arrivals, feeds)
            metrics_by_pool: list[FleetMetrics | None] = [None] * n
            for _ in range(n):
                i, metrics, error = results.get()
                if error is not None:
                    raise RuntimeError(f"shard worker {i} failed:\n{error}")
                metrics_by_pool[i] = metrics
            for w in workers:
                w.join()
        finally:
            for w in workers:
                if w.is_alive():  # a parent-side error: don't leak workers
                    w.terminate()
        return self._assemble(metrics_by_pool, pool_of, placed_qs, total)

    # -- parent side ---------------------------------------------------

    def _dispatch(
        self,
        arrivals: Iterable[QueryArrival],
        feeds: Sequence[MpQueue[tuple[object, ...]]],
    ) -> tuple[dict[int, int], list[list[int]], int]:
        """Decide, route, and stream every submit to its pool's feed."""
        config = self.config
        record_mode = config.streaming is None
        views = _static_views(self.pools)
        estimates: dict[int, float | None] = {}
        # Submits replayed in global submit order: keyed by
        # (t_submit, stream position), exactly the shared heap's order
        # for submit events.
        reorder: list[tuple] = []
        batches: list[list[tuple]] = [[] for _ in feeds]
        pool_of: dict[int, int] = {}
        placed_qs: list[list[int]] = [[] for _ in feeds]
        anchor_sent = False

        def flush(limit: float) -> None:
            nonlocal anchor_sent
            while reorder and reorder[0][0] < limit:
                entry = heapq.heappop(reorder)
                t, pos, arrival, budget, cached, seconds, notes = entry
                if not anchor_sent:
                    # First submit == cluster-wide first admission: the
                    # tick-chain anchor every worker replays from.
                    for feed in feeds:
                        feed.put(("anchor", t))
                    anchor_sent = True
                chosen = self.router.pick(
                    RoutingRequest(
                        query_id=arrival.query_id,
                        app_id=arrival.app_id,
                        budget=budget,
                        estimated_runtime_seconds=estimates.pop(pos),
                        submit_time=t,
                    ),
                    views,
                )
                if not 0 <= chosen < self.n_pools:
                    raise ValueError(
                        f"router {self.router.name!r} picked pool {chosen} "
                        f"out of {self.n_pools}"
                    )
                if record_mode:
                    pool_of[pos] = chosen
                    placed_qs[chosen].append(pos)
                batches[chosen].append(entry)

        def send(watermark: float) -> None:
            for i, feed in enumerate(feeds):
                feed.put(("batch", watermark, batches[i]))
                batches[i] = []

        pos = 0
        last_t = 0.0
        for arrival in arrivals:
            t_arrive = arrival.arrival_time
            if t_arrive < last_t:
                raise ValueError(
                    "ProcessShardExecutor requires time-ordered arrivals"
                )
            last_t = t_arrive
            flush(t_arrive)
            if pos and pos % self.batch_size == 0:
                send(t_arrive)
            plan = self.workload.optimized_plan(arrival.query_id)
            decision = self.allocator(arrival.query_id, plan)
            budget, cached, seconds, estimate = decision_fields(
                decision, self.max_budget
            )
            notes = allocator_annotations(self.allocator, decision)
            estimates[pos] = estimate
            delay = seconds if config.charge_prediction_overhead else 0.0
            heapq.heappush(
                reorder,
                (t_arrive + delay, pos, arrival, budget, cached, seconds, notes),
            )
            pos += 1
        if pos == 0:
            raise ValueError("cannot serve an empty arrival stream")
        flush(_INF)
        for i, feed in enumerate(feeds):
            feed.put(("end", batches[i]))
            batches[i] = []
        return pool_of, placed_qs, pos

    def _assemble(
        self,
        metrics_by_pool: list[FleetMetrics],
        pool_of: dict[int, int],
        placed_qs: list[list[int]],
        total: int,
    ) -> ClusterMetrics:
        if self.config.streaming is None:
            by_q: dict[int, object] = {}
            for i, metrics in enumerate(metrics_by_pool):
                # finalize() emits records sorted by stream position.
                for q, record in zip(sorted(placed_qs[i]), metrics.records):
                    by_q[q] = record
            records = [by_q[q] for q in range(total)]
            placed = [pool_of[q] for q in range(total)]
            window = (
                min(r.arrival_time for r in records),
                max(r.finish_time for r in records),
            )
        else:
            records = []
            placed = []
            starts = [
                m.stats.first_arrival
                for m in metrics_by_pool
                if m.stats is not None and m.stats.first_arrival is not None
            ]
            ends = [
                m.stats.last_finish
                for m in metrics_by_pool
                if m.stats is not None and m.stats.last_finish is not None
            ]
            window = (min(starts), max(ends))
        # Same cluster-wide billing window the single-process driver
        # imposes; FleetMetrics derives everything lazily, so setting it
        # before first property access is equivalent to passing it into
        # finalize().
        for metrics in metrics_by_pool:
            metrics.serving_window = window
        return ClusterMetrics(pools=metrics_by_pool, records=records, pool_of=placed)

"""Routing policies: which pool serves the next arriving query.

A sharded fleet (:mod:`repro.fleet.cluster`) multiplexes arrivals across
several executor pools.  The router is consulted once per query, at
submit time (after the allocator has decided its executor budget and —
for predictive allocators — estimated its run time), with a live
snapshot of every pool; queued work is never re-routed, so the decision
is made exactly where a production gateway makes it: in front of the
queues, with only aggregate pool state to go on.

Three policies, in increasing order of information used:

- :class:`RoundRobinRouter` — cycles through pools, blind to load; the
  baseline every informed policy must beat.
- :class:`LeastQueuedRouter` — joins the shortest admission queue
  (ties: more free capacity, then lowest index) — the classic
  join-shortest-queue heuristic on queue *length*.
- :class:`CostAwareRouter` — scores each pool by the *work* ahead of
  the query, in predicted executor-seconds, using the
  :class:`~repro.fleet.prediction.PredictionService` run-time estimate
  that rides on each decision.  Occupancy dollars are
  placement-invariant (the same query occupies the same
  executor-seconds wherever it runs), so minimizing time-to-capacity is
  what cost-aware placement means here: less queueing for the same
  bill, and fewer scale-ups for the autoscaler to pay for.

The run-time estimate the cost-aware policy consumes is produced by the
same :class:`~repro.fleet.prediction.PredictionService` that backs the
HTTP serving layer (:mod:`repro.serve`): a deployment that routes on
``estimated_runtime_s`` from ``POST /v1/recommend`` is weighing queued
work with exactly the signal simulated here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = [
    "PoolView",
    "RoutingRequest",
    "Router",
    "RoundRobinRouter",
    "LeastQueuedRouter",
    "CostAwareRouter",
    "DEFAULT_RUNTIME_ESTIMATE_S",
]

#: Fallback per-query run-time estimate (seconds) when the allocator
#: carries none (static/oracle allocators return bare ints).
DEFAULT_RUNTIME_ESTIMATE_S = 60.0


@dataclass(frozen=True)
class PoolView:
    """Read-only snapshot of one pool, as the router sees it.

    Attributes:
        index: pool position in the cluster.
        capacity: current provisioned size (executors) — time-varying
            under an autoscaler.
        max_capacity: ceiling the pool may autoscale to.
        free: uncommitted capacity right now.
        in_use: executors reserved by admitted queries.
        queue_length: requests waiting for admission.
        queued_executors: total executor demand sitting in the queue.
        queued_work_seconds: predicted executor-seconds of queued work
            (budget × estimated run time per request, with
            :data:`DEFAULT_RUNTIME_ESTIMATE_S` standing in where the
            allocator provided no estimate).
        active_queries: admitted queries still running.
        oldest_submit_time: submit time of the longest-waiting queued
            request (``None`` on an empty queue) — the autoscaler's
            queue-delay signal.
    """

    index: int
    capacity: int
    max_capacity: int
    free: int
    in_use: int
    queue_length: int
    queued_executors: int
    queued_work_seconds: float
    active_queries: int
    oldest_submit_time: float | None = None


@dataclass(frozen=True)
class RoutingRequest:
    """One query to place: its identity, budget, and runtime estimate."""

    query_id: str
    app_id: int
    budget: int
    estimated_runtime_seconds: float | None
    submit_time: float

    @property
    def runtime_estimate(self) -> float:
        if self.estimated_runtime_seconds is None:
            return DEFAULT_RUNTIME_ESTIMATE_S
        return float(self.estimated_runtime_seconds)


class Router(Protocol):
    """Chooses the pool that serves a query.

    ``uses_pool_state`` declares whether :meth:`pick` reads the live
    :class:`PoolView` snapshots.  Routers that ignore them (round-robin)
    can be driven by a parent process that holds no pool state at all —
    the precondition :class:`~repro.fleet.parallel.ProcessShardExecutor`
    checks before fanning pools out to workers.  Policies that omit the
    attribute are conservatively assumed to use pool state.
    """

    name: str
    uses_pool_state: bool

    def pick(self, request: RoutingRequest, pools: Sequence[PoolView]) -> int:
        """Return the index of the pool to submit ``request`` to."""
        ...  # pragma: no cover


class RoundRobinRouter:
    """Cycle through pools in index order, ignoring load."""

    name = "round_robin"
    uses_pool_state = False

    def __init__(self) -> None:
        self._next = 0

    def pick(self, request: RoutingRequest, pools: Sequence[PoolView]) -> int:
        chosen = self._next % len(pools)
        self._next = chosen + 1
        return chosen


class LeastQueuedRouter:
    """Join the shortest admission queue.

    Pools too small to ever grant the query's full budget (their
    ``max_capacity`` is below it) are considered last — on a
    heterogeneous cluster a budget should not be silently truncated to
    a small pool while a big one sits available.  Among same-size-class
    pools the key is queue length, then queued executor demand, then
    the most free capacity, then the lowest index — so an idle cluster
    degrades to filling pools in index order, deterministically.
    """

    name = "least_queued"
    uses_pool_state = True

    def pick(self, request: RoutingRequest, pools: Sequence[PoolView]) -> int:
        return min(
            range(len(pools)),
            key=lambda i: (
                pools[i].max_capacity < request.budget,
                pools[i].queue_length,
                pools[i].queued_executors,
                -pools[i].free,
                i,
            ),
        )


class CostAwareRouter:
    """Place each query where the least predicted work stands before it.

    Every pool is scored by the executor-seconds the arriving query
    would wait behind, normalized by the pool's service rate (its
    current capacity): the queued work already committed to the pool,
    plus whatever part of this query's own predicted demand
    (``budget × estimated runtime``) exceeds the pool's free capacity
    right now.  A pool that can admit the query immediately scores
    zero; among those, the *best fit* (smallest sufficient ``free``)
    wins, keeping large contiguous capacity available for the big
    requests the prediction service will route later.  Pools whose
    ``max_capacity`` cannot cover the budget at all rank last — the
    budget would be silently truncated there (see
    :meth:`~repro.fleet.engine.PoolRuntime.submit`).
    """

    name = "cost_aware"
    uses_pool_state = True

    def pick(self, request: RoutingRequest, pools: Sequence[PoolView]) -> int:
        estimate = request.runtime_estimate

        def score(view: PoolView) -> tuple:
            undersized = view.max_capacity < request.budget
            fits_now = view.queue_length == 0 and view.free >= request.budget
            if fits_now:
                # Immediate admission: best fit first, index for ties.
                return (undersized, 0.0, view.free, view.index)
            overflow = max(0, request.budget - view.free)
            work_ahead = view.queued_work_seconds + overflow * estimate
            return (
                undersized,
                work_ahead / max(1, view.capacity),
                view.free,
                view.index,
            )

        return min(range(len(pools)), key=lambda i: score(pools[i]))

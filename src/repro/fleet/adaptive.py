"""Continual learning for the fleet: close prediction → outcome → retrain.

The paper trains the price-performance model offline and serves it
frozen, but its own input-size-change scenario (fig. 14; reproduced in
``benchmarks/test_fig14_input_size_change.py``) shows exactly how that
fails in production: input sizes grow, predictions drift, and the fleet
over- or under-provisions until someone retrains.  This module closes
the loop the ROADMAP names — the fleet already generates exactly the
(features, true runtime) pairs the training pipeline consumes:

- every finished query's outcome flows into a **bounded,
  seed-deterministic replay buffer** (:class:`ReplayBuffer`, reservoir
  sampling) through the fleet's :class:`~repro.fleet.engine.FeedbackSink`
  hook (:attr:`FleetConfig.feedback <repro.fleet.engine.FleetConfig>`);
- a **drift detector** (:class:`DriftDetector`) watches the rolling
  relative error between the predicted and observed run time and raises
  a ``drift_alarm`` when the windowed mean crosses its threshold;
- **retraining** runs the existing production pipeline
  (:func:`repro.core.training.build_training_dataset_from_logs` over the
  buffered plans + execution logs) on a drift- or count-triggered
  cadence, producing a candidate :class:`~repro.core.parameter_model
  .ParameterModel`;
- the candidate **shadow-scores** live traffic against the incumbent for
  a validation window — both models predict each finished query's run
  time at its granted budget, nobody's decisions change — and is
  **promoted** (hot-swapped behind the
  :class:`~repro.fleet.prediction.PredictionService`, with
  generation-tagged cache invalidation) only if it wins;
- every retraining pass is **billed**: a deterministic modeled
  executor-second cost per training point accumulates into
  :class:`~repro.fleet.metrics.AdaptiveStats` and is priced into
  :attr:`FleetMetrics.total_dollar_cost
  <repro.fleet.metrics.FleetMetrics>`, so adaptive-vs-frozen
  comparisons include what adaptation costs.

Determinism contract: the controller never reads the wall clock — every
event it emits carries the simulation-clock instant the feedback hook
fired at, and the retraining bill is modeled, not measured.  The only
randomness is the replay buffer's seeded reservoir; same seed + same
finish stream ⇒ byte-identical buffer contents, retrain points, and
promoted models, and a controller that never retrains serves
bit-identically to the frozen fleet (``tests/fleet/test_adaptive.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.features import QueryFeatures
from repro.core.training import build_training_dataset_from_logs
from repro.engine.plan import LogicalPlan
from repro.fleet.metrics import AdaptiveStats, QueryRecord
from repro.fleet.prediction import PPMScorer, PredictionService
from repro.ml.forest import RandomForestRegressor
from repro.obs.trace import TraceEvent, Tracer
from repro.sparklens.log import ExecutionLog

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "DriftDetector",
    "ReplayBuffer",
    "ReplayPoint",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for the continual-learning loop.

    Attributes:
        seed: the replay buffer's reservoir seed — the loop's only
            randomness.
        buffer_capacity: replay-buffer bound (points kept for
            retraining; reservoir sampling keeps a uniform sample of the
            whole finish stream once it overflows).
        min_retrain_points: retraining never runs on fewer buffered
            points than this, whatever triggered it — a model fitted on
            a handful of queries would be noise.
        retrain_interval: count cadence — retrain after this many
            observations since the last retrain (``None``, the default,
            retrains on drift alarms only).
        drift_window: observations in the drift detector's rolling
            window.
        drift_threshold: windowed mean relative error that raises a
            ``drift_alarm`` (``|predicted − observed| / observed``).
        shadow_window: finished queries a retrained candidate
            shadow-scores before the promote-or-reject decision.
        promote_margin: promote when ``candidate_error ≤ margin ×
            incumbent_error`` over the shadow window (1.0 = candidate
            must be at least as good).
        family: PPM family retraining fits (same choices as
            :meth:`repro.core.training.TrainingDataset
            .fit_parameter_model`).
        n_estimators: forest size for retrained models (the paper's 100
            is the offline default; online retraining may trade a few
            trees for cadence).
        retrain_cost_executor_seconds_per_point: the modeled
            executor-seconds one training point costs (Sparklens
            augmentation + curve fits + forest training, expressed as
            cluster work).  Deterministic by construction — the dollar
            gates in the adaptive bench must not depend on host speed.
    """

    seed: int = 0
    buffer_capacity: int = 512
    min_retrain_points: int = 24
    retrain_interval: int | None = None
    drift_window: int = 32
    drift_threshold: float = 0.75
    shadow_window: int = 24
    promote_margin: float = 1.0
    family: str = "power_law"
    n_estimators: int = 100
    retrain_cost_executor_seconds_per_point: float = 0.5

    def __post_init__(self) -> None:
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be positive")
        if self.min_retrain_points < 1:
            raise ValueError("min_retrain_points must be positive")
        if self.retrain_interval is not None and self.retrain_interval < 1:
            raise ValueError("retrain_interval must be positive (or None)")
        if self.drift_window < 1:
            raise ValueError("drift_window must be positive")
        if self.drift_threshold <= 0.0:
            raise ValueError("drift_threshold must be positive")
        if self.shadow_window < 1:
            raise ValueError("shadow_window must be positive")
        if self.promote_margin <= 0.0:
            raise ValueError("promote_margin must be positive")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        if self.retrain_cost_executor_seconds_per_point < 0.0:
            raise ValueError("retrain cost per point cannot be negative")


@dataclass(frozen=True)
class ReplayPoint:
    """One observed outcome, held for retraining.

    The pair the training pipeline consumes is ``(plan, log)``; the
    rest is the loop's own bookkeeping (drift scoring, diagnostics).
    """

    index: int
    query_id: str
    features: QueryFeatures
    plan: LogicalPlan
    log: ExecutionLog
    observed_runtime_seconds: float
    predicted_runtime_seconds: float | None


class ReplayBuffer:
    """Bounded, seed-deterministic reservoir of training points.

    Algorithm-R reservoir sampling: the first ``capacity`` points fill
    the buffer; the *n*-th point thereafter replaces a uniformly chosen
    slot with probability ``capacity / n``, so the buffer is always a
    uniform sample of everything observed — old-regime points decay
    naturally as a shifted workload streams in, without the cliff of a
    plain ring buffer.  All randomness comes from one seeded generator:
    the same seed and the same add stream reproduce the buffer byte for
    byte.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._points: list[ReplayPoint] = []
        self.observed = 0

    def add(self, point: ReplayPoint) -> bool:
        """Offer one point; returns whether the buffer retained it."""
        self.observed += 1
        if len(self._points) < self.capacity:
            self._points.append(point)
            return True
        slot = int(self._rng.integers(0, self.observed))
        if slot < self.capacity:
            self._points[slot] = point
            return True
        return False

    @property
    def points(self) -> list[ReplayPoint]:
        """The retained points (slot order — stable for determinism)."""
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)


class DriftDetector:
    """Rolling-window alarm on relative prediction error.

    Folds each observation's ``|predicted − observed| / observed`` into
    a window of the last ``window`` errors; once the window is full and
    its mean exceeds ``threshold``, :meth:`observe` returns ``True`` and
    the window resets — the detector re-fills before it can alarm
    again, so one sustained shift raises one alarm per window, not one
    per query.
    """

    def __init__(self, window: int, threshold: float) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        self.window = int(window)
        self.threshold = float(threshold)
        self._errors: deque[float] = deque(maxlen=self.window)
        self.alarms = 0
        self.last_mean = 0.0

    def observe(self, relative_error: float) -> bool:
        """Fold one error in; returns ``True`` when this one alarms."""
        self._errors.append(float(relative_error))
        if len(self._errors) < self.window:
            return False
        self.last_mean = sum(self._errors) / len(self._errors)
        if self.last_mean <= self.threshold:
            return False
        self.alarms += 1
        self._errors.clear()
        return True


class _ShadowTrial:
    """One candidate model's validation window on live traffic.

    Both models predict each finished query's run time at the budget it
    actually ran on; nobody's decisions change while the trial runs.
    Errors accumulate as mean relative error over the window.
    """

    __slots__ = (
        "incumbent",
        "candidate",
        "window",
        "scored",
        "incumbent_error_sum",
        "candidate_error_sum",
    )

    def __init__(
        self, incumbent: PPMScorer, candidate: PPMScorer, window: int
    ) -> None:
        self.incumbent = incumbent
        self.candidate = candidate
        self.window = int(window)
        self.scored = 0
        self.incumbent_error_sum = 0.0
        self.candidate_error_sum = 0.0

    @staticmethod
    def _predict(scorer: PPMScorer, features: QueryFeatures, n: int) -> float:
        curve = scorer.predict_ppm(features).predict_curve([n])
        return float(np.asarray(curve)[0])

    def score(self, features: QueryFeatures, executors: int, observed: float) -> bool:
        """Score one finished query; returns ``True`` when the window
        is complete."""
        if observed > 0.0:
            incumbent = self._predict(self.incumbent, features, executors)
            candidate = self._predict(self.candidate, features, executors)
            self.incumbent_error_sum += abs(incumbent - observed) / observed
            self.candidate_error_sum += abs(candidate - observed) / observed
            self.scored += 1
        return self.scored >= self.window

    @property
    def incumbent_error(self) -> float:
        return self.incumbent_error_sum / self.scored if self.scored else 0.0

    @property
    def candidate_error(self) -> float:
        return self.candidate_error_sum / self.scored if self.scored else 0.0


class AdaptiveController:
    """The continual-learning loop behind a :class:`PredictionService`.

    Attach as :attr:`FleetConfig.feedback
    <repro.fleet.engine.FleetConfig>` (with ``record_logs=True`` — the
    retraining pipeline consumes each finished query's execution log)
    while the same service's :meth:`~repro.fleet.prediction
    .PredictionService.allocate` serves as the fleet's allocator::

        service = PredictionService.from_autoexecutor(system)
        controller = AdaptiveController(service, AdaptiveConfig(seed=7))
        config = FleetConfig(record_logs=True, feedback=controller)
        engine = FleetEngine(
            workload, capacity=64, allocator=service.allocate, config=config
        )

    Lifecycle per finished query (:meth:`observe`, called by the fleet
    on the simulation clock): buffer the outcome → fold the prediction
    error into the drift detector (``drift_alarm`` on a threshold
    crossing) → advance any running shadow trial (promote or reject at
    the end of its window) → otherwise retrain if a drift alarm is
    pending or the count cadence is due (``model_retrain``; the new
    model enters shadow).  Promotion hot-swaps the scorer
    (``model_promote``), bumping the service's generation so every
    memoized decision is invalidated at once.

    Args:
        service: the live prediction service to retrain behind.
        config: loop knobs (:class:`AdaptiveConfig`).
        tracer: optional tracer for the loop's three event kinds —
            typically the same tracer the fleet engine uses, so alarms
            and swaps interleave with query lifecycle events on one
            timeline.
    """

    def __init__(
        self,
        service: PredictionService,
        config: AdaptiveConfig = AdaptiveConfig(),
        tracer: Tracer | None = None,
    ) -> None:
        self.service = service
        self.config = config
        self.tracer = tracer
        self.buffer = ReplayBuffer(config.buffer_capacity, seed=config.seed)
        self.drift = DriftDetector(config.drift_window, config.drift_threshold)
        self.observations = 0
        self.retrains = 0
        self.promotions = 0
        self.rejections = 0
        self.retrain_points = 0
        self.retrain_executor_seconds = 0.0
        self._since_retrain = 0
        self._drift_pending = False
        self._shadow: _ShadowTrial | None = None

    # --- the FeedbackSink hook -------------------------------------------
    def observe(
        self,
        now: float,
        record: QueryRecord,
        predicted_runtime_seconds: float | None,
        plan: LogicalPlan,
    ) -> None:
        """Fold one finished query into the loop (fleet-called)."""
        log = record.execution_log
        if log is None:
            raise ValueError(
                "adaptive mode needs FleetConfig(record_logs=True): "
                "retraining consumes each finished query's ExecutionLog"
            )
        self.observations += 1
        self._since_retrain += 1
        features = QueryFeatures.from_plan(plan)
        observed = record.run_seconds
        self.buffer.add(
            ReplayPoint(
                index=self.observations - 1,
                query_id=record.query_id,
                features=features,
                plan=plan,
                log=log,
                observed_runtime_seconds=observed,
                predicted_runtime_seconds=predicted_runtime_seconds,
            )
        )
        if predicted_runtime_seconds is not None and observed > 0.0:
            error = abs(predicted_runtime_seconds - observed) / observed
            if self.drift.observe(error):
                self._drift_pending = True
                self._emit(
                    now,
                    "drift_alarm",
                    {
                        "mean_relative_error": self.drift.last_mean,
                        "threshold": self.config.drift_threshold,
                        "window": self.config.drift_window,
                        "observations": self.observations,
                    },
                )
        shadow = self._shadow
        if shadow is not None:
            if shadow.score(features, record.executors_granted, observed):
                self._resolve_shadow(now)
        elif self._should_retrain():
            self._retrain(now)

    # --- retraining -------------------------------------------------------
    def _should_retrain(self) -> bool:
        if len(self.buffer) < self.config.min_retrain_points:
            return False
        if self._drift_pending:
            return True
        interval = self.config.retrain_interval
        return interval is not None and self._since_retrain >= interval

    def _retrain(self, now: float) -> None:
        """Fit a candidate from the buffer and start its shadow trial."""
        points = self.buffer.points
        dataset = build_training_dataset_from_logs(
            [p.plan for p in points], [p.log for p in points]
        )
        candidate = dataset.fit_parameter_model(
            self.config.family,
            estimator=RandomForestRegressor(
                n_estimators=self.config.n_estimators, random_state=0
            ),
        )
        self.retrains += 1
        self.retrain_points += len(points)
        cost = (
            len(points) * self.config.retrain_cost_executor_seconds_per_point
        )
        self.retrain_executor_seconds += cost
        triggered_by_drift = self._drift_pending
        self._since_retrain = 0
        self._drift_pending = False
        self._shadow = _ShadowTrial(
            incumbent=self.service.scorer,
            candidate=candidate,
            window=self.config.shadow_window,
        )
        self._emit(
            now,
            "model_retrain",
            {
                "points": len(points),
                "cost_executor_seconds": cost,
                "trigger": "drift" if triggered_by_drift else "interval",
                "retrains": self.retrains,
            },
        )

    def _resolve_shadow(self, now: float) -> None:
        """Promote or reject the candidate at the end of its window."""
        trial = self._shadow
        assert trial is not None
        self._shadow = None
        incumbent_error = trial.incumbent_error
        candidate_error = trial.candidate_error
        if candidate_error <= self.config.promote_margin * incumbent_error:
            generation = self.service.swap_scorer(trial.candidate)
            self.promotions += 1
            self._emit(
                now,
                "model_promote",
                {
                    "generation": generation,
                    "incumbent_error": incumbent_error,
                    "candidate_error": candidate_error,
                    "shadow_window": trial.scored,
                },
            )
        else:
            self.rejections += 1

    # --- reporting --------------------------------------------------------
    def stats_snapshot(self) -> AdaptiveStats:
        """The ledger the fleet drivers attach to their metrics."""
        return AdaptiveStats(
            observations=self.observations,
            drift_alarms=self.drift.alarms,
            retrains=self.retrains,
            promotions=self.promotions,
            rejections=self.rejections,
            model_generation=self.service.generation,
            buffer_size=len(self.buffer),
            retrain_points=self.retrain_points,
            retrain_executor_seconds=self.retrain_executor_seconds,
            last_drift_error=self.drift.last_mean,
        )

    def _emit(self, now: float, kind: str, data: dict[str, object]) -> None:
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, kind, data=data))

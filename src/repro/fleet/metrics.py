"""Fleet-level serving metrics.

Single-query experiments report run time and AUC; a shared pool serving a
stream needs the serving-systems view on top: latency *distributions*
(p50/p95/p99 — tail latency is what concurrency degrades first), queueing
delay (time spent waiting for capacity, zero on an idle pool), pool
utilization, and the total dollar cost of every executor-second held.

Cost uses the paper's metric — total executor occupancy, ``∫ n_s ds`` —
priced at the testbed's rate: Azure Synapse bills per vCore-hour, so a
4-core executor accrues ``4 × $0.15`` per hour by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.skyline import Skyline

__all__ = [
    "DEFAULT_PRICE_PER_CORE_HOUR",
    "QueryRecord",
    "FleetMetrics",
]

#: Azure Synapse Spark pricing ballpark: $0.15 per vCore-hour.
DEFAULT_PRICE_PER_CORE_HOUR = 0.15


@dataclass(frozen=True)
class QueryRecord:
    """One served query's lifecycle on the fleet clock.

    Attributes:
        query_id: workload query that ran.
        app_id: owning application.
        arrival_time: when the query entered the system.
        admit_time: when the arbiter granted its executor budget.
        finish_time: when its last stage completed.
        executors_granted: the admitted budget.
        auc: executor occupancy of the run (executor-seconds actually
            held, after provisioning lag and idle releases).
        prediction_cached: whether the allocator's decision came from the
            prediction memo cache (``None`` for non-predictive allocators).
        prediction_seconds: measured selection overhead charged to the
            query before admission.
        skyline: the query's own allocated-executor step function (on the
            fleet clock) — for a fleet of one on an uncontended pool this
            is bit-identical to ``simulate_query``'s skyline, the
            differential-parity contract the engine tests assert.
    """

    query_id: str
    app_id: int
    arrival_time: float
    admit_time: float
    finish_time: float
    executors_granted: int
    auc: float
    prediction_cached: bool | None = None
    prediction_seconds: float = 0.0
    skyline: Skyline | None = None

    @property
    def latency(self) -> float:
        """End-to-end seconds the user waited (arrival → finish)."""
        return self.finish_time - self.arrival_time

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for capacity (arrival → admission)."""
        return self.admit_time - self.arrival_time

    @property
    def run_seconds(self) -> float:
        """Execution seconds once admitted (admission → finish)."""
        return self.finish_time - self.admit_time


@dataclass
class FleetMetrics:
    """Aggregate outcome of one fleet run.

    Attributes:
        capacity: pool size (executors).
        cores_per_executor: executor width, for dollar pricing.
        records: one :class:`QueryRecord` per served query, stream order.
        pool_skyline: reserved-capacity step function over the run — the
            arbiter's outstanding grants; its peak must never exceed
            ``capacity``.
        price_per_core_hour: billing rate for the dollar-cost metric.
    """

    capacity: int
    cores_per_executor: int
    records: list[QueryRecord] = field(default_factory=list)
    pool_skyline: Skyline = field(default_factory=Skyline)
    price_per_core_hour: float = DEFAULT_PRICE_PER_CORE_HOUR

    @property
    def n_queries(self) -> int:
        return len(self.records)

    @property
    def makespan(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_time for r in self.records)
        end = max(r.finish_time for r in self.records)
        return end - start

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of end-to-end query latency."""
        if not self.records:
            return 0.0
        return float(
            np.percentile([r.latency for r in self.records], q)
        )

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_queue_delay(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.queue_delay for r in self.records]))

    @property
    def max_queue_delay(self) -> float:
        if not self.records:
            return 0.0
        return max(r.queue_delay for r in self.records)

    @property
    def peak_pool_usage(self) -> int:
        """Most executors ever reserved at one instant."""
        return self.pool_skyline.max_executors

    @property
    def capacity_respected(self) -> bool:
        """The fleet's core invariant: grants never exceeded the pool."""
        return self.peak_pool_usage <= self.capacity

    @property
    def total_executor_seconds(self) -> float:
        """Summed executor occupancy across all queries (the paper's AUC
        cost metric, fleet-wide)."""
        return sum(r.auc for r in self.records)

    @property
    def total_dollar_cost(self) -> float:
        core_hours = (
            self.total_executor_seconds * self.cores_per_executor / 3600.0
        )
        return core_hours * self.price_per_core_hour

    def utilization(self) -> float:
        """Mean fraction of the pool reserved over the makespan."""
        span = self.makespan
        if span <= 0 or not self.records:
            return 0.0
        start = min(r.arrival_time for r in self.records)
        end = max(r.finish_time for r in self.records)
        reserved = self.pool_skyline.auc(end) - self.pool_skyline.auc(start)
        return reserved / (self.capacity * span)

    def prediction_cache_hit_rate(self) -> float:
        """Fraction of predictive decisions served from the memo cache."""
        flagged = [
            r.prediction_cached
            for r in self.records
            if r.prediction_cached is not None
        ]
        if not flagged:
            return 0.0
        return float(np.mean(flagged))

    def summary(self) -> dict[str, float]:
        """The headline numbers as a flat dict (benchmark-friendly)."""
        return {
            "n_queries": float(self.n_queries),
            "makespan_s": self.makespan,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "mean_queue_delay_s": self.mean_queue_delay,
            "max_queue_delay_s": self.max_queue_delay,
            "peak_pool_usage": float(self.peak_pool_usage),
            "utilization": self.utilization(),
            "total_executor_seconds": self.total_executor_seconds,
            "total_dollar_cost": self.total_dollar_cost,
            "prediction_cache_hit_rate": self.prediction_cache_hit_rate(),
        }

    def describe(self) -> str:
        """A human-readable one-run report."""
        s = self.summary()
        lines = [
            f"queries served        {self.n_queries}",
            f"makespan              {s['makespan_s']:10.1f} s",
            f"latency p50/p95/p99   {s['p50_latency_s']:.1f} / "
            f"{s['p95_latency_s']:.1f} / {s['p99_latency_s']:.1f} s",
            f"mean queueing delay   {s['mean_queue_delay_s']:10.1f} s",
            f"max queueing delay    {s['max_queue_delay_s']:10.1f} s",
            f"peak pool usage       {self.peak_pool_usage}/{self.capacity} "
            f"executors",
            f"pool utilization      {s['utilization']:10.1%}",
            f"executor-seconds      {s['total_executor_seconds']:10.0f}",
            f"total cost            ${s['total_dollar_cost']:9.2f}",
            f"prediction cache hit  {s['prediction_cache_hit_rate']:10.1%}",
        ]
        return "\n".join(lines)

"""Fleet-level serving metrics.

Single-query experiments report run time and AUC; a shared pool serving a
stream needs the serving-systems view on top: latency *distributions*
(p50/p95/p99 — tail latency is what concurrency degrades first), queueing
delay (time spent waiting for capacity, zero on an idle pool), pool
utilization, and the total dollar cost of every executor-second held.

Cost uses the paper's metric — total executor occupancy, ``∫ n_s ds`` —
priced at the testbed's rate: Azure Synapse bills per vCore-hour, so a
4-core executor accrues ``4 × $0.15`` per hour by default.  Pools whose
capacity is elastic (a :class:`repro.fleet.autoscaler.PoolAutoscaler`
resizing them) additionally carry a *capacity skyline*, and their bill
charges autoscaled-but-idle capacity too: every provisioned
executor-second is paid for, whether a query occupied it or not.

:class:`ClusterMetrics` rolls many pools' :class:`FleetMetrics` up into
the sharded-fleet view (:mod:`repro.fleet.cluster`): cluster-wide
latency percentiles and queue delays over all served queries, plus
summed occupancy, idle-capacity, and dollar costs.

**Streaming mode.**  A record-backed :class:`FleetMetrics` is exact but
O(n) memory per serve.  Under :attr:`FleetConfig.streaming
<repro.fleet.engine.FleetConfig>` the fleet drivers instead fold each
finished query into a :class:`PoolStreamStats` — latency/queue-delay
distributions in :class:`~repro.obs.sketch.QuantileSketch` histograms,
occupancy/billing/fault totals in incremental accumulators, and the
pool/capacity skylines reduced to O(1) :class:`SkylineTracker` state —
and every property below answers from that state instead of the (empty)
record list.  Counts, sums, extrema, windows, and costs are exact;
percentiles carry the sketch's relative-accuracy bound.  Records are
opt-in via JSONL spooling (:meth:`QueryRecord.to_json` /
:func:`read_spooled_records`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Iterable, Sequence

import numpy as np

from repro.engine.faults import FaultStats
from repro.engine.skyline import Skyline
from repro.obs.metrics import StreamingFleetStats
from repro.sparklens.log import ExecutionLog

__all__ = [
    "DEFAULT_PRICE_PER_CORE_HOUR",
    "AdaptiveStats",
    "QueryRecord",
    "SkylineTracker",
    "PoolStreamStats",
    "FleetMetrics",
    "ClusterMetrics",
    "read_spooled_records",
]

#: Azure Synapse Spark pricing ballpark: $0.15 per vCore-hour.
DEFAULT_PRICE_PER_CORE_HOUR = 0.15


@dataclass(frozen=True)
class QueryRecord:
    """One served query's lifecycle on the fleet clock.

    Attributes:
        query_id: workload query that ran.
        app_id: owning application.
        arrival_time: when the query entered the system.
        admit_time: when the arbiter granted its executor budget.
        finish_time: when its last stage completed.
        executors_granted: the admitted budget.
        auc: executor occupancy of the run (executor-seconds actually
            held, after provisioning lag and idle releases).
        prediction_cached: whether the allocator's decision came from the
            prediction memo cache (``None`` for non-predictive allocators).
        prediction_seconds: measured selection overhead charged to the
            query before admission.
        skyline: the query's own allocated-executor step function (on the
            fleet clock) — for a fleet of one on an uncontended pool this
            is bit-identical to ``simulate_query``'s skyline, the
            differential-parity contract the engine tests assert.
        fault_stats: the query's fault ledger (crashes, retries, wasted
            work, spot/on-demand split) when the fleet ran under an
            active :class:`~repro.engine.faults.FaultPlan`; ``None`` on
            unperturbed runs.
        annotations: structured allocator metadata, populated uniformly
            by every fleet driver: at least ``"policy"`` (the
            allocator's name) and ``"predicted_executors"`` (the
            decision before pool clamping) — the same fields the trace
            analyzer reports, and the fleet-side mirror of
            :attr:`repro.engine.metrics.QueryTelemetry.annotations`.
        execution_log: the engine's own observed-duration log, captured
            when :attr:`FleetConfig.record_logs
            <repro.fleet.engine.FleetConfig>` is on (``None``
            otherwise).  Excluded from record equality — the parity
            contracts compare serving outcomes, and logs hold numpy
            arrays.
    """

    query_id: str
    app_id: int
    arrival_time: float
    admit_time: float
    finish_time: float
    executors_granted: int
    auc: float
    prediction_cached: bool | None = None
    prediction_seconds: float = 0.0
    skyline: Skyline | None = None
    fault_stats: FaultStats | None = None
    annotations: dict[str, object] = field(default_factory=dict)
    execution_log: ExecutionLog | None = field(default=None, compare=False)

    @property
    def latency(self) -> float:
        """End-to-end seconds the user waited (arrival → finish)."""
        return self.finish_time - self.arrival_time

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for capacity (arrival → admission)."""
        return self.admit_time - self.arrival_time

    @property
    def run_seconds(self) -> float:
        """Execution seconds once admitted (admission → finish)."""
        return self.finish_time - self.admit_time

    def to_json(self) -> str:
        """One deterministic JSON object (fixed key order, compact) —
        the spool-line format streaming serves write.

        Scalars, annotations, and the fault ledger round-trip exactly;
        the skyline and execution log are deliberately dropped (they are
        the O(n)-memory payload streaming mode exists to avoid) and come
        back as ``None`` from :meth:`from_json`.  Same conventions as
        :meth:`repro.obs.trace.TraceEvent.to_json`.
        """
        return json.dumps(
            {
                "query_id": self.query_id,
                "app_id": self.app_id,
                "arrival_time": self.arrival_time,
                "admit_time": self.admit_time,
                "finish_time": self.finish_time,
                "executors_granted": self.executors_granted,
                "auc": self.auc,
                "prediction_cached": self.prediction_cached,
                "prediction_seconds": self.prediction_seconds,
                "fault_stats": (
                    None
                    if self.fault_stats is None
                    else self.fault_stats.as_dict()
                ),
                "annotations": self.annotations,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "QueryRecord":
        """Parse one :meth:`to_json` spool line back into a record."""
        obj = json.loads(line)
        fault = obj.get("fault_stats")
        if fault is not None:
            fault = FaultStats(
                crashes=int(fault["crashes"]),
                reclamations=int(fault["reclamations"]),
                replacements=int(fault["replacements"]),
                tasks_started=int(fault["tasks_started"]),
                tasks_killed=int(fault["tasks_killed"]),
                wasted_task_seconds=float(fault["wasted_task_seconds"]),
                spot_executor_seconds=float(fault["spot_executor_seconds"]),
                ondemand_executor_seconds=float(
                    fault["ondemand_executor_seconds"]
                ),
                spot_discount=float(fault["spot_discount"]),
            )
        return cls(
            query_id=obj["query_id"],
            app_id=int(obj["app_id"]),
            arrival_time=float(obj["arrival_time"]),
            admit_time=float(obj["admit_time"]),
            finish_time=float(obj["finish_time"]),
            executors_granted=int(obj["executors_granted"]),
            auc=float(obj["auc"]),
            prediction_cached=obj.get("prediction_cached"),
            prediction_seconds=float(obj.get("prediction_seconds", 0.0)),
            fault_stats=fault,
            annotations=obj.get("annotations") or {},
        )


def read_spooled_records(
    path_or_file: str | os.PathLike | IO[str] | Iterable[str],
) -> list[QueryRecord]:
    """Load a streaming serve's JSONL record spool, file order.

    Accepts a path (one pool's ``pool_<i>.jsonl`` spool file) or any
    iterable of lines; mirrors :func:`repro.obs.trace.read_jsonl`.
    """
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, encoding="utf-8") as handle:
            return [
                QueryRecord.from_json(line) for line in handle if line.strip()
            ]
    return [
        QueryRecord.from_json(line) for line in path_or_file if line.strip()
    ]


class SkylineTracker:
    """O(1) streaming stand-in for a recorded :class:`Skyline`.

    A full skyline keeps every ``(time, count)`` step — one per grant or
    release, unbounded over a long serve.  The streaming serve only ever
    needs four derived quantities (running integral, current step, peak,
    and windowed area), so the tracker folds each step into those as it
    happens and keeps nothing else.

    The windowed-area shortcut in :meth:`window_auc` assumes the tracked
    value is still ``initial`` at ``start`` — true for both uses here:
    pool usage is zero until the first admission (≥ the first arrival,
    which opens every serving window) and provisioned capacity first
    moves on a tick, which is anchored at the first admission.
    """

    __slots__ = ("initial", "last_time", "last_value", "integral", "peak")

    def __init__(self, time: float = 0.0, value: int = 0) -> None:
        self.initial = int(value)
        self.last_time = float(time)
        self.last_value = int(value)
        self.integral = 0.0
        self.peak = int(value)

    def record(self, time: float, value: int) -> None:
        """Fold one step in (times must be non-decreasing)."""
        self.integral += self.last_value * (time - self.last_time)
        self.last_time = float(time)
        self.last_value = int(value)
        if value > self.peak:
            self.peak = int(value)

    def auc_to(self, time: float) -> float:
        """Area under the step function from 0 to ``time`` (an instant
        at or after the last recorded step)."""
        return self.integral + self.last_value * (time - self.last_time)

    def window_auc(self, start: float, end: float) -> float:
        """Area over ``[start, end]`` (see the class note for when the
        ``initial``-value shortcut at ``start`` is valid)."""
        if end <= start:
            return 0.0
        return self.auc_to(end) - self.initial * start

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkylineTracker):
            return NotImplemented
        return (
            self.initial == other.initial
            and self.last_time == other.last_time
            and self.last_value == other.last_value
            and self.integral == other.integral
            and self.peak == other.peak
        )

    def __repr__(self) -> str:
        return (
            f"SkylineTracker(last={self.last_value}@{self.last_time}, "
            f"peak={self.peak}, integral={self.integral})"
        )


class PoolStreamStats(StreamingFleetStats):
    """One pool's O(1)-memory serving state for a streaming serve.

    Extends :class:`~repro.obs.metrics.StreamingFleetStats` (latency /
    queue-delay / run-seconds sketches, counts, window extrema) with the
    pool-level accumulators a :class:`FleetMetrics` needs to answer its
    full surface without records: the usage and capacity trackers, the
    billed-occupancy total, the incrementally merged fault ledger, and
    the running capacity-invariant check.

    Fold order is finish order, so two serves that finish queries in the
    same order produce bit-identical state — the multiprocess merge
    contract (:mod:`repro.fleet.parallel`) rests on this.
    """

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        super().__init__(relative_accuracy)
        self.usage = SkylineTracker()
        self.capacity: SkylineTracker | None = None
        self.capacity_ok = True
        self.billed_occupancy_seconds = 0.0
        self.fault: FaultStats | None = None

    def observe(self, record: QueryRecord) -> None:
        """Fold one finished query in (latency sketches via the base
        class, then the pool-billing and fault accumulators)."""
        super().observe(record)
        stats = record.fault_stats
        if stats is None:
            self.billed_occupancy_seconds += record.auc
        else:
            self.billed_occupancy_seconds += stats.billed_executor_seconds
            acc = self.fault
            if acc is None:
                acc = self.fault = FaultStats()
            acc.crashes += stats.crashes
            acc.reclamations += stats.reclamations
            acc.replacements += stats.replacements
            acc.tasks_started += stats.tasks_started
            acc.tasks_killed += stats.tasks_killed
            acc.wasted_task_seconds += stats.wasted_task_seconds
            acc.spot_executor_seconds += stats.spot_executor_seconds
            acc.ondemand_executor_seconds += stats.ondemand_executor_seconds
            if stats.spot_discount != 1.0:
                acc.spot_discount = stats.spot_discount

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PoolStreamStats):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.latency == other.latency
            and self.queue_delay == other.queue_delay
            and self.run_seconds == other.run_seconds
            and self.n_queries == other.n_queries
            and self.total_executor_seconds == other.total_executor_seconds
            and self.prediction_hits == other.prediction_hits
            and self.prediction_decisions == other.prediction_decisions
            and self.first_arrival == other.first_arrival
            and self.last_finish == other.last_finish
            and self.usage == other.usage
            and self.capacity == other.capacity
            and self.capacity_ok == other.capacity_ok
            and self.billed_occupancy_seconds == other.billed_occupancy_seconds
            and self.fault == other.fault
        )


@dataclass
class AdaptiveStats:
    """The continual-learning ledger of one adaptive serve.

    Snapshot of :class:`repro.fleet.adaptive.AdaptiveController` state at
    the end of a run, attached to :class:`FleetMetrics` /
    :class:`ClusterMetrics` by the fleet drivers so retraining shows up
    in the same place every other serving cost does.

    Attributes:
        observations: finished queries fed back into the loop.
        drift_alarms: times the rolling prediction error crossed the
            configured threshold.
        retrains: completed retraining passes (each producing a shadow
            candidate).
        promotions: shadow candidates that won validation and were
            hot-swapped behind the prediction service.
        rejections: shadow candidates that lost validation and were
            dropped.
        model_generation: the prediction service's generation counter at
            the end of the run (0 = the frozen model served throughout).
        buffer_size: replay-buffer occupancy at the end of the run.
        retrain_points: total training points consumed across retrains.
        retrain_executor_seconds: the modeled executor-seconds spent
            retraining (deterministic — priced into
            :attr:`FleetMetrics.total_dollar_cost`, never measured wall
            clock).
        last_drift_error: the rolling mean relative error at the last
            observation (0.0 before any window fills).
    """

    observations: int = 0
    drift_alarms: int = 0
    retrains: int = 0
    promotions: int = 0
    rejections: int = 0
    model_generation: int = 0
    buffer_size: int = 0
    retrain_points: int = 0
    retrain_executor_seconds: float = 0.0
    last_drift_error: float = 0.0

    def as_summary(self, retrain_dollar_cost: float) -> dict[str, float]:
        """The flat summary keys the metrics objects merge in."""
        return {
            "adaptive_observations": float(self.observations),
            "drift_alarms": float(self.drift_alarms),
            "model_retrains": float(self.retrains),
            "model_promotions": float(self.promotions),
            "model_rejections": float(self.rejections),
            "model_generation": float(self.model_generation),
            "retrain_executor_seconds": self.retrain_executor_seconds,
            "retrain_dollar_cost": retrain_dollar_cost,
        }


def _latency_percentile(records: Sequence[QueryRecord], q: float) -> float:
    if not records:
        return 0.0
    return float(np.percentile([r.latency for r in records], q))


def _mean_queue_delay(records: Sequence[QueryRecord]) -> float:
    if not records:
        return 0.0
    return float(np.mean([r.queue_delay for r in records]))


def _max_queue_delay(records: Sequence[QueryRecord]) -> float:
    if not records:
        return 0.0
    return max(r.queue_delay for r in records)


def _serving_window(records: Sequence[QueryRecord]) -> tuple[float, float]:
    """First arrival to last completion — the span capacity is billed over."""
    if not records:
        return (0.0, 0.0)
    start = min(r.arrival_time for r in records)
    end = max(r.finish_time for r in records)
    return (start, end)


def _cache_hit_rate(records: Sequence[QueryRecord]) -> float:
    flagged = [
        r.prediction_cached for r in records if r.prediction_cached is not None
    ]
    if not flagged:
        return 0.0
    return float(np.mean(flagged))


@dataclass
class FleetMetrics:
    """Aggregate outcome of one fleet run.

    Attributes:
        capacity: pool size (executors).  For an autoscaled pool this is
            the peak provisioned size the run reached.
        cores_per_executor: executor width, for dollar pricing.
        records: one :class:`QueryRecord` per served query, stream order.
        pool_skyline: reserved-capacity step function over the run — the
            arbiter's outstanding grants; its peak must never exceed
            the capacity in effect at that instant.
        capacity_skyline: provisioned-capacity step function, recorded
            only for autoscaled pools (``None`` means statically
            provisioned).  The gap between this and ``pool_skyline`` is
            idle autoscaled capacity — provisioned, billable, unused.
        serving_window: the ``(start, end)`` span capacity is billed
            over.  A pool inside a sharded fleet bills the *cluster's*
            window — a pool the router never picked still pays for its
            provisioned floor the whole run — while ``None`` (a
            standalone pool) falls back to this pool's own first-arrival
            → last-finish span.
        price_per_core_hour: billing rate for the dollar-cost metrics.
        stats: the pool's :class:`PoolStreamStats` when the serve ran in
            streaming mode — ``records`` is then empty and every
            property below answers from the bounded-memory accumulators
            instead (percentiles become sketch estimates within the
            configured relative accuracy; totals, windows, and costs
            stay exact).  ``None`` for record-backed metrics.
        adaptive: the continual-learning ledger
            (:class:`AdaptiveStats`) when the serve ran with a feedback
            sink that keeps one; ``None`` for frozen serves.  Its
            modeled retraining executor-seconds are priced into
            :attr:`total_dollar_cost`.
    """

    capacity: int
    cores_per_executor: int
    records: list[QueryRecord] = field(default_factory=list)
    pool_skyline: Skyline = field(default_factory=Skyline)
    capacity_skyline: Skyline | None = None
    serving_window: tuple[float, float] | None = None
    price_per_core_hour: float = DEFAULT_PRICE_PER_CORE_HOUR
    stats: PoolStreamStats | None = None
    adaptive: AdaptiveStats | None = None
    _fault_stats: FaultStats | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def _window(self) -> tuple[float, float]:
        if self.serving_window is not None:
            return self.serving_window
        if self.stats is not None:
            if self.stats.first_arrival is None:
                return (0.0, 0.0)
            return (self.stats.first_arrival, self.stats.last_finish)
        return _serving_window(self.records)

    @property
    def n_queries(self) -> int:
        if self.stats is not None:
            return self.stats.n_queries
        return len(self.records)

    @property
    def makespan(self) -> float:
        """First arrival to last completion."""
        if self.stats is not None:
            return self.stats.makespan
        start, end = _serving_window(self.records)
        return end - start

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of end-to-end query latency (a
        sketch estimate within ``relative_accuracy`` in streaming
        mode)."""
        if self.stats is not None:
            return self.stats.latency.quantile(q)
        return _latency_percentile(self.records, q)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_queue_delay(self) -> float:
        if self.stats is not None:
            return self.stats.queue_delay.mean
        return _mean_queue_delay(self.records)

    @property
    def max_queue_delay(self) -> float:
        if self.stats is not None:
            return self.stats.queue_delay.max or 0.0
        return _max_queue_delay(self.records)

    @property
    def peak_pool_usage(self) -> int:
        """Most executors ever reserved at one instant."""
        if self.stats is not None:
            return self.stats.usage.peak
        return self.pool_skyline.max_executors

    @property
    def capacity_respected(self) -> bool:
        """The fleet's core invariant: grants never exceeded the pool.

        With a time-varying capacity skyline the check is pointwise:
        reserved capacity must sit at or below provisioned capacity at
        every step of either skyline.  A streaming serve makes the same
        pointwise check online, at every usage step, and reports the
        accumulated verdict.
        """
        if self.stats is not None:
            return self.stats.capacity_ok
        if self.capacity_skyline is None:
            return self.peak_pool_usage <= self.capacity
        return all(
            count <= self.capacity_skyline.value_at(t)
            for t, count in self.pool_skyline.points
        ) and all(
            self.pool_skyline.value_at(t) <= count
            for t, count in self.capacity_skyline.points
        )

    @property
    def total_executor_seconds(self) -> float:
        """Summed executor occupancy across all queries (the paper's AUC
        cost metric, fleet-wide)."""
        if self.stats is not None:
            return self.stats.total_executor_seconds
        return sum(r.auc for r in self.records)

    @property
    def provisioned_executor_seconds(self) -> float:
        """Capacity provisioned over the serving window, in
        executor-seconds — what a pay-for-provisioned bill meters."""
        start, end = self._window()
        if end <= start:
            return 0.0
        if self.stats is not None and self.stats.capacity is not None:
            return self.stats.capacity.window_auc(start, end)
        if self.capacity_skyline is None:
            return self.capacity * (end - start)
        return self.capacity_skyline.auc(end) - self.capacity_skyline.auc(start)

    @property
    def reserved_executor_seconds(self) -> float:
        """Grants held by queries over the serving window (the pool
        skyline's area — reserved from admission, counting executors
        still in their provisioning ramp)."""
        start, end = self._window()
        if end <= start:
            return 0.0
        if self.stats is not None:
            return self.stats.usage.window_auc(start, end)
        return self.pool_skyline.auc(end) - self.pool_skyline.auc(start)

    @property
    def idle_capacity_seconds(self) -> float:
        """Autoscaled capacity that sat provisioned but unoccupied.

        Zero for statically provisioned pools (no capacity skyline); for
        autoscaled pools this is the billable gap between provisioned
        capacity and the executor-seconds queries actually occupied —
        including capacity reserved by grants whose executors had not
        arrived yet, so occupancy plus this term bills every provisioned
        executor-second.
        """
        if self.stats is not None:
            if self.stats.capacity is None:
                return 0.0
        elif self.capacity_skyline is None:
            return 0.0
        return max(
            0.0, self.provisioned_executor_seconds - self.total_executor_seconds
        )

    # --- faults ----------------------------------------------------------
    @property
    def fault_stats(self) -> FaultStats:
        """Merged fault ledger across all served queries (all-zero when
        the fleet ran unperturbed).

        Memoized: the metrics object is built after the serve completes,
        so the records are append-complete and ``summary()`` /
        ``describe()`` — which read several ledger fields each — merge
        once instead of once per field.
        """
        if self.stats is not None:
            found = self.stats.fault
            return FaultStats() if found is None else found
        if self._fault_stats is None:
            self._fault_stats = FaultStats.merged(
                r.fault_stats for r in self.records if r.fault_stats is not None
            )
        return self._fault_stats

    @property
    def wasted_work_seconds(self) -> float:
        """Task progress destroyed by executor failures (re-executed at
        full price — the skyline billed it, then billed the retry)."""
        return self.fault_stats.wasted_task_seconds

    @property
    def task_retries(self) -> int:
        """Tasks re-executed after a crash or spot reclamation."""
        return self.fault_stats.task_retries

    @property
    def executor_failures(self) -> int:
        """Executor losses of either cause (crash or reclamation)."""
        return self.fault_stats.failures

    @property
    def spot_executor_seconds(self) -> float:
        return self.fault_stats.spot_executor_seconds

    @property
    def ondemand_executor_seconds(self) -> float:
        return self.fault_stats.ondemand_executor_seconds

    @property
    def billed_occupancy_seconds(self) -> float:
        """Occupancy in on-demand-equivalent executor-seconds.

        Queries without a fault ledger bill their skyline AUC at full
        price (the identical sum the pre-fault engine computed, bit for
        bit); queries served under a fault plan bill their classified
        on-demand seconds plus spot seconds at the spot discount.
        """
        if self.stats is not None:
            return self.stats.billed_occupancy_seconds
        total = 0.0
        for r in self.records:
            if r.fault_stats is None:
                total += r.auc
            else:
                total += r.fault_stats.billed_executor_seconds
        return total

    def _dollars(self, executor_seconds: float) -> float:
        core_hours = executor_seconds * self.cores_per_executor / 3600.0
        return core_hours * self.price_per_core_hour

    @property
    def idle_capacity_dollar_cost(self) -> float:
        return self._dollars(self.idle_capacity_seconds)

    @property
    def spot_dollar_cost(self) -> float:
        """The discounted bill for spot executor-seconds."""
        stats = self.fault_stats
        return self._dollars(stats.spot_executor_seconds * stats.spot_discount)

    @property
    def ondemand_dollar_cost(self) -> float:
        """The full-price bill for on-demand executor-seconds (occupancy
        billed by AUC when no fault ledger exists)."""
        return max(
            0.0,
            self._dollars(self.billed_occupancy_seconds) - self.spot_dollar_cost,
        )

    @property
    def retrain_executor_seconds(self) -> float:
        """Modeled executor-seconds spent retraining (zero when frozen)."""
        if self.adaptive is None:
            return 0.0
        return self.adaptive.retrain_executor_seconds

    @property
    def retrain_dollar_cost(self) -> float:
        """The retraining bill, at the pool's own core-hour rate."""
        return self._dollars(self.retrain_executor_seconds)

    @property
    def total_dollar_cost(self) -> float:
        """Occupancy cost plus the bill for autoscaled-but-idle capacity
        and (for adaptive serves) model retraining.

        A statically provisioned pool charges pure occupancy (the
        paper's metric); capacity an autoscaler provisioned is paid for
        whether queries used it or not; spot executor-seconds are billed
        at their discount.  Idle *autoscaled* capacity is billed at the
        full on-demand rate — spot classification exists only for
        executor instances that actually arrived, so the conservative
        choice is to price the unoccupied provisioned gap as on-demand.
        An adaptive serve additionally pays for its retraining passes
        (modeled executor-seconds, full price) — the adaptive-vs-frozen
        comparisons are honest only if retraining is on the bill.
        """
        return self._dollars(
            self.billed_occupancy_seconds
            + self.idle_capacity_seconds
            + self.retrain_executor_seconds
        )

    @property
    def provisioned_dollar_cost(self) -> float:
        """What the whole provisioned pool costs over the serving window
        — the apples-to-apples bill when comparing static provisioning
        against autoscaling."""
        return self._dollars(self.provisioned_executor_seconds)

    def utilization(self) -> float:
        """Mean fraction of provisioned capacity reserved over the run."""
        provisioned = self.provisioned_executor_seconds
        if provisioned <= 0:
            return 0.0
        return self.reserved_executor_seconds / provisioned

    def prediction_cache_hit_rate(self) -> float:
        """Fraction of predictive decisions served from the memo cache."""
        if self.stats is not None:
            return self.stats.prediction_cache_hit_rate()
        return _cache_hit_rate(self.records)

    def streaming(self, relative_accuracy: float = 0.01) -> StreamingFleetStats:
        """The bounded-memory streaming view of this run.

        A streaming serve already holds it — its :attr:`stats` is
        returned directly (``relative_accuracy`` must match the serve's:
        a sketch cannot be re-bucketed after the fact).  A record-backed
        run folds its records into a fresh
        :class:`~repro.obs.metrics.StreamingFleetStats` whose percentile
        estimates are within ``relative_accuracy`` of the exact
        sorted-record values this object reports.
        """
        if self.stats is not None:
            if relative_accuracy != self.stats.relative_accuracy:
                raise ValueError(
                    "a streaming serve's sketch accuracy is fixed at serve "
                    f"time ({self.stats.relative_accuracy}); it cannot be "
                    "re-bucketed afterwards"
                )
            return self.stats
        return StreamingFleetStats.from_records(
            self.records, relative_accuracy=relative_accuracy
        )

    def summary(self) -> dict[str, float]:
        """The headline numbers as a flat dict (benchmark-friendly).

        Adaptive serves gain the continual-learning keys
        (:meth:`AdaptiveStats.as_summary`); frozen serves keep the
        pre-adaptive key set bit-identically.
        """
        stats = self.fault_stats
        out = {
            "n_queries": float(self.n_queries),
            "makespan_s": self.makespan,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "mean_queue_delay_s": self.mean_queue_delay,
            "max_queue_delay_s": self.max_queue_delay,
            "peak_pool_usage": float(self.peak_pool_usage),
            "utilization": self.utilization(),
            "total_executor_seconds": self.total_executor_seconds,
            "idle_capacity_seconds": self.idle_capacity_seconds,
            "provisioned_executor_seconds": self.provisioned_executor_seconds,
            "total_dollar_cost": self.total_dollar_cost,
            "provisioned_dollar_cost": self.provisioned_dollar_cost,
            "prediction_cache_hit_rate": self.prediction_cache_hit_rate(),
            "executor_failures": float(stats.failures),
            "task_retries": float(stats.task_retries),
            "wasted_work_seconds": float(stats.wasted_task_seconds),
            "spot_executor_seconds": float(stats.spot_executor_seconds),
            "spot_dollar_cost": self.spot_dollar_cost,
        }
        if self.adaptive is not None:
            out.update(self.adaptive.as_summary(self.retrain_dollar_cost))
        return out

    def describe(self) -> str:
        """A human-readable one-run report."""
        s = self.summary()
        lines = [
            f"queries served        {self.n_queries}",
            f"makespan              {s['makespan_s']:10.1f} s",
            f"latency p50/p95/p99   {s['p50_latency_s']:.1f} / "
            f"{s['p95_latency_s']:.1f} / {s['p99_latency_s']:.1f} s",
            f"mean queueing delay   {s['mean_queue_delay_s']:10.1f} s",
            f"max queueing delay    {s['max_queue_delay_s']:10.1f} s",
            f"peak pool usage       {self.peak_pool_usage}/{self.capacity} "
            f"executors",
            f"pool utilization      {s['utilization']:10.1%}",
            f"executor-seconds      {s['total_executor_seconds']:10.0f}",
            f"idle capacity cost    ${self.idle_capacity_dollar_cost:9.2f}",
            f"total cost            ${s['total_dollar_cost']:9.2f}",
            f"provisioned cost      ${s['provisioned_dollar_cost']:9.2f}",
            f"prediction cache hit  {s['prediction_cache_hit_rate']:10.1%}",
        ]
        if self.adaptive is not None:
            a = self.adaptive
            lines.append(
                f"continual learning    gen {a.model_generation}, "
                f"{a.retrains} retrains ({a.promotions} promoted, "
                f"{a.rejections} rejected), {a.drift_alarms} drift alarms, "
                f"retrain cost ${self.retrain_dollar_cost:.2f}"
            )
        faulted = (
            self.stats.fault is not None
            if self.stats is not None
            else any(r.fault_stats is not None for r in self.records)
        )
        if faulted:
            stats = self.fault_stats
            lines += [
                f"executor failures     {stats.crashes} crashes, "
                f"{stats.reclamations} reclamations",
                f"task retries          {stats.task_retries} "
                f"({s['wasted_work_seconds']:.0f} task-seconds wasted)",
                f"spot / on-demand      {stats.spot_executor_seconds:.0f} / "
                f"{stats.ondemand_executor_seconds:.0f} executor-seconds "
                f"(${self.spot_dollar_cost:.2f} / "
                f"${self.ondemand_dollar_cost:.2f})",
            ]
        return "\n".join(lines)


@dataclass
class ClusterMetrics:
    """Aggregate outcome of one sharded-fleet run.

    Attributes:
        pools: per-pool :class:`FleetMetrics`, pool-index order.
        records: every served query's :class:`QueryRecord`, arrival-stream
            order, across all pools.  Empty for a streaming serve — the
            cluster-wide distributions then come from merging the pools'
            :class:`PoolStreamStats` (sketch merge is associative and
            commutative, so the roll-up matches what any grouping of the
            shards would produce).
        pool_of: parallel to ``records`` — which pool served each query
            (empty for a streaming serve).
        price_per_core_hour: billing rate (pools carry their own copy;
            this one prices nothing, it is echoed for reporting).
        adaptive: the cluster-wide continual-learning ledger
            (:class:`AdaptiveStats`) when the serve ran with a feedback
            sink — attached here, never per pool, because the loop is
            one shared model across all pools and its retraining bill
            must be counted once.
    """

    pools: list[FleetMetrics]
    records: list[QueryRecord] = field(default_factory=list)
    pool_of: list[int] = field(default_factory=list)
    price_per_core_hour: float = DEFAULT_PRICE_PER_CORE_HOUR
    adaptive: AdaptiveStats | None = None
    _merged_stats: StreamingFleetStats | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def _stats(self) -> StreamingFleetStats | None:
        """The pools' merged streaming stats (``None`` when this is a
        record-backed run).  Merged once, pool-index order, memoized."""
        if not self.records and any(p.stats is not None for p in self.pools):
            if self._merged_stats is None:
                merged = None
                for pool in self.pools:
                    if merged is None:
                        merged = pool.stats
                    else:
                        merged = merged.merge(pool.stats)
                self._merged_stats = merged
            return self._merged_stats
        return None

    @property
    def n_pools(self) -> int:
        return len(self.pools)

    @property
    def n_queries(self) -> int:
        stats = self._stats()
        if stats is not None:
            return stats.n_queries
        return len(self.records)

    @property
    def makespan(self) -> float:
        stats = self._stats()
        if stats is not None:
            return stats.makespan
        start, end = _serving_window(self.records)
        return end - start

    def latency_percentile(self, q: float) -> float:
        stats = self._stats()
        if stats is not None:
            return stats.latency.quantile(q)
        return _latency_percentile(self.records, q)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_queue_delay(self) -> float:
        stats = self._stats()
        if stats is not None:
            return stats.queue_delay.mean
        return _mean_queue_delay(self.records)

    @property
    def max_queue_delay(self) -> float:
        stats = self._stats()
        if stats is not None:
            return stats.queue_delay.max or 0.0
        return _max_queue_delay(self.records)

    @property
    def capacity_respected(self) -> bool:
        """Every pool honoured its (possibly time-varying) capacity."""
        return all(pool.capacity_respected for pool in self.pools)

    @property
    def total_capacity(self) -> int:
        """Summed pool capacities (peak provisioned for autoscaled pools)."""
        return sum(pool.capacity for pool in self.pools)

    @property
    def total_executor_seconds(self) -> float:
        return sum(pool.total_executor_seconds for pool in self.pools)

    @property
    def idle_capacity_seconds(self) -> float:
        return sum(pool.idle_capacity_seconds for pool in self.pools)

    @property
    def provisioned_executor_seconds(self) -> float:
        return sum(pool.provisioned_executor_seconds for pool in self.pools)

    @property
    def retrain_executor_seconds(self) -> float:
        """Modeled retraining executor-seconds (zero when frozen)."""
        if self.adaptive is None:
            return 0.0
        return self.adaptive.retrain_executor_seconds

    @property
    def retrain_dollar_cost(self) -> float:
        """The cluster's one retraining bill (priced at pool 0's rate —
        all pools in a fleet share an executor shape and rate)."""
        if self.adaptive is None or not self.pools:
            return 0.0
        return self.pools[0]._dollars(self.retrain_executor_seconds)

    @property
    def total_dollar_cost(self) -> float:
        return (
            sum(pool.total_dollar_cost for pool in self.pools)
            + self.retrain_dollar_cost
        )

    @property
    def idle_capacity_dollar_cost(self) -> float:
        return sum(pool.idle_capacity_dollar_cost for pool in self.pools)

    @property
    def fault_stats(self) -> FaultStats:
        """Merged fault ledger across every pool's served queries."""
        return FaultStats.merged(pool.fault_stats for pool in self.pools)

    @property
    def wasted_work_seconds(self) -> float:
        return sum(pool.wasted_work_seconds for pool in self.pools)

    @property
    def task_retries(self) -> int:
        return sum(pool.task_retries for pool in self.pools)

    @property
    def executor_failures(self) -> int:
        return sum(pool.executor_failures for pool in self.pools)

    @property
    def spot_executor_seconds(self) -> float:
        return sum(pool.spot_executor_seconds for pool in self.pools)

    @property
    def ondemand_executor_seconds(self) -> float:
        return sum(pool.ondemand_executor_seconds for pool in self.pools)

    @property
    def spot_dollar_cost(self) -> float:
        return sum(pool.spot_dollar_cost for pool in self.pools)

    @property
    def ondemand_dollar_cost(self) -> float:
        return sum(pool.ondemand_dollar_cost for pool in self.pools)

    @property
    def provisioned_dollar_cost(self) -> float:
        return sum(pool.provisioned_dollar_cost for pool in self.pools)

    def utilization(self) -> float:
        """Reserved over provisioned executor-seconds, cluster-wide."""
        provisioned = self.provisioned_executor_seconds
        if provisioned <= 0:
            return 0.0
        reserved = sum(pool.reserved_executor_seconds for pool in self.pools)
        return reserved / provisioned

    def prediction_cache_hit_rate(self) -> float:
        stats = self._stats()
        if stats is not None:
            return stats.prediction_cache_hit_rate()
        return _cache_hit_rate(self.records)

    def streaming(self, relative_accuracy: float = 0.01) -> StreamingFleetStats:
        """Cluster-wide streaming stats: each pool folded, then merged —
        the associative-merge path a distributed collector would take.
        A streaming serve returns its already-merged pool stats (the
        accuracy must match the serve's, as with
        :meth:`FleetMetrics.streaming`)."""
        merged = StreamingFleetStats(relative_accuracy=relative_accuracy)
        for pool in self.pools:
            merged = merged.merge(pool.streaming(relative_accuracy))
        return merged

    def queries_per_pool(self) -> list[int]:
        return [pool.n_queries for pool in self.pools]

    def summary(self) -> dict[str, float]:
        """The cluster's headline numbers as a flat dict (adaptive
        serves gain the continual-learning keys, like
        :meth:`FleetMetrics.summary`)."""
        out = {
            "n_pools": float(self.n_pools),
            "n_queries": float(self.n_queries),
            "makespan_s": self.makespan,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "mean_queue_delay_s": self.mean_queue_delay,
            "max_queue_delay_s": self.max_queue_delay,
            "utilization": self.utilization(),
            "total_executor_seconds": self.total_executor_seconds,
            "idle_capacity_seconds": self.idle_capacity_seconds,
            "provisioned_executor_seconds": self.provisioned_executor_seconds,
            "total_dollar_cost": self.total_dollar_cost,
            "provisioned_dollar_cost": self.provisioned_dollar_cost,
            "prediction_cache_hit_rate": self.prediction_cache_hit_rate(),
            "executor_failures": float(self.executor_failures),
            "task_retries": float(self.task_retries),
            "wasted_work_seconds": float(self.wasted_work_seconds),
            "spot_executor_seconds": float(self.spot_executor_seconds),
            "spot_dollar_cost": self.spot_dollar_cost,
        }
        if self.adaptive is not None:
            out.update(self.adaptive.as_summary(self.retrain_dollar_cost))
        return out

    def describe(self) -> str:
        """A human-readable cluster report with a per-pool breakdown."""
        s = self.summary()
        lines = [
            f"pools                 {self.n_pools}",
            f"queries served        {self.n_queries}",
            f"makespan              {s['makespan_s']:10.1f} s",
            f"latency p50/p95/p99   {s['p50_latency_s']:.1f} / "
            f"{s['p95_latency_s']:.1f} / {s['p99_latency_s']:.1f} s",
            f"mean queueing delay   {s['mean_queue_delay_s']:10.1f} s",
            f"max queueing delay    {s['max_queue_delay_s']:10.1f} s",
            f"cluster utilization   {s['utilization']:10.1%}",
            f"executor-seconds      {s['total_executor_seconds']:10.0f}",
            f"idle capacity cost    ${self.idle_capacity_dollar_cost:9.2f}",
            f"total cost            ${s['total_dollar_cost']:9.2f}",
            f"provisioned cost      ${s['provisioned_dollar_cost']:9.2f}",
            f"prediction cache hit  {s['prediction_cache_hit_rate']:10.1%}",
        ]
        if self.adaptive is not None:
            a = self.adaptive
            lines.append(
                f"continual learning    gen {a.model_generation}, "
                f"{a.retrains} retrains ({a.promotions} promoted, "
                f"{a.rejections} rejected), {a.drift_alarms} drift alarms, "
                f"retrain cost ${self.retrain_dollar_cost:.2f}"
            )
        faulted = any(
            pool.stats.fault is not None
            if pool.stats is not None
            else any(r.fault_stats is not None for r in pool.records)
            for pool in self.pools
        )
        if faulted:
            stats = self.fault_stats
            lines += [
                f"executor failures     {stats.crashes} crashes, "
                f"{stats.reclamations} reclamations",
                f"task retries          {stats.task_retries} "
                f"({s['wasted_work_seconds']:.0f} task-seconds wasted)",
                f"spot / on-demand      {stats.spot_executor_seconds:.0f} / "
                f"{stats.ondemand_executor_seconds:.0f} executor-seconds "
                f"(${self.spot_dollar_cost:.2f} / "
                f"${self.ondemand_dollar_cost:.2f})",
            ]
        for i, pool in enumerate(self.pools):
            lines.append(
                f"  pool {i}: {pool.n_queries:4d} queries, "
                f"peak {pool.peak_pool_usage}/{pool.capacity} executors, "
                f"util {pool.utilization():6.1%}, "
                f"${pool.total_dollar_cost:8.2f}"
            )
        return "\n".join(lines)

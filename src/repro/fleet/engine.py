"""The fleet engine: many concurrent query runs on one shared clock.

``repro.engine.scheduler.simulate_query`` plays out *one* query on a
dedicated cluster.  The fleet engine multiplexes a whole arrival stream:
each admitted query executes its stage DAG — waves of tasks, provisioning
lag, memory-pressure and coordination physics, idle releases — on the
executor budget the capacity arbiter granted it, and every grant and
release moves shared pool state that decides when the *next* queued query
may start.

The design mirrors the single-query scheduler (the same event kinds, the
same task-wave assignment, the same spill/coordination factors applied to
each query's own fleet) so that a fleet of one query on an uncontended
pool behaves like ``simulate_query`` — but all queries share one event
heap and one :class:`~repro.fleet.admission.CapacityArbiter`.

Allocators decide each query's budget.  Three are provided: a
:func:`static_allocator` (the default-configuration baseline), the online
:class:`~repro.fleet.prediction.PredictionService` (AutoExecutor), and an
:func:`oracle_allocator` that probes the simulator itself for the
cheapest near-optimal count (the upper bound predictions chase).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.engine.cluster import Cluster
from repro.engine.scheduler import (
    DEFAULT_SCHEDULER_CONFIG,
    SchedulerConfig,
    _coordination_factor,
    _pack,
    _spill_factor,
    _unpack,
)
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.engine.sweep import CompiledPlan, compile_plan
from repro.fleet.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    CapacityArbiter,
)
from repro.fleet.arrivals import QueryArrival
from repro.fleet.metrics import FleetMetrics, QueryRecord
from repro.workloads.generator import Workload

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "static_allocator",
    "oracle_allocator",
]

#: An allocator maps (query_id, optimized plan) to an executor budget —
#: either a plain int or a :class:`repro.fleet.prediction.Prediction`.
Allocator = Callable[[str, object], object]


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-engine knobs.

    Attributes:
        scheduler: per-query physics (same knobs as ``simulate_query``).
        tick_interval: idle-check polling period.
        idle_release_timeout: seconds of executor idleness before it is
            returned to the pool mid-query (``None`` holds budgets until
            completion).
        min_executors_per_query: floor idle release never shrinks below —
            a started query must be able to finish.
        charge_prediction_overhead: add the allocator's measured selection
            seconds to the query's pre-admission latency (Section 5.6's
            overheads, paid where they occur: on the critical path).
    """

    scheduler: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG
    tick_interval: float = 1.0
    idle_release_timeout: float | None = 30.0
    min_executors_per_query: int = 1
    charge_prediction_overhead: bool = True


@dataclass
class _Executor:
    free_cores: int
    cores: int
    idle_since: float | None


@dataclass
class _StageState:
    remaining_deps: int
    remaining_tasks: int
    emitted: bool = False


@dataclass
class _QueryRun:
    """Mutable per-query execution state inside the fleet."""

    arrival: QueryArrival
    graph: StageGraph
    budget: int
    admit_time: float
    prediction_cached: bool | None
    prediction_seconds: float
    compiled: CompiledPlan | None = None
    executors: dict[int, _Executor] = field(default_factory=dict)
    next_eid: int = 0
    outstanding: int = 0
    pending: list[tuple[int, int]] = field(default_factory=list)
    pending_head: int = 0
    running: int = 0
    stages_left: int = 0
    driver_done: bool = False
    finished: bool = False
    skyline: Skyline = field(default_factory=Skyline)
    states: dict[int, _StageState] = field(default_factory=dict)
    durations: dict | tuple = field(default_factory=dict)
    dependents: dict | tuple = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.stages_left = len(self.graph.stages)
        for stage in self.graph.stages:
            self.states[stage.stage_id] = _StageState(
                remaining_deps=len(stage.dependencies),
                remaining_tasks=stage.num_tasks,
            )
        if self.compiled is not None and self.compiled.graph is self.graph:
            # Recurring queries are the fleet's common case: reuse the
            # read-only duration arrays and reverse edges compiled once
            # per query signature instead of rebuilding them every run.
            self.durations = self.compiled.durations
            self.dependents = self.compiled.dependents
            return
        self.durations = {}
        self.dependents = {s.stage_id: [] for s in self.graph.stages}
        for stage in self.graph.stages:
            self.durations[stage.stage_id] = stage.task_durations()
            for dep in stage.dependencies:
                self.dependents[dep].append(stage.stage_id)

    def pending_count(self) -> int:
        return len(self.pending) - self.pending_head

    def emit_ready(self, stage_id: int) -> None:
        state = self.states[stage_id]
        if state.emitted or state.remaining_deps > 0:
            return
        state.emitted = True
        for task_idx in range(self.graph.stages[stage_id].num_tasks):
            self.pending.append((stage_id, task_idx))


class FleetEngine:
    """Serve an arrival stream through a shared executor pool.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        capacity: pool size in executors — the arbiter's hard budget.
        allocator: per-query executor-budget decision (see module docs).
        cluster: node/executor shapes and provisioning lag.  Only the
            executor shape and grant ramp are used; pool *capacity* is
            this engine's ``capacity``, not ``cluster.max_executors``.
        admission: queueing policy (default FIFO).
        config: fleet knobs.
    """

    def __init__(
        self,
        workload: Workload,
        capacity: int,
        allocator: Allocator,
        cluster: Cluster = Cluster(),
        admission: AdmissionPolicy | None = None,
        config: FleetConfig = FleetConfig(),
    ) -> None:
        self.workload = workload
        self.capacity = int(capacity)
        self.allocator = allocator
        self.cluster = cluster
        self.admission = admission
        self.config = config
        # Compile-once memo, keyed like the prediction service's
        # plan-signature cache: the workload hands out one stage graph per
        # query id, so the id keys its compiled form across runs.
        self._compiled: dict[str, CompiledPlan] = {}

    def _compiled_plan(self, query_id: str, graph: StageGraph) -> CompiledPlan:
        compiled = self._compiled.get(query_id)
        if compiled is None or compiled.graph is not graph:
            compiled = compile_plan(graph)
            self._compiled[query_id] = compiled
        return compiled

    def serve(self, arrivals: Sequence[QueryArrival]) -> FleetMetrics:
        """Play out the whole stream; returns the fleet's metrics."""
        if not arrivals:
            raise ValueError("cannot serve an empty arrival stream")
        arbiter = CapacityArbiter(self.capacity, self.admission)
        pool_skyline = Skyline()
        pool_skyline.record(0.0, 0)
        config = self.config
        ec = self.cluster.cores_per_executor

        counter = itertools.count()
        events: list[tuple[float, int, str, int, int]] = []

        def push(time: float, kind: str, a: int = 0, b: int = 0) -> None:
            heapq.heappush(events, (time, next(counter), kind, a, b))

        by_index = {a.index: a for a in arrivals}
        if len(by_index) != len(arrivals):
            raise ValueError("arrival stream has duplicate indices")
        runs: dict[int, _QueryRun] = {}
        requests: dict[int, AdmissionRequest] = {}
        decisions: dict[int, tuple[int, bool | None, float]] = {}
        records: dict[int, QueryRecord] = {}
        unfinished = len(arrivals)

        def record_pool(now: float) -> None:
            pool_skyline.record(now, arbiter.in_use)

        # --- per-query execution ----------------------------------------
        def assign(now: float, q: int) -> None:
            run = runs[q]
            if not run.driver_done or run.pending_count() == 0:
                return
            spill = _spill_factor(
                run.graph, len(run.executors), self.cluster, config.scheduler
            )
            coord = _coordination_factor(len(run.executors), config.scheduler)
            factor = spill * coord
            for eid, executor in run.executors.items():
                while executor.free_cores > 0 and run.pending_count() > 0:
                    stage_id, task_idx = run.pending[run.pending_head]
                    run.pending_head += 1
                    executor.free_cores -= 1
                    executor.idle_since = None
                    duration = run.durations[stage_id][task_idx] * factor
                    run.running += 1
                    push(now + duration, "task_done", q, _pack(stage_id, eid))
                if run.pending_count() == 0:
                    break

        def start_query(now: float, request: AdmissionRequest) -> None:
            q = request.query_index
            arrival = by_index[q]
            graph = self.workload.stage_graph(arrival.query_id)
            _, cached, pred_seconds = decisions[q]
            run = _QueryRun(
                arrival=arrival,
                graph=graph,
                budget=request.executors,
                admit_time=now,
                prediction_cached=cached,
                prediction_seconds=pred_seconds,
                compiled=self._compiled_plan(arrival.query_id, graph),
            )
            run.outstanding = request.executors
            runs[q] = run
            push(now + graph.driver_seconds, "driver_done", q)
            for t in self.cluster.grant_schedule(now, request.executors):
                push(t, "exec_arrive", q)

        def finish_query(now: float, q: int) -> None:
            nonlocal unfinished
            run = runs[q]
            run.finished = True
            unfinished -= 1
            arrived = len(run.executors)
            run.executors.clear()
            run.skyline.record(now, 0)
            if arrived:
                arbiter.release(q, arrived)
                record_pool(now)
            records[q] = QueryRecord(
                query_id=run.arrival.query_id,
                app_id=run.arrival.app_id,
                arrival_time=run.arrival.arrival_time,
                admit_time=run.admit_time,
                finish_time=now,
                executors_granted=run.budget,
                auc=run.skyline.auc(now),
                prediction_cached=run.prediction_cached,
                prediction_seconds=run.prediction_seconds,
            )

        def drain_admissions(now: float) -> None:
            admitted = arbiter.admit()
            if admitted:
                record_pool(now)
                for request in admitted:
                    start_query(now, request)

        def release_idle(now: float) -> None:
            timeout = config.idle_release_timeout
            if timeout is None:
                return
            floor = max(1, config.min_executors_per_query)
            released = False
            for q, run in runs.items():
                if (
                    run.finished
                    or not run.driver_done
                    or run.pending_count() > 0
                    or len(run.executors) <= floor
                ):
                    continue
                removable = sorted(
                    (e.idle_since, eid)
                    for eid, e in run.executors.items()
                    if e.free_cores == e.cores
                    and e.idle_since is not None
                    and now - e.idle_since >= timeout
                )
                for _, eid in removable:
                    if len(run.executors) <= floor:
                        break
                    del run.executors[eid]
                    run.skyline.record(now, len(run.executors))
                    arbiter.release(q, 1)
                    released = True
            if released:
                record_pool(now)
                drain_admissions(now)

        # --- bootstrap ---------------------------------------------------
        for i, arrival in enumerate(arrivals):
            push(arrival.arrival_time, "arrive", i)
        if config.idle_release_timeout is not None:
            push(config.tick_interval, "tick")

        # --- main loop ---------------------------------------------------
        while events:
            now, _, kind, a, b = heapq.heappop(events)
            if kind == "arrive":
                arrival = arrivals[a]
                plan = self.workload.optimized_plan(arrival.query_id)
                decision = self.allocator(arrival.query_id, plan)
                if hasattr(decision, "executors"):
                    budget = int(decision.executors)
                    cached = decision.cached
                    seconds = float(decision.seconds)
                else:
                    budget, cached, seconds = int(decision), None, 0.0
                budget = max(1, min(budget, self.capacity))
                decisions[arrival.index] = (budget, cached, seconds)
                delay = (
                    seconds if config.charge_prediction_overhead else 0.0
                )
                push(now + delay, "submit", arrival.index)
            elif kind == "submit":
                arrival = by_index[a]
                budget, _, _ = decisions[a]
                requests[a] = AdmissionRequest(
                    query_index=a,
                    app_id=arrival.app_id,
                    executors=budget,
                    submit_time=now,
                )
                arbiter.submit(requests[a])
                drain_admissions(now)
            elif kind == "driver_done":
                run = runs[a]
                run.driver_done = True
                for stage in run.graph.stages:
                    run.emit_ready(stage.stage_id)
                assign(now, a)
            elif kind == "exec_arrive":
                run = runs[a]
                run.outstanding -= 1
                if run.finished:
                    # The query beat its own provisioning ramp; hand the
                    # late executor straight back to the pool.
                    arbiter.release(a, 1)
                    record_pool(now)
                    drain_admissions(now)
                else:
                    eid = run.next_eid
                    run.next_eid += 1
                    run.executors[eid] = _Executor(
                        free_cores=ec, cores=ec, idle_since=now
                    )
                    run.skyline.record(now, len(run.executors))
                    assign(now, a)
            elif kind == "task_done":
                run = runs[a]
                stage_id, eid = _unpack(b)
                run.running -= 1
                executor = run.executors.get(eid)
                if executor is not None:
                    executor.free_cores += 1
                    if executor.free_cores == executor.cores:
                        executor.idle_since = now
                state = run.states[stage_id]
                state.remaining_tasks -= 1
                if state.remaining_tasks == 0:
                    run.stages_left -= 1
                    for dep_id in run.dependents[stage_id]:
                        run.states[dep_id].remaining_deps -= 1
                        run.emit_ready(dep_id)
                if run.stages_left == 0:
                    finish_query(now, a)
                    drain_admissions(now)
                else:
                    assign(now, a)
            elif kind == "tick":
                release_idle(now)
                if unfinished > 0:
                    # Stall guard: the tick is the only event left, so no
                    # run will ever release capacity again — queued
                    # requests the policy refuses can never be admitted.
                    # Without this check the tick chain would spin forever.
                    if not events and arbiter.queue_length > 0:
                        raise RuntimeError(
                            f"admission stalled: {arbiter.queue_length} "
                            "queued requests, an idle pool, and a policy "
                            "that admits none of them"
                        )
                    push(now + config.tick_interval, "tick")

        if unfinished > 0:
            stuck = [q for q, r in runs.items() if not r.finished]
            raise RuntimeError(
                f"fleet run ended with {unfinished} unfinished queries "
                f"(running: {stuck}, queued: {arbiter.queue_length})"
            )

        ordered = [records[a.index] for a in arrivals]
        return FleetMetrics(
            capacity=self.capacity,
            cores_per_executor=ec,
            records=ordered,
            pool_skyline=pool_skyline,
        )


def static_allocator(n: int) -> Allocator:
    """The fixed-budget baseline: every query gets ``n`` executors."""
    if n < 1:
        raise ValueError("static budgets need at least 1 executor")

    def allocate(query_id: str, plan: object) -> int:
        return n

    return allocate


def oracle_allocator(
    workload: Workload,
    cluster: Cluster = Cluster(),
    candidates: Sequence[int] = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48),
    objective: Callable[[np.ndarray, np.ndarray], int] | None = None,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
) -> Allocator:
    """The hindsight baseline: the selection objective applied to the
    query's *true* run-time curve.

    AutoExecutor applies an objective (default: the paper's elbow) to a
    *predicted* ``t(n)``; the oracle measures the real curve with one
    batched simulator sweep over the candidate counts
    (:func:`repro.core.selection.true_runtime_curve`) and applies the
    same objective to it — perfect curve knowledge, zero prediction
    error.  Results are memoized per query id: the oracle exists as the
    bound predictions are judged against.
    """
    from repro.core.selection import elbow_point, true_runtime_curve

    if objective is None:
        objective = elbow_point
    usable = [n for n in candidates if 1 <= n <= cluster.max_executors]
    if len(usable) < 2:
        raise ValueError("need at least two usable candidate counts")
    grid = np.asarray(usable)
    cache: dict[str, int] = {}

    def allocate(query_id: str, plan: object) -> int:
        if query_id not in cache:
            graph = workload.stage_graph(query_id)
            curve = true_runtime_curve(graph, usable, cluster, config)
            cache[query_id] = int(objective(grid, curve))
        return cache[query_id]

    return allocate

"""The fleet engine: many concurrent query runs on one shared clock.

``repro.engine.scheduler.simulate_query`` plays out *one* query on a
dedicated cluster.  The fleet engine multiplexes a whole arrival stream:
each admitted query executes its stage DAG — waves of tasks, provisioning
lag, memory-pressure and coordination physics, idle releases — on the
executor budget the capacity arbiter granted it, and every grant and
release moves shared pool state that decides when the *next* queued query
may start.

Both simulators drive the same per-query state machine, the shared
:class:`~repro.engine.execution.ExecutionCore`; this module contributes
only the fleet-specific parts — the shared event heap, admission through
the :class:`~repro.fleet.admission.CapacityArbiter`, and per-query
capacity accounting against the pool.  Those parts live in
:class:`PoolRuntime`, *one pool's* serving state machine, deliberately
separated from the event loop that drives it: :class:`FleetEngine` runs
one runtime on its own heap, and :class:`repro.fleet.cluster.ShardedFleet`
multiplexes N runtimes (plus routing and autoscaling) on one shared heap.
The contracts that keep every path honest: a fleet of one query on an
uncontended pool reproduces ``simulate_query`` under
:class:`~repro.engine.allocation.BudgetAllocation` *bit-for-bit* —
runtime, AUC, and skyline — a property asserted across the whole TPC-DS
workload in ``tests/engine/test_execution_parity.py``, and a sharded
fleet of one static pool reproduces ``FleetEngine.serve`` bit-for-bit
(``tests/fleet/test_cluster.py``); both are re-checked by the CI bench
gates.

Allocators decide each query's *admission budget*.  Three are provided: a
:func:`static_allocator` (the default-configuration baseline), the online
:class:`~repro.fleet.prediction.PredictionService` (AutoExecutor), and an
:func:`oracle_allocator` that probes the simulator itself for the
cheapest near-optimal count (the upper bound predictions chase).

On top of the fixed budget, :attr:`FleetConfig.scaling` turns on
*mid-query dynamic scaling*: each admitted query gets an
:class:`~repro.engine.allocation.AllocationPolicy` (built from its
budget) that is polled after every one of its events and at every tick,
exactly like the dedicated-cluster scheduler polls its policy.  Scale-up
requests draw additional executors from whatever the pool can spare
right now (no queueing — the reservation the query queued for was its
admission budget), and idle executors shed below the budget return to
the pool for other queries; the arbiter keeps the pool invariant either
way.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.engine.allocation import AllocationPolicy, AllocationState
from repro.engine.cluster import Cluster
from repro.engine.execution import (
    DEFAULT_SCHEDULER_CONFIG,
    CompiledPlan,
    ExecutionCore,
    SchedulerConfig,
    compile_plan,
)
from repro.engine.faults import FaultInjector, FaultPlan
from repro.engine.plan import LogicalPlan
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.fleet.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    CapacityArbiter,
)
from repro.fleet.arrivals import QueryArrival
from repro.fleet.metrics import FleetMetrics, PoolStreamStats, QueryRecord, SkylineTracker
from repro.obs.trace import TraceEvent, Tracer
from repro.workloads.generator import Workload

__all__ = [
    "FeedbackSink",
    "FleetConfig",
    "FleetEngine",
    "PoolRuntime",
    "StreamingConfig",
    "allocator_annotations",
    "static_allocator",
    "oracle_allocator",
]

#: An allocator maps (query_id, optimized plan) to an executor budget —
#: either a plain int or a :class:`repro.fleet.prediction.Prediction`.
Allocator = Callable[[str, object], object]

#: A scaling factory maps an admitted budget to the per-query policy that
#: governs mid-run growth and idle release for that query.
ScalingFactory = Callable[[int], AllocationPolicy]


class FeedbackSink(Protocol):
    """Outcome feedback: the prediction → observation loop's receiver.

    A sink attached as :attr:`FleetConfig.feedback` is called once per
    finished query, on the simulation clock, with everything the
    continual-learning loop needs: the finished
    :class:`~repro.fleet.metrics.QueryRecord` (observed runtime, granted
    budget, the execution log when :attr:`FleetConfig.record_logs` is
    on), the allocator's predicted runtime at decision time (``None``
    for non-predictive allocators), and the optimized plan whose
    features the prediction was made from.

    The hook runs *inside* the serve loop — a sink that hot-swaps the
    scorer behind a :class:`~repro.fleet.prediction.PredictionService`
    changes every decision after the current instant, which is exactly
    how :class:`repro.fleet.adaptive.AdaptiveController` closes the
    loop.  ``None`` (the default) is the zero-cost off switch: no
    per-finish work, bit-identical to the frozen serve.
    """

    def observe(
        self,
        now: float,
        record: QueryRecord,
        predicted_runtime_seconds: float | None,
        plan: LogicalPlan,
    ) -> None: ...


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs for :attr:`FleetConfig.streaming` — the O(1)-memory serve.

    Attributes:
        relative_accuracy: the latency / queue-delay / run-seconds
            sketches' accuracy bound (the α of
            :class:`repro.obs.sketch.QuantileSketch`).
        spool_dir: directory to spool finished :class:`QueryRecord`\\ s
            to, one JSONL file per pool (``pool_<i>.jsonl``, the
            :meth:`QueryRecord.to_json
            <repro.fleet.metrics.QueryRecord.to_json>` line format).
            ``None`` (the default) keeps records entirely out of the
            run: the metrics answer from the streaming accumulators
            alone.
    """

    relative_accuracy: float = 0.01
    spool_dir: str | os.PathLike | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-engine knobs.

    Attributes:
        scheduler: per-query physics (same knobs as ``simulate_query``).
        tick_interval: idle-check / policy polling period.
        idle_release_timeout: seconds of executor idleness before it is
            returned to the pool mid-query (``None`` holds budgets until
            completion).  Ignored when ``scaling`` is set — the per-query
            policy's ``idle_timeout`` governs instead.
        min_executors_per_query: floor idle release never shrinks below —
            a started query must be able to finish.  Ignored when
            ``scaling`` is set (the policy's ``min_executors`` governs).
        charge_prediction_overhead: add the allocator's measured selection
            seconds to the query's pre-admission latency (Section 5.6's
            overheads, paid where they occur: on the critical path).
        scaling: optional per-query dynamic-scaling mode — a factory
            mapping the admitted budget to an
            :class:`~repro.engine.allocation.AllocationPolicy` (e.g.
            ``lambda budget: DynamicAllocation(1, 2 * budget)``).  The
            policy is polled on the query's events and every tick; growth
            beyond the budget is granted from the pool's spare capacity,
            idle executors are shed at the policy's own timeout/floor.
            The policy's ``initial_executors`` is ignored: the admission
            budget plays that role.
        faults: optional fleet-wide perturbation layer
            (:mod:`repro.engine.faults`): every admitted query draws its
            own deterministic fault streams (keyed by the run seed and
            its stream position), failure events land on the shared
            heap, and — under the default ``replace_failed`` — a failed
            executor's admission grant survives: the arbiter reservation
            is untouched and the slot re-provisions through the normal
            ramp.  ``None`` or an inert plan (every rate zero) serves
            bit-identically to the unperturbed engine.
        record_logs: capture each served query's observed-duration
            :class:`~repro.sparklens.log.ExecutionLog` on its
            :class:`~repro.fleet.metrics.QueryRecord` — the engine's own
            accounting that the trace-rebuilt logs
            (:meth:`repro.obs.analyze.TraceAnalyzer.execution_logs`) are
            cross-checked against.  Off by default: logs hold per-task
            float lists and records are otherwise tiny.
        streaming: the O(1)-memory serve mode.  ``None`` (the default)
            materializes every :class:`~repro.fleet.metrics.QueryRecord`
            exactly as before — byte-identical to the pre-streaming
            engine.  A :class:`StreamingConfig` (or ``True`` for the
            defaults) makes every fleet driver fold finished queries
            into :class:`~repro.fleet.metrics.PoolStreamStats` instead
            of retaining them, free all per-query state eagerly, accept
            generator arrival streams (time-ordered; consumed lazily),
            and optionally spool records to JSONL.
        feedback: optional :class:`FeedbackSink` receiving every finished
            query's outcome (record, predicted runtime, optimized plan)
            on the simulation clock — the continual-learning loop's
            entry point (:mod:`repro.fleet.adaptive`).  ``None`` (the
            default) serves bit-identically to a feedback-free engine.
    """

    scheduler: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG
    tick_interval: float = 1.0
    idle_release_timeout: float | None = 30.0
    min_executors_per_query: int = 1
    charge_prediction_overhead: bool = True
    scaling: ScalingFactory | None = None
    faults: FaultPlan | None = None
    record_logs: bool = False
    streaming: StreamingConfig | bool | None = None
    feedback: FeedbackSink | None = None

    def __post_init__(self) -> None:
        # Normalize the shorthand: streaming=True means the defaults,
        # False means off.  Frozen dataclass, hence object.__setattr__.
        if self.streaming is True:
            object.__setattr__(self, "streaming", StreamingConfig())
        elif self.streaming is False:
            object.__setattr__(self, "streaming", None)

    @property
    def wants_ticks(self) -> bool:
        """Whether serving this config needs the periodic tick chain."""
        return self.idle_release_timeout is not None or self.scaling is not None


def decision_fields(
    decision: object, cap: int
) -> tuple[int, bool | None, float, float | None]:
    """Normalize an allocator's decision into its four fields.

    Returns ``(budget, cached, seconds, estimated_runtime_seconds)``
    with the budget clamped to ``[1, cap]``.  Plain-int allocators carry
    no cache/overhead/runtime metadata.
    """
    if hasattr(decision, "executors"):
        budget = int(decision.executors)
        cached = decision.cached
        seconds = float(decision.seconds)
        estimate = getattr(decision, "estimated_runtime_seconds", None)
    else:
        budget, cached, seconds, estimate = int(decision), None, 0.0, None
    return max(1, min(budget, cap)), cached, seconds, estimate


def allocator_annotations(allocator: Allocator, decision: object) -> dict:
    """The uniform record annotations every fleet driver attaches.

    ``policy`` is the allocator's self-declared ``policy_name``
    (``"static"``, ``"oracle"``, ``"prediction"``, or ``"custom"`` for
    unnamed callables) and ``predicted_executors`` is the decision
    *before* pool clamping — so a budget the pool truncated is still
    visible next to ``QueryRecord.executors_granted``.
    """
    raw = decision.executors if hasattr(decision, "executors") else decision
    return {
        "policy": getattr(allocator, "policy_name", "custom"),
        "predicted_executors": int(raw),
    }


@dataclass
class _QueryRun:
    """Mutable per-query execution state inside the fleet."""

    arrival: QueryArrival
    core: ExecutionCore
    budget: int
    admit_time: float
    prediction_cached: bool | None
    prediction_seconds: float
    estimated_runtime_seconds: float | None
    emit: Callable[[float, int, int], None]
    policy: AllocationPolicy | None = None
    injector: FaultInjector | None = None
    annotations: dict = field(default_factory=dict)
    outstanding: int = 0
    finished: bool = False


class PoolRuntime:
    """One pool's serving state machine, driven by an external event heap.

    The runtime owns everything that belongs to a single pool — the
    capacity arbiter, the per-query :class:`_QueryRun` table, the
    reserved-capacity skyline, and the finished-query records — while
    the *driver* owns the heap, the clock, and the tick chain.  Event
    handlers push follow-up events through the ``push`` callback the
    driver supplies, so every event in a multi-pool cluster still lands
    on one totally ordered heap; keeping each handler's push order
    identical to the original single-pool engine is what makes a
    sharded fleet of one pool bit-identical to :class:`FleetEngine`.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        capacity: the pool's (initial) size in executors.
        cluster: node/executor shapes and provisioning lag.
        admission: queueing policy (default FIFO).
        config: fleet knobs (shared across pools in a cluster).
        push: ``push(time, kind, q, payload)`` — schedule an event for
            this pool on the driver's heap.
        start_ticks: driver callback that starts the (shared) tick chain
            the first time any pool admits a query.
        compiled: compile-once memo mapping query id → compiled plan
            (shared across pools so each plan compiles once per cluster).
        max_capacity: ceiling an autoscaler may grow this pool to
            (defaults to ``capacity``: statically provisioned).
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving this
            pool's lifecycle events (submit/admit/finish, grant moves,
            faults, resizes) and, threaded into each query's
            :class:`~repro.engine.execution.ExecutionCore`, its
            execution events.  ``None`` is the zero-cost off switch.
        pool_index: identity stamped on emitted events (a sharded fleet
            numbers its pools; a standalone engine is pool 0).
    """

    def __init__(
        self,
        *,
        workload: Workload,
        capacity: int,
        cluster: Cluster,
        admission: AdmissionPolicy | None,
        config: FleetConfig,
        push: Callable[..., None],
        start_ticks: Callable[[float], None],
        compiled: dict[str, CompiledPlan],
        max_capacity: int | None = None,
        tracer: Tracer | None = None,
        pool_index: int = 0,
    ) -> None:
        self.workload = workload
        self.cluster = cluster
        self.config = config
        self.push = push
        self.start_ticks = start_ticks
        self.tracer = tracer
        self.pool_index = pool_index
        self.arbiter = CapacityArbiter(capacity, admission, max_capacity=max_capacity)
        self.pool_skyline = Skyline()
        self.pool_skyline.record(0.0, 0)
        self.capacity_skyline: Skyline | None = None
        self.runs: dict[int, _QueryRun] = {}
        self.records: dict[int, QueryRecord] = {}
        self._pending: dict[
            int,
            tuple[QueryArrival, bool | None, float, dict | None, float | None],
        ] = {}
        self._compiled = compiled
        self._ec = cluster.cores_per_executor
        # Streaming mode: finished queries fold into bounded accumulators
        # (and optionally a JSONL spool) instead of self.records, and
        # their _QueryRun state is freed eagerly.
        self.stats: PoolStreamStats | None = None
        self._spool = None
        streaming = config.streaming
        if streaming is not None:
            self.stats = PoolStreamStats(streaming.relative_accuracy)
            if streaming.spool_dir is not None:
                spool_dir = Path(streaming.spool_dir)
                spool_dir.mkdir(parents=True, exist_ok=True)
                self._spool = open(
                    spool_dir / f"pool_{pool_index:03d}.jsonl",
                    "w",
                    encoding="utf-8",
                )

    # --- pool state views (routing / autoscaling) ------------------------
    @property
    def capacity(self) -> int:
        return self.arbiter.capacity

    @property
    def max_capacity(self) -> int:
        return self.arbiter.max_capacity

    @property
    def free(self) -> int:
        return self.arbiter.free

    @property
    def in_use(self) -> int:
        return self.arbiter.in_use

    @property
    def queue_length(self) -> int:
        return self.arbiter.queue_length

    @property
    def active_queries(self) -> int:
        return sum(1 for run in self.runs.values() if not run.finished)

    # --- capacity elasticity ---------------------------------------------
    def track_capacity(self) -> None:
        """Start recording the provisioned-capacity skyline (autoscaled
        pools only; static pools keep ``capacity_skyline`` ``None`` so
        their metrics — and the sharded-of-one parity contract — are
        unchanged).  Streaming serves track the O(1) reduction
        (:class:`~repro.fleet.metrics.SkylineTracker`) instead."""
        if self.stats is not None:
            self.stats.capacity = SkylineTracker(0.0, self.arbiter.capacity)
            return
        self.capacity_skyline = Skyline()
        self.capacity_skyline.record(0.0, self.arbiter.capacity)

    def resize(self, now: float, new_capacity: int) -> int:
        """Move the pool to ``new_capacity`` (clamped by the arbiter:
        never below outstanding grants, never above ``max_capacity``),
        then admit whatever now fits."""
        applied = self.arbiter.resize(new_capacity)
        if self.capacity_skyline is not None:
            self.capacity_skyline.record(now, applied)
        elif self.stats is not None and self.stats.capacity is not None:
            self.stats.capacity.record(now, applied)
        if self.tracer is not None:
            self._trace(now, "pool_resize", -1, None, {"capacity": applied})
        self.drain_admissions(now)
        return applied

    # --- helpers ----------------------------------------------------------
    def _trace(
        self,
        now: float,
        kind: str,
        q: int,
        query_id: str | None,
        data: dict | None = None,
    ) -> None:
        """Emit one event stamped with this pool's index.

        Callers guard with ``if self.tracer is not None``; the untraced
        path never reaches here.  ``tuple.__new__`` skips the NamedTuple
        constructor's default handling — these fire several times per
        query, so the shortcut is worth ~2x per event.
        """
        self.tracer.emit(
            tuple.__new__(TraceEvent, (now, kind, self.pool_index, q, query_id, data))
        )
    def _compiled_plan(self, query_id: str, graph: StageGraph) -> CompiledPlan:
        compiled = self._compiled.get(query_id)
        if compiled is None or compiled.graph is not graph:
            compiled = compile_plan(graph)
            self._compiled[query_id] = compiled
        return compiled

    def record_pool(self, now: float) -> None:
        stats = self.stats
        if stats is None:
            self.pool_skyline.record(now, self.arbiter.in_use)
            return
        # Streaming: fold the step into the O(1) tracker and make the
        # capacity-invariant check (record mode does it post-hoc over
        # the full skylines) online, at the step itself.
        in_use = self.arbiter.in_use
        stats.usage.record(now, in_use)
        if in_use > self.arbiter.capacity:
            stats.capacity_ok = False

    def _idle_params(self, run: _QueryRun) -> tuple[float | None, int]:
        if run.policy is not None:
            return run.policy.idle_timeout, run.policy.min_executors
        return (
            self.config.idle_release_timeout,
            max(1, self.config.min_executors_per_query),
        )

    def poll_scaling(self, now: float, q: int) -> None:
        """Mirror the dedicated scheduler's per-event policy poll."""
        run = self.runs[q]
        policy = run.policy
        if policy is None or run.finished:
            return
        core = run.core
        state = AllocationState(
            time=now - run.admit_time,
            pending_tasks=core.pending_count(),
            running_tasks=core.running,
            active_executors=len(core.executors),
            outstanding=run.outstanding,
            cores_per_executor=self._ec,
        )
        target = min(self.arbiter.capacity, policy.desired_target(state))
        granted = len(core.executors) + run.outstanding
        if target > granted:
            # Scale-up grabs whatever the pool can spare right now; the
            # admission queue is only for the initial budget.
            got = self.arbiter.try_acquire(q, run.arrival.app_id, target - granted)
            if got:
                if self.tracer is not None:
                    self._trace(
                        now,
                        "grant_acquire",
                        q,
                        run.arrival.query_id,
                        {"executors": got},
                    )
                for t in self.cluster.grant_schedule(now, got):
                    self.push(t, "exec_arrive", q)
                run.outstanding += got
                self.record_pool(now)

    # --- admission --------------------------------------------------------
    def submit(
        self,
        now: float,
        q: int,
        arrival: QueryArrival,
        budget: int,
        cached: bool | None,
        prediction_seconds: float,
        annotations: dict | None = None,
        estimated_runtime_seconds: float | None = None,
    ) -> None:
        """Queue a routed query's budget request on this pool.

        A budget beyond this pool's ``max_capacity`` is clamped — the
        admitted grant is recorded in ``QueryRecord.executors_granted``,
        so truncation is visible, and budget-aware routers
        (:class:`~repro.fleet.routing.LeastQueuedRouter`,
        :class:`~repro.fleet.routing.CostAwareRouter`) rank pools that
        cannot cover the budget last to avoid it where possible.
        """
        budget = max(1, min(int(budget), self.arbiter.max_capacity))
        if self.tracer is not None:
            self._trace(
                now,
                "query_submit",
                q,
                arrival.query_id,
                {"executors": budget},
            )
        self._pending[q] = (
            arrival,
            cached,
            prediction_seconds,
            annotations,
            estimated_runtime_seconds,
        )
        self.arbiter.submit(
            AdmissionRequest(
                query_index=q,
                app_id=arrival.app_id,
                executors=budget,
                submit_time=now,
            )
        )
        self.drain_admissions(now)
        if q in self._pending:
            # Queued, not admitted.  The tick chain must run anyway: an
            # autoscaled pool may need a scale-up before it can admit
            # *anything* (a budget above its current capacity), and the
            # autoscaler only acts on ticks.  A single-pool FleetEngine
            # never reaches this branch before its first admission (its
            # budgets are clamped to the pool's capacity, so the first
            # submit on an empty pool always admits), which keeps the
            # tick anchoring — and bit-for-bit parity — unchanged.
            self.start_ticks(now)

    def drain_admissions(self, now: float) -> None:
        admitted = self.arbiter.admit()
        if admitted:
            self.record_pool(now)
            for request in admitted:
                self._start_query(now, request)

    def _start_query(self, now: float, request: AdmissionRequest) -> None:
        q = request.query_index
        arrival, cached, pred_seconds, annotations, estimate = self._pending.pop(q)
        graph = self.workload.stage_graph(arrival.query_id)
        policy = None
        if self.config.scaling is not None:
            policy = self.config.scaling(request.executors)
            policy.reset()
        injector = None
        if self.config.faults is not None:
            # Keyed by stream position: each query's fault streams are
            # stable across routing/admission interleavings.
            injector = self.config.faults.injector(q)
        plan = self._compiled_plan(arrival.query_id, graph)
        run = _QueryRun(
            arrival=arrival,
            core=ExecutionCore(
                plan,
                self.cluster,
                self.config.scheduler,
                record_log=self.config.record_logs,
                start_time=now,
                faults=injector,
                tracer=self.tracer,
                trace_pool=self.pool_index,
                trace_query=q,
            ),
            budget=request.executors,
            admit_time=now,
            prediction_cached=cached,
            prediction_seconds=pred_seconds,
            estimated_runtime_seconds=estimate,
            emit=lambda t, sid, eid, q=q: self.push(t, "task_done", q, (sid, eid)),
            policy=policy,
            injector=injector,
            annotations={} if annotations is None else annotations,
            outstanding=request.executors,
        )
        self.runs[q] = run
        if self.tracer is not None:
            # The admit payload carries everything the trace analyzer
            # needs to rebuild this query's ExecutionLog without touching
            # the workload: the DAG, the driver prefix, and the executor
            # shape (durations arrive later, one task_assign at a time).
            self._trace(
                now,
                "query_admit",
                q,
                arrival.query_id,
                {
                    "executors": request.executors,
                    "driver_seconds": float(plan.driver_seconds),
                    "cores_per_executor": self._ec,
                    "stage_deps": [list(deps) for deps in plan.dependencies],
                },
            )
        # Push order mirrors the dedicated scheduler's bootstrap
        # (driver_done, then the tick chain, then executor arrivals)
        # so that same-instant ties break identically in both paths.
        self.push(now + run.core.plan.driver_seconds, "driver_done", q)
        self.start_ticks(now)
        for t in self.cluster.grant_schedule(now, request.executors):
            self.push(t, "exec_arrive", q)
        self.poll_scaling(now, q)

    # --- event handlers ---------------------------------------------------
    def handle_driver_done(self, now: float, q: int) -> None:
        run = self.runs[q]
        run.core.mark_driver_done(now)
        run.core.assign(now, run.emit)
        self.poll_scaling(now, q)

    def handle_exec_arrive(self, now: float, q: int) -> None:
        run = self.runs[q]
        run.outstanding -= 1
        if run.finished:
            # The query beat its own provisioning ramp; hand the late
            # executor straight back to the pool.
            self.arbiter.release(q, 1)
            if self.tracer is not None:
                self._trace(
                    now,
                    "grant_release",
                    q,
                    run.arrival.query_id,
                    {"executors": 1, "reason": "late"},
                )
            self.record_pool(now)
            self.drain_admissions(now)
            if self.stats is not None and run.outstanding == 0:
                # Streaming: the last straggling grant is back; the run
                # held nothing but this countdown since it finished.
                del self.runs[q]
        else:
            eid = run.core.add_executor(now)
            if run.injector is not None:
                fail_at = run.injector.on_added(now, eid)
                if fail_at is not None:
                    self.push(fail_at, "exec_fail", q, eid)
                    if self.tracer is not None:
                        self._trace(
                            now,
                            "fault_inject",
                            q,
                            run.arrival.query_id,
                            {"eid": eid, "fail_at": float(fail_at)},
                        )
            run.core.assign(now, run.emit)
            self.poll_scaling(now, q)

    def handle_exec_fail(self, now: float, q: int, eid: int) -> None:
        """A drawn executor failure fired: revoke, requeue, re-provision.

        The failure kills the executor's in-flight tasks (they re-enter
        the query's pending queue, their lost progress is ledgered as
        wasted work) and — under ``replace_failed`` — schedules a
        replacement through the provisioning ramp *against the same
        arbiter reservation*: the admission grant survives the crash.
        Without replacement the slot returns to the pool, where queued
        admissions (and an autoscaler watching pressure signals) pick it
        up.
        """
        run = self.runs.get(q)
        if run is None or run.finished:
            # The query outran its failure; its grant is already back in
            # the pool (a streaming serve freed the run itself too).
            return
        outcome = run.core.fail_executor(now, eid)
        if outcome is None:
            return  # idle-released before the failure fired
        cause = run.injector.on_failed(now, eid, *outcome)
        if self.tracer is not None:
            self._trace(
                now,
                "exec_fail",
                q,
                run.arrival.query_id,
                {
                    "eid": eid,
                    "cause": cause,
                    "killed": outcome[0],
                    "wasted_s": float(outcome[1]),
                },
            )
        if self.config.faults.replace_failed:
            for t in self.cluster.grant_schedule(now, 1):
                self.push(t, "exec_arrive", q)
            run.outstanding += 1
        else:
            self.arbiter.release(q, 1)
            if self.tracer is not None:
                self._trace(
                    now,
                    "grant_release",
                    q,
                    run.arrival.query_id,
                    {"executors": 1, "reason": "failed"},
                )
            self.record_pool(now)
            self.drain_admissions(now)
        run.core.assign(now, run.emit)
        self.poll_scaling(now, q)

    def handle_task_done(self, now: float, q: int, payload: tuple) -> bool:
        """Returns ``True`` when this completion finished the query."""
        run = self.runs[q]
        stage_id, eid = payload
        if run.core.complete_task(now, stage_id, eid):
            self._finish_query(now, q)
            self.drain_admissions(now)
            return True
        run.core.assign(now, run.emit)
        self.poll_scaling(now, q)
        return False

    def _finish_query(self, now: float, q: int) -> None:
        run = self.runs[q]
        run.finished = True
        arrived = len(run.core.executors)
        run.core.executors.clear()
        if arrived:
            self.arbiter.release(q, arrived)
            if self.tracer is not None:
                self._trace(
                    now,
                    "grant_release",
                    q,
                    run.arrival.query_id,
                    {"executors": arrived, "reason": "finish"},
                )
            self.record_pool(now)
        if self.tracer is not None:
            self._trace(now, "query_finish", q, run.arrival.query_id)
        stats = self.stats
        record = QueryRecord(
            query_id=run.arrival.query_id,
            app_id=run.arrival.app_id,
            arrival_time=run.arrival.arrival_time,
            admit_time=run.admit_time,
            finish_time=now,
            executors_granted=run.budget,
            auc=run.core.skyline.auc(now),
            prediction_cached=run.prediction_cached,
            prediction_seconds=run.prediction_seconds,
            skyline=None if stats is not None else run.core.skyline,
            fault_stats=None if run.injector is None else run.injector.finalize(now),
            annotations=run.annotations,
            execution_log=run.core.build_log(),
        )
        feedback = self.config.feedback
        if feedback is not None:
            # The outcome loop: hand the finished query back to the sink
            # before the record is folded/stored, so a sink that swaps
            # the model affects every decision after this instant.  The
            # optimized-plan lookup hits the workload's memo (the same
            # object the allocator featurized).
            feedback.observe(
                now,
                record,
                run.estimated_runtime_seconds,
                self.workload.optimized_plan(run.arrival.query_id),
            )
        if stats is None:
            self.records[q] = record
            return
        # Streaming: fold, optionally spool, and free the run — its
        # skyline, core, and record all die here.  A run whose grant
        # ramp is still in flight stays until the last exec_arrive
        # hands the late executor back (handle_exec_arrive frees it).
        stats.observe(record)
        if self._spool is not None:
            self._spool.write(record.to_json())
            self._spool.write("\n")
        if run.outstanding == 0:
            del self.runs[q]

    def on_tick(self, now: float) -> None:
        """Periodic work: idle release, then per-run scaling polls."""
        released = False
        for q, run in self.runs.items():
            if run.finished:
                continue
            timeout, floor = self._idle_params(run)
            removed = run.core.release_idle(now, timeout, floor)
            if removed:
                self.arbiter.release(q, len(removed))
                released = True
                if self.tracer is not None:
                    self._trace(
                        now,
                        "grant_release",
                        q,
                        run.arrival.query_id,
                        {"executors": len(removed), "reason": "idle"},
                    )
                if run.injector is not None:
                    for eid in removed:
                        run.injector.on_removed(now, eid)
        if released:
            self.record_pool(now)
            self.drain_admissions(now)
        if self.config.scaling is not None:
            for q in self.runs:
                self.poll_scaling(now, q)

    # --- completion -------------------------------------------------------
    def unfinished_queries(self) -> list[int]:
        return [q for q, run in self.runs.items() if not run.finished]

    def finalize(
        self, serving_window: tuple[float, float] | None = None
    ) -> FleetMetrics:
        """Wrap this pool's outcome as :class:`FleetMetrics` (records in
        stream order).

        Args:
            serving_window: the billing span to impose (a sharded fleet
                passes the cluster-wide window so idle pools still pay
                for their provisioned capacity); ``None`` bills this
                pool's own records' span.
        """
        if self._spool is not None:
            self._spool.close()
            self._spool = None
        stats = self.stats
        if stats is not None:
            capacity = (
                stats.capacity.peak
                if stats.capacity is not None
                else self.arbiter.capacity
            )
            return FleetMetrics(
                capacity=capacity,
                cores_per_executor=self._ec,
                records=[],
                pool_skyline=self.pool_skyline,
                capacity_skyline=None,
                serving_window=serving_window,
                stats=stats,
            )
        capacity = (
            self.capacity_skyline.max_executors
            if self.capacity_skyline is not None
            else self.arbiter.capacity
        )
        return FleetMetrics(
            capacity=capacity,
            cores_per_executor=self._ec,
            records=[self.records[q] for q in sorted(self.records)],
            pool_skyline=self.pool_skyline,
            capacity_skyline=self.capacity_skyline,
            serving_window=serving_window,
        )


class FleetEngine:
    """Serve an arrival stream through a shared executor pool.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        capacity: pool size in executors — the arbiter's hard budget.
        allocator: per-query executor-budget decision (see module docs).
        cluster: node/executor shapes and provisioning lag.  Only the
            executor shape and grant ramp are used; pool *capacity* is
            this engine's ``capacity``, not ``cluster.max_executors``.
        admission: queueing policy (default FIFO).
        config: fleet knobs.
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving the
            run's full event stream — serve/arrival/prediction events
            from this driver, lifecycle events from the pool runtime,
            execution events from every query's core.  ``None`` (the
            default) serves bit-identically to an untraced engine.
    """

    def __init__(
        self,
        workload: Workload,
        capacity: int,
        allocator: Allocator,
        cluster: Cluster = Cluster(),
        admission: AdmissionPolicy | None = None,
        config: FleetConfig = FleetConfig(),
        tracer: Tracer | None = None,
    ) -> None:
        self.workload = workload
        self.capacity = int(capacity)
        self.allocator = allocator
        self.cluster = cluster
        self.admission = admission
        self.config = config
        self.tracer = tracer
        # Compile-once memo, keyed like the prediction service's
        # plan-signature cache: the workload hands out one stage graph per
        # query id, so the id keys its compiled form across runs.
        self._compiled: dict[str, CompiledPlan] = {}

    def serve(self, arrivals: Iterable[QueryArrival]) -> FleetMetrics:
        """Play out the whole stream; returns the fleet's metrics.

        In streaming mode (:attr:`FleetConfig.streaming`) ``arrivals``
        may be any time-ordered iterable — a generator is consumed
        lazily, one arrival ahead of the clock, so the stream never
        materializes.  Record mode keeps the eager list semantics (and
        its duplicate-index validation) unchanged.
        """
        # Queries are keyed internally by *stream position*, never by the
        # user-supplied ``QueryArrival.index`` field — an earlier version
        # mixed the two, silently mismatching allocator decisions with
        # queries whenever index fields did not equal list positions.
        config = self.config
        streaming = config.streaming
        ticking = False

        counter = itertools.count()
        # Heap entries are (time, class, seq, kind, q, payload): class 0
        # is an arrival (seq = stream position), class 1 everything else
        # (seq = push counter).  Same total order the single-counter
        # scheme produced when all arrivals were pushed up front — same-
        # instant ties break arrivals-first in stream order, then
        # everything else in push order — but it also holds when
        # arrivals enter the heap lazily, which is what lets streaming
        # mode keep O(1) arrivals in flight without perturbing record
        # mode by a single event.
        events: list[tuple[float, int, int, str, int, object]] = []

        def push(
            time: float, kind: str, q: int = -1, payload: object = None
        ) -> None:
            heapq.heappush(events, (time, 1, next(counter), kind, q, payload))

        def start_ticks(now: float) -> None:
            # The tick chain is anchored at the first admission, matching
            # the single-query scheduler's ticks at k·tick_interval from
            # query submission.
            nonlocal ticking
            if config.wants_ticks and not ticking:
                ticking = True
                push(now + config.tick_interval, "tick")

        runtime = PoolRuntime(
            workload=self.workload,
            capacity=self.capacity,
            cluster=self.cluster,
            admission=self.admission,
            config=config,
            push=push,
            start_ticks=start_ticks,
            compiled=self._compiled,
            tracer=self.tracer,
            pool_index=0,
        )
        tracer = self.tracer
        decisions: dict[
            int,
            tuple[QueryArrival, int, bool | None, float, float | None, dict],
        ] = {}
        total = 0
        finished = 0
        exhausted = True
        now = 0.0

        if streaming is None:
            stream = validate_stream(arrivals)
            total = len(stream)
            for pos, arrival in enumerate(stream):
                heapq.heappush(
                    events, (arrival.arrival_time, 0, pos, "arrive", pos, arrival)
                )
        else:
            arrival_iter = iter(arrivals)
            last_arrival_t = 0.0

            def pull_arrival() -> None:
                # Keep exactly one unprocessed arrival in the heap; the
                # next is pulled when this one's arrive event fires.
                nonlocal total, exhausted, last_arrival_t
                for arrival in arrival_iter:
                    t = arrival.arrival_time
                    if t < last_arrival_t:
                        raise ValueError(
                            "streaming arrival streams must be time-ordered"
                        )
                    last_arrival_t = t
                    heapq.heappush(events, (t, 0, total, "arrive", total, arrival))
                    total += 1
                    return
                exhausted = True

            exhausted = False
            pull_arrival()
            if total == 0:
                raise ValueError("cannot serve an empty arrival stream")

        if tracer is not None:
            tracer.emit(
                TraceEvent(
                    0.0, "serve_begin", -1, -1, None, {"pools": [self.capacity]}
                )
            )

        # --- main loop ---------------------------------------------------
        while events:
            now, _, _, kind, q, payload = heapq.heappop(events)
            if kind == "arrive":
                arrival = payload
                plan = self.workload.optimized_plan(arrival.query_id)
                decision = self.allocator(arrival.query_id, plan)
                budget, cached, seconds, estimate = decision_fields(
                    decision, self.capacity
                )
                notes = allocator_annotations(self.allocator, decision)
                decisions[q] = (arrival, budget, cached, seconds, estimate, notes)
                if tracer is not None:
                    tracer.emit(
                        TraceEvent(now, "query_arrive", 0, q, arrival.query_id)
                    )
                    tracer.emit(
                        TraceEvent(
                            now,
                            "query_predict",
                            0,
                            q,
                            arrival.query_id,
                            {
                                "executors": notes["predicted_executors"],
                                "cached": cached,
                                "seconds": seconds,
                                "estimated_runtime_s": estimate,
                                "policy": notes["policy"],
                            },
                        )
                    )
                delay = seconds if config.charge_prediction_overhead else 0.0
                push(now + delay, "submit", q)
                if not exhausted:
                    pull_arrival()
            elif kind == "submit":
                arrival, budget, cached, seconds, estimate, notes = decisions.pop(q)
                runtime.submit(
                    now, q, arrival, budget, cached, seconds, notes, estimate
                )
            elif kind == "driver_done":
                runtime.handle_driver_done(now, q)
            elif kind == "exec_arrive":
                runtime.handle_exec_arrive(now, q)
            elif kind == "task_done":
                if runtime.handle_task_done(now, q, payload):
                    finished += 1
            elif kind == "exec_fail":
                runtime.handle_exec_fail(now, q, payload)
            elif kind == "tick":
                runtime.on_tick(now)
                if finished < total or not exhausted:
                    if not events:
                        # Stall guard: the tick chain is the only thing
                        # left, so no run will ever release or acquire
                        # capacity again.  Without this check the ticks
                        # would spin forever.  (Unreachable while the
                        # arrival stream is live: its next arrive event
                        # is in the heap.)
                        _raise_stalled(runtime.arbiter, total - finished)
                    push(now + config.tick_interval, "tick")

        if finished < total:
            unfinished = total - finished
            if runtime.arbiter.queue_length > 0:
                _raise_stalled(runtime.arbiter, unfinished)
            raise RuntimeError(
                f"fleet run ended with {unfinished} unfinished queries "
                f"(running: {runtime.unfinished_queries()}, "
                f"queued: {runtime.arbiter.queue_length})"
            )

        if tracer is not None:
            tracer.emit(
                TraceEvent(now, "serve_end", -1, -1, None, {"queries": total})
            )
        metrics = runtime.finalize()
        feedback = config.feedback
        if feedback is not None:
            # A sink that keeps ledger state (AdaptiveController) hands
            # its end-of-run snapshot to the metrics; plain sinks without
            # one leave the field None.
            snapshot = getattr(feedback, "stats_snapshot", None)
            if callable(snapshot):
                metrics.adaptive = snapshot()
        return metrics


def validate_stream(arrivals: Sequence[QueryArrival]) -> list[QueryArrival]:
    """The shared arrival-stream checks all fleet drivers apply."""
    stream = list(arrivals)
    if not stream:
        raise ValueError("cannot serve an empty arrival stream")
    if len({a.index for a in stream}) != len(stream):
        raise ValueError("arrival stream has duplicate indices")
    return stream


def _raise_stalled(arbiter: CapacityArbiter, unfinished: int) -> None:
    if arbiter.queue_length > 0:
        raise RuntimeError(
            f"admission stalled: {arbiter.queue_length} queued requests, "
            "an idle pool, and a policy that admits none of them"
        )
    raise RuntimeError(
        f"fleet stalled: {unfinished} admitted queries hold no executors, "
        "have no grants in flight, and their scaling policies acquire none"
    )


def static_allocator(n: int) -> Allocator:
    """The fixed-budget baseline: every query gets ``n`` executors."""
    if n < 1:
        raise ValueError("static budgets need at least 1 executor")

    def allocate(query_id: str, plan: object) -> int:
        return n

    allocate.policy_name = "static"
    return allocate


def oracle_allocator(
    workload: Workload,
    cluster: Cluster = Cluster(),
    candidates: Sequence[int] = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48),
    objective: Callable[[np.ndarray, np.ndarray], int] | None = None,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
) -> Allocator:
    """The hindsight baseline: the selection objective applied to the
    query's *true* run-time curve.

    AutoExecutor applies an objective (default: the paper's elbow) to a
    *predicted* ``t(n)``; the oracle measures the real curve with one
    batched simulator sweep over the candidate counts
    (:func:`repro.core.selection.true_runtime_curve`) and applies the
    same objective to it — perfect curve knowledge, zero prediction
    error.  Results are memoized per query id: the oracle exists as the
    bound predictions are judged against.
    """
    from repro.core.selection import elbow_point, true_runtime_curve

    if objective is None:
        objective = elbow_point
    usable = [n for n in candidates if 1 <= n <= cluster.max_executors]
    if len(usable) < 2:
        raise ValueError("need at least two usable candidate counts")
    grid = np.asarray(usable)
    cache: dict[str, int] = {}

    def allocate(query_id: str, plan: object) -> int:
        if query_id not in cache:
            graph = workload.stage_graph(query_id)
            curve = true_runtime_curve(graph, usable, cluster, config)
            cache[query_id] = int(objective(grid, curve))
        return cache[query_id]

    allocate.policy_name = "oracle"
    return allocate

"""The fleet engine: many concurrent query runs on one shared clock.

``repro.engine.scheduler.simulate_query`` plays out *one* query on a
dedicated cluster.  The fleet engine multiplexes a whole arrival stream:
each admitted query executes its stage DAG — waves of tasks, provisioning
lag, memory-pressure and coordination physics, idle releases — on the
executor budget the capacity arbiter granted it, and every grant and
release moves shared pool state that decides when the *next* queued query
may start.

Both simulators drive the same per-query state machine, the shared
:class:`~repro.engine.execution.ExecutionCore`; this module contributes
only the fleet-specific parts — the shared event heap, admission through
the :class:`~repro.fleet.admission.CapacityArbiter`, and per-query
capacity accounting against the pool.  The contract that keeps the two
paths honest: a fleet of one query on an uncontended pool reproduces
``simulate_query`` under :class:`~repro.engine.allocation.BudgetAllocation`
*bit-for-bit* — runtime, AUC, and skyline — a property asserted across
the whole TPC-DS workload in ``tests/engine/test_execution_parity.py``
and re-checked by the CI bench gate.

Allocators decide each query's *admission budget*.  Three are provided: a
:func:`static_allocator` (the default-configuration baseline), the online
:class:`~repro.fleet.prediction.PredictionService` (AutoExecutor), and an
:func:`oracle_allocator` that probes the simulator itself for the
cheapest near-optimal count (the upper bound predictions chase).

On top of the fixed budget, :attr:`FleetConfig.scaling` turns on
*mid-query dynamic scaling*: each admitted query gets an
:class:`~repro.engine.allocation.AllocationPolicy` (built from its
budget) that is polled after every one of its events and at every tick,
exactly like the dedicated-cluster scheduler polls its policy.  Scale-up
requests draw additional executors from whatever the pool can spare
right now (no queueing — the reservation the query queued for was its
admission budget), and idle executors shed below the budget return to
the pool for other queries; the arbiter keeps the pool invariant either
way.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.engine.allocation import AllocationPolicy, AllocationState
from repro.engine.cluster import Cluster
from repro.engine.execution import (
    DEFAULT_SCHEDULER_CONFIG,
    CompiledPlan,
    ExecutionCore,
    SchedulerConfig,
    compile_plan,
)
from repro.engine.skyline import Skyline
from repro.engine.stages import StageGraph
from repro.fleet.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    CapacityArbiter,
)
from repro.fleet.arrivals import QueryArrival
from repro.fleet.metrics import FleetMetrics, QueryRecord
from repro.workloads.generator import Workload

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "static_allocator",
    "oracle_allocator",
]

#: An allocator maps (query_id, optimized plan) to an executor budget —
#: either a plain int or a :class:`repro.fleet.prediction.Prediction`.
Allocator = Callable[[str, object], object]

#: A scaling factory maps an admitted budget to the per-query policy that
#: governs mid-run growth and idle release for that query.
ScalingFactory = Callable[[int], AllocationPolicy]


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-engine knobs.

    Attributes:
        scheduler: per-query physics (same knobs as ``simulate_query``).
        tick_interval: idle-check / policy polling period.
        idle_release_timeout: seconds of executor idleness before it is
            returned to the pool mid-query (``None`` holds budgets until
            completion).  Ignored when ``scaling`` is set — the per-query
            policy's ``idle_timeout`` governs instead.
        min_executors_per_query: floor idle release never shrinks below —
            a started query must be able to finish.  Ignored when
            ``scaling`` is set (the policy's ``min_executors`` governs).
        charge_prediction_overhead: add the allocator's measured selection
            seconds to the query's pre-admission latency (Section 5.6's
            overheads, paid where they occur: on the critical path).
        scaling: optional per-query dynamic-scaling mode — a factory
            mapping the admitted budget to an
            :class:`~repro.engine.allocation.AllocationPolicy` (e.g.
            ``lambda budget: DynamicAllocation(1, 2 * budget)``).  The
            policy is polled on the query's events and every tick; growth
            beyond the budget is granted from the pool's spare capacity,
            idle executors are shed at the policy's own timeout/floor.
            The policy's ``initial_executors`` is ignored: the admission
            budget plays that role.
    """

    scheduler: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG
    tick_interval: float = 1.0
    idle_release_timeout: float | None = 30.0
    min_executors_per_query: int = 1
    charge_prediction_overhead: bool = True
    scaling: ScalingFactory | None = None


@dataclass
class _QueryRun:
    """Mutable per-query execution state inside the fleet."""

    arrival: QueryArrival
    core: ExecutionCore
    budget: int
    admit_time: float
    prediction_cached: bool | None
    prediction_seconds: float
    emit: Callable[[float, int, int], None]
    policy: AllocationPolicy | None = None
    outstanding: int = 0
    finished: bool = False


class FleetEngine:
    """Serve an arrival stream through a shared executor pool.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        capacity: pool size in executors — the arbiter's hard budget.
        allocator: per-query executor-budget decision (see module docs).
        cluster: node/executor shapes and provisioning lag.  Only the
            executor shape and grant ramp are used; pool *capacity* is
            this engine's ``capacity``, not ``cluster.max_executors``.
        admission: queueing policy (default FIFO).
        config: fleet knobs.
    """

    def __init__(
        self,
        workload: Workload,
        capacity: int,
        allocator: Allocator,
        cluster: Cluster = Cluster(),
        admission: AdmissionPolicy | None = None,
        config: FleetConfig = FleetConfig(),
    ) -> None:
        self.workload = workload
        self.capacity = int(capacity)
        self.allocator = allocator
        self.cluster = cluster
        self.admission = admission
        self.config = config
        # Compile-once memo, keyed like the prediction service's
        # plan-signature cache: the workload hands out one stage graph per
        # query id, so the id keys its compiled form across runs.
        self._compiled: dict[str, CompiledPlan] = {}

    def _compiled_plan(self, query_id: str, graph: StageGraph) -> CompiledPlan:
        compiled = self._compiled.get(query_id)
        if compiled is None or compiled.graph is not graph:
            compiled = compile_plan(graph)
            self._compiled[query_id] = compiled
        return compiled

    def serve(self, arrivals: Sequence[QueryArrival]) -> FleetMetrics:
        """Play out the whole stream; returns the fleet's metrics."""
        # Queries are keyed internally by *stream position*, never by the
        # user-supplied ``QueryArrival.index`` field — an earlier version
        # mixed the two, silently mismatching allocator decisions with
        # queries whenever index fields did not equal list positions.
        stream = list(arrivals)
        if not stream:
            raise ValueError("cannot serve an empty arrival stream")
        if len({a.index for a in stream}) != len(stream):
            raise ValueError("arrival stream has duplicate indices")
        arbiter = CapacityArbiter(self.capacity, self.admission)
        pool_skyline = Skyline()
        pool_skyline.record(0.0, 0)
        config = self.config
        cluster = self.cluster
        ec = cluster.cores_per_executor
        ticks_wanted = (
            config.idle_release_timeout is not None
            or config.scaling is not None
        )
        ticking = False

        counter = itertools.count()
        events: list[tuple[float, int, str, int, object]] = []

        def push(time: float, kind: str, q: int = -1, payload=None) -> None:
            heapq.heappush(events, (time, next(counter), kind, q, payload))

        runs: dict[int, _QueryRun] = {}
        decisions: dict[int, tuple[int, bool | None, float]] = {}
        records: dict[int, QueryRecord] = {}
        unfinished = len(stream)

        def record_pool(now: float) -> None:
            pool_skyline.record(now, arbiter.in_use)

        # --- per-query execution ----------------------------------------
        def idle_params(run: _QueryRun) -> tuple[float | None, int]:
            if run.policy is not None:
                return run.policy.idle_timeout, run.policy.min_executors
            return (
                config.idle_release_timeout,
                max(1, config.min_executors_per_query),
            )

        def poll_scaling(now: float, q: int) -> None:
            """Mirror the dedicated scheduler's per-event policy poll."""
            run = runs[q]
            policy = run.policy
            if policy is None or run.finished:
                return
            core = run.core
            state = AllocationState(
                time=now - run.admit_time,
                pending_tasks=core.pending_count(),
                running_tasks=core.running,
                active_executors=len(core.executors),
                outstanding=run.outstanding,
                cores_per_executor=ec,
            )
            target = min(self.capacity, policy.desired_target(state))
            granted = len(core.executors) + run.outstanding
            if target > granted:
                # Scale-up grabs whatever the pool can spare right now;
                # the admission queue is only for the initial budget.
                got = arbiter.try_acquire(
                    q, run.arrival.app_id, target - granted
                )
                if got:
                    for t in cluster.grant_schedule(now, got):
                        push(t, "exec_arrive", q)
                    run.outstanding += got
                    record_pool(now)

        def start_query(now: float, request: AdmissionRequest) -> None:
            q = request.query_index
            arrival = stream[q]
            graph = self.workload.stage_graph(arrival.query_id)
            _, cached, pred_seconds = decisions[q]
            policy = None
            if config.scaling is not None:
                policy = config.scaling(request.executors)
                policy.reset()
            run = _QueryRun(
                arrival=arrival,
                core=ExecutionCore(
                    self._compiled_plan(arrival.query_id, graph),
                    cluster,
                    config.scheduler,
                    start_time=now,
                ),
                budget=request.executors,
                admit_time=now,
                prediction_cached=cached,
                prediction_seconds=pred_seconds,
                emit=lambda t, sid, eid, q=q: push(
                    t, "task_done", q, (sid, eid)
                ),
                policy=policy,
                outstanding=request.executors,
            )
            runs[q] = run
            # Push order mirrors the dedicated scheduler's bootstrap
            # (driver_done, then the tick chain, then executor arrivals)
            # so that same-instant ties break identically in both paths.
            push(now + run.core.plan.driver_seconds, "driver_done", q)
            start_ticks(now)
            for t in cluster.grant_schedule(now, request.executors):
                push(t, "exec_arrive", q)
            poll_scaling(now, q)

        def start_ticks(now: float) -> None:
            # The tick chain is anchored at the first admission, matching
            # the single-query scheduler's ticks at k·tick_interval from
            # query submission.
            nonlocal ticking
            if ticks_wanted and not ticking:
                ticking = True
                push(now + config.tick_interval, "tick")

        def finish_query(now: float, q: int) -> None:
            nonlocal unfinished
            run = runs[q]
            run.finished = True
            unfinished -= 1
            arrived = len(run.core.executors)
            run.core.executors.clear()
            if arrived:
                arbiter.release(q, arrived)
                record_pool(now)
            records[q] = QueryRecord(
                query_id=run.arrival.query_id,
                app_id=run.arrival.app_id,
                arrival_time=run.arrival.arrival_time,
                admit_time=run.admit_time,
                finish_time=now,
                executors_granted=run.budget,
                auc=run.core.skyline.auc(now),
                prediction_cached=run.prediction_cached,
                prediction_seconds=run.prediction_seconds,
                skyline=run.core.skyline,
            )

        def drain_admissions(now: float) -> None:
            admitted = arbiter.admit()
            if admitted:
                record_pool(now)
                for request in admitted:
                    start_query(now, request)

        def release_idle(now: float) -> None:
            released = False
            for q, run in runs.items():
                if run.finished:
                    continue
                timeout, floor = idle_params(run)
                removed = run.core.release_idle(now, timeout, floor)
                if removed:
                    arbiter.release(q, len(removed))
                    released = True
            if released:
                record_pool(now)
                drain_admissions(now)

        # --- bootstrap ---------------------------------------------------
        for pos, arrival in enumerate(stream):
            push(arrival.arrival_time, "arrive", pos)

        # --- main loop ---------------------------------------------------
        while events:
            now, _, kind, q, payload = heapq.heappop(events)
            if kind == "arrive":
                arrival = stream[q]
                plan = self.workload.optimized_plan(arrival.query_id)
                decision = self.allocator(arrival.query_id, plan)
                if hasattr(decision, "executors"):
                    budget = int(decision.executors)
                    cached = decision.cached
                    seconds = float(decision.seconds)
                else:
                    budget, cached, seconds = int(decision), None, 0.0
                budget = max(1, min(budget, self.capacity))
                decisions[q] = (budget, cached, seconds)
                delay = (
                    seconds if config.charge_prediction_overhead else 0.0
                )
                push(now + delay, "submit", q)
            elif kind == "submit":
                arrival = stream[q]
                budget, _, _ = decisions[q]
                arbiter.submit(
                    AdmissionRequest(
                        query_index=q,
                        app_id=arrival.app_id,
                        executors=budget,
                        submit_time=now,
                    )
                )
                drain_admissions(now)
            elif kind == "driver_done":
                run = runs[q]
                run.core.mark_driver_done()
                run.core.assign(now, run.emit)
                poll_scaling(now, q)
            elif kind == "exec_arrive":
                run = runs[q]
                run.outstanding -= 1
                if run.finished:
                    # The query beat its own provisioning ramp; hand the
                    # late executor straight back to the pool.
                    arbiter.release(q, 1)
                    record_pool(now)
                    drain_admissions(now)
                else:
                    run.core.add_executor(now)
                    run.core.assign(now, run.emit)
                    poll_scaling(now, q)
            elif kind == "task_done":
                run = runs[q]
                stage_id, eid = payload
                if run.core.complete_task(now, stage_id, eid):
                    finish_query(now, q)
                    drain_admissions(now)
                else:
                    run.core.assign(now, run.emit)
                    poll_scaling(now, q)
            elif kind == "tick":
                release_idle(now)
                if config.scaling is not None:
                    for pos in runs:
                        poll_scaling(now, pos)
                if unfinished > 0:
                    if not events:
                        # Stall guard: the tick chain is the only thing
                        # left, so no run will ever release or acquire
                        # capacity again.  Without this check the ticks
                        # would spin forever.
                        _raise_stalled(arbiter, unfinished)
                    push(now + config.tick_interval, "tick")

        if unfinished > 0:
            if arbiter.queue_length > 0:
                _raise_stalled(arbiter, unfinished)
            stuck = [q for q, r in runs.items() if not r.finished]
            raise RuntimeError(
                f"fleet run ended with {unfinished} unfinished queries "
                f"(running: {stuck}, queued: {arbiter.queue_length})"
            )

        ordered = [records[pos] for pos in range(len(stream))]
        return FleetMetrics(
            capacity=self.capacity,
            cores_per_executor=ec,
            records=ordered,
            pool_skyline=pool_skyline,
        )


def _raise_stalled(arbiter: CapacityArbiter, unfinished: int) -> None:
    if arbiter.queue_length > 0:
        raise RuntimeError(
            f"admission stalled: {arbiter.queue_length} queued requests, "
            "an idle pool, and a policy that admits none of them"
        )
    raise RuntimeError(
        f"fleet stalled: {unfinished} admitted queries hold no executors, "
        "have no grants in flight, and their scaling policies acquire none"
    )


def static_allocator(n: int) -> Allocator:
    """The fixed-budget baseline: every query gets ``n`` executors."""
    if n < 1:
        raise ValueError("static budgets need at least 1 executor")

    def allocate(query_id: str, plan: object) -> int:
        return n

    return allocate


def oracle_allocator(
    workload: Workload,
    cluster: Cluster = Cluster(),
    candidates: Sequence[int] = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48),
    objective: Callable[[np.ndarray, np.ndarray], int] | None = None,
    config: SchedulerConfig = DEFAULT_SCHEDULER_CONFIG,
) -> Allocator:
    """The hindsight baseline: the selection objective applied to the
    query's *true* run-time curve.

    AutoExecutor applies an objective (default: the paper's elbow) to a
    *predicted* ``t(n)``; the oracle measures the real curve with one
    batched simulator sweep over the candidate counts
    (:func:`repro.core.selection.true_runtime_curve`) and applies the
    same objective to it — perfect curve knowledge, zero prediction
    error.  Results are memoized per query id: the oracle exists as the
    bound predictions are judged against.
    """
    from repro.core.selection import elbow_point, true_runtime_curve

    if objective is None:
        objective = elbow_point
    usable = [n for n in candidates if 1 <= n <= cluster.max_executors]
    if len(usable) < 2:
        raise ValueError("need at least two usable candidate counts")
    grid = np.asarray(usable)
    cache: dict[str, int] = {}

    def allocate(query_id: str, plan: object) -> int:
        if query_id not in cache:
            graph = workload.stage_graph(query_id)
            curve = true_runtime_curve(graph, usable, cluster, config)
            cache[query_id] = int(objective(grid, curve))
        return cache[query_id]

    return allocate

"""The sharded fleet: N executor pools behind a router, on one clock.

One pool cannot serve planet-scale traffic: admission becomes a single
convoy, capacity is one blast radius, and provisioning is all-or-nothing.
The sharded fleet is the horizontal axis — several
:class:`~repro.fleet.engine.PoolRuntime` pools multiplexed on one
discrete-event heap, with two new control loops in front of and above
them:

- a **router** (:mod:`repro.fleet.routing`) places each query on a pool
  at submit time, from round-robin through cost-aware
  (prediction-estimate-weighted) placement;
- per-pool **autoscalers** (:mod:`repro.fleet.autoscaler`) move each
  pool's capacity between a floor and a ceiling from queue-delay and
  utilization signals, with provisioning lag on the way up and a
  cooldown on the way down — and every provisioned executor-second,
  idle or not, lands on the bill.

The parity contract that keeps this layer honest: a sharded fleet of
**one statically provisioned pool** reproduces
:meth:`FleetEngine.serve <repro.fleet.engine.FleetEngine.serve>`
*bit-for-bit* — same records, same skylines, same summary — because both
drivers issue the identical event sequence to the identical
:class:`PoolRuntime`.  Asserted in ``tests/fleet/test_cluster.py`` and
re-checked in CI by the fleet bench gate
(``benchmarks/perf/run_fleet_bench.py`` / ``compare.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.cluster import Cluster
from repro.engine.execution import CompiledPlan
from repro.fleet.admission import AdmissionPolicy
from repro.fleet.arrivals import QueryArrival
from repro.fleet.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.fleet.engine import (
    Allocator,
    FleetConfig,
    PoolRuntime,
    _raise_stalled,
    allocator_annotations,
    decision_fields,
    validate_stream,
)
from repro.fleet.metrics import ClusterMetrics
from repro.obs.trace import TraceEvent, Tracer
from repro.fleet.routing import (
    DEFAULT_RUNTIME_ESTIMATE_S,
    PoolView,
    Router,
    RoundRobinRouter,
    RoutingRequest,
)
from repro.workloads.generator import Workload

__all__ = ["PoolSpec", "ShardedFleet"]


@dataclass(frozen=True)
class PoolSpec:
    """One pool's shape inside a sharded fleet.

    Attributes:
        capacity: initial provisioned size (executors).
        admission: queueing policy for this pool (default FIFO).
        autoscaler: elastic-capacity config; ``None`` keeps the pool
            statically provisioned (and its metrics free of idle
            charges — the parity-preserving default).
    """

    capacity: int
    admission: AdmissionPolicy | None = None
    autoscaler: AutoscalerConfig | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("pool capacity must be at least 1 executor")
        if self.autoscaler is not None:
            if not (
                self.autoscaler.min_capacity
                <= self.capacity
                <= self.autoscaler.max_capacity
            ):
                raise ValueError(
                    "initial capacity must sit inside the autoscaler's "
                    "[min_capacity, max_capacity] range"
                )

    @property
    def max_capacity(self) -> int:
        return (
            self.capacity if self.autoscaler is None else self.autoscaler.max_capacity
        )


class ShardedFleet:
    """Serve an arrival stream across several pools behind a router.

    Args:
        workload: supplies plans and compiled stage graphs per query id.
        pools: per-pool shapes — :class:`PoolSpec` instances, or plain
            ints as shorthand for statically provisioned pools.
        allocator: per-query executor-budget decision, shared by all
            pools (same contract as :class:`~repro.fleet.engine.FleetEngine`).
        router: placement policy (default round-robin).
        cluster: node/executor shapes and provisioning lag (shared).
        config: fleet knobs (shared by every pool).
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving the
            cluster's full event stream — arrival/prediction/routing
            events from this driver, lifecycle events from every pool
            runtime and autoscaler, execution events from every query's
            core, all stamped with their pool index.  ``None`` (the
            default) serves bit-identically to an untraced fleet.
    """

    def __init__(
        self,
        workload: Workload,
        pools: Sequence[PoolSpec | int],
        allocator: Allocator,
        router: Router | None = None,
        cluster: Cluster = Cluster(),
        config: FleetConfig = FleetConfig(),
        tracer: Tracer | None = None,
    ) -> None:
        specs = [
            spec if isinstance(spec, PoolSpec) else PoolSpec(capacity=int(spec))
            for spec in pools
        ]
        if not specs:
            raise ValueError("a sharded fleet needs at least one pool")
        self.workload = workload
        self.pools = specs
        self.allocator = allocator
        self.router: Router = router if router is not None else RoundRobinRouter()
        self.cluster = cluster
        self.config = config
        self.tracer = tracer
        # One compile-once memo for the whole cluster: every pool serves
        # the same workload, so a plan compiles once, not once per pool.
        self._compiled: dict[str, CompiledPlan] = {}

    @property
    def n_pools(self) -> int:
        return len(self.pools)

    @property
    def max_budget(self) -> int:
        """Largest admission budget any pool could ever grant."""
        return max(spec.max_capacity for spec in self.pools)

    def serve(self, arrivals: Iterable[QueryArrival]) -> ClusterMetrics:
        """Play out the whole stream; returns the cluster's metrics.

        In streaming mode (:attr:`FleetConfig.streaming`) ``arrivals``
        may be any time-ordered iterable — consumed lazily, one arrival
        ahead of the clock — and the returned :class:`ClusterMetrics`
        carries per-pool sketches instead of records.
        """
        config = self.config
        streaming = config.streaming
        ticking = False

        counter = itertools.count()
        # (time, class, seq, kind, pool, q, payload) — class 0 arrivals
        # keyed by stream position, class 1 everything else keyed by the
        # push counter.  Identical total order to the old single-counter
        # heap (arrivals were always pushed first), but correct even when
        # arrivals enter lazily; see FleetEngine.serve for the argument.
        events: list[tuple[float, int, int, str, int, int, object]] = []

        def push(
            time: float, kind: str, pool: int, q: int = -1, payload: object = None
        ) -> None:
            heapq.heappush(events, (time, 1, next(counter), kind, pool, q, payload))

        # Any autoscaled pool needs the tick chain even when the fleet
        # config itself asks for no idle release or scaling.
        wants_ticks = config.wants_ticks or any(
            spec.autoscaler is not None for spec in self.pools
        )

        def start_ticks(now: float) -> None:
            # One tick chain for the whole cluster, anchored at the first
            # admission anywhere — exactly the single-pool engine's
            # anchoring when the cluster has one pool.
            nonlocal ticking
            if wants_ticks and not ticking:
                ticking = True
                push(now + config.tick_interval, "tick", -1)

        runtimes: list[PoolRuntime] = []
        scalers: dict[int, PoolAutoscaler] = {}
        for i, spec in enumerate(self.pools):
            runtime = PoolRuntime(
                workload=self.workload,
                capacity=spec.capacity,
                cluster=self.cluster,
                admission=spec.admission,
                config=config,
                push=(
                    lambda time, kind, q=-1, payload=None, pool=i: push(
                        time, kind, pool, q, payload
                    )
                ),
                start_ticks=start_ticks,
                compiled=self._compiled,
                max_capacity=spec.max_capacity,
                tracer=self.tracer,
                pool_index=i,
            )
            if spec.autoscaler is not None:
                runtime.track_capacity()
                scalers[i] = PoolAutoscaler(spec.autoscaler, tracer=self.tracer, pool=i)
            runtimes.append(runtime)

        tracer = self.tracer
        decisions: dict[int, tuple[int, bool | None, float, float | None]] = {}
        notes: dict[int, dict] = {}
        pool_of: dict[int, int] = {}
        total = 0
        finished = 0
        exhausted = True

        if streaming is None:
            stream = validate_stream(arrivals)
            total = len(stream)
        else:
            arrival_iter = iter(arrivals)
            last_arrival_t = 0.0

            def pull_arrival() -> None:
                nonlocal total, exhausted, last_arrival_t
                for arrival in arrival_iter:
                    t = arrival.arrival_time
                    if t < last_arrival_t:
                        raise ValueError(
                            "streaming arrival streams must be time-ordered"
                        )
                    last_arrival_t = t
                    heapq.heappush(
                        events, (t, 0, total, "arrive", -1, total, arrival)
                    )
                    total += 1
                    return
                exhausted = True

        if tracer is not None:
            tracer.emit(
                TraceEvent(
                    0.0,
                    "serve_begin",
                    -1,
                    -1,
                    None,
                    {"pools": [spec.capacity for spec in self.pools]},
                )
            )

        def view(i: int) -> PoolView:
            runtime = runtimes[i]
            queued_work = 0.0
            for request in runtime.arbiter.queued_requests:
                estimate = decisions[request.query_index][3]
                if estimate is None:
                    estimate = DEFAULT_RUNTIME_ESTIMATE_S
                queued_work += request.executors * estimate
            return PoolView(
                index=i,
                capacity=runtime.capacity,
                max_capacity=runtime.max_capacity,
                free=runtime.free,
                in_use=runtime.in_use,
                queue_length=runtime.queue_length,
                queued_executors=runtime.arbiter.queued_executors,
                queued_work_seconds=queued_work,
                active_queries=runtime.active_queries,
                oldest_submit_time=runtime.arbiter.oldest_submit_time,
            )

        # A state-blind router (uses_pool_state = False) never reads the
        # dynamic fields, so building live snapshots per submit is pure
        # overhead — measured at >60 % of round-robin serve time.  Hand
        # it one frozen set of idle-valued views instead.  Routers that
        # omit the attribute are conservatively assumed stateful.
        live_views = getattr(self.router, "uses_pool_state", True)
        static_views = (
            None
            if live_views
            else [
                PoolView(
                    index=i,
                    capacity=runtime.capacity,
                    max_capacity=runtime.max_capacity,
                    free=runtime.capacity,
                    in_use=0,
                    queue_length=0,
                    queued_executors=0,
                    queued_work_seconds=0.0,
                    active_queries=0,
                )
                for i, runtime in enumerate(runtimes)
            ]
        )

        def scalers_can_act() -> bool:
            """Whether any autoscaler can still unblock queued work —
            distinguishes "waiting for a queue-delay-triggered scale-up"
            from a genuine stall."""
            for i, scaler in scalers.items():
                runtime = runtimes[i]
                provisioned = runtime.capacity + scaler.pending
                demand = runtime.in_use + runtime.arbiter.queued_executors
                if demand > provisioned and provisioned < scaler.config.max_capacity:
                    return True
            return False

        # --- bootstrap ---------------------------------------------------
        if streaming is None:
            for pos, arrival in enumerate(stream):
                heapq.heappush(
                    events, (arrival.arrival_time, 0, pos, "arrive", -1, pos, arrival)
                )
        else:
            exhausted = False
            pull_arrival()
            if total == 0:
                raise ValueError("cannot serve an empty arrival stream")

        # --- main loop ---------------------------------------------------
        while events:
            now, _, _, kind, pool, q, payload = heapq.heappop(events)
            if kind == "arrive":
                arrival = payload
                plan = self.workload.optimized_plan(arrival.query_id)
                decision = self.allocator(arrival.query_id, plan)
                decisions[q] = decision_fields(decision, self.max_budget)
                notes[q] = allocator_annotations(self.allocator, decision)
                seconds = decisions[q][2]
                if tracer is not None:
                    tracer.emit(
                        TraceEvent(now, "query_arrive", -1, q, arrival.query_id)
                    )
                    tracer.emit(
                        TraceEvent(
                            now,
                            "query_predict",
                            -1,
                            q,
                            arrival.query_id,
                            {
                                "executors": notes[q]["predicted_executors"],
                                "cached": decisions[q][1],
                                "seconds": seconds,
                                "estimated_runtime_s": decisions[q][3],
                                "policy": notes[q]["policy"],
                            },
                        )
                    )
                delay = seconds if config.charge_prediction_overhead else 0.0
                push(now + delay, "submit", -1, q, arrival)
                if not exhausted:
                    pull_arrival()
            elif kind == "submit":
                arrival = payload
                budget, cached, seconds, estimate = decisions[q]
                chosen = self.router.pick(
                    RoutingRequest(
                        query_id=arrival.query_id,
                        app_id=arrival.app_id,
                        budget=budget,
                        estimated_runtime_seconds=estimate,
                        submit_time=now,
                    ),
                    (
                        [view(i) for i in range(self.n_pools)]
                        if live_views
                        else static_views
                    ),
                )
                if not 0 <= chosen < self.n_pools:
                    raise ValueError(
                        f"router {self.router.name!r} picked pool {chosen} "
                        f"out of {self.n_pools}"
                    )
                if streaming is None:
                    pool_of[q] = chosen
                if tracer is not None:
                    tracer.emit(
                        TraceEvent(
                            now,
                            "query_route",
                            chosen,
                            q,
                            arrival.query_id,
                            {"router": self.router.name},
                        )
                    )
                runtimes[chosen].submit(
                    now, q, arrival, budget, cached, seconds, notes.pop(q), estimate
                )
            elif kind == "driver_done":
                runtimes[pool].handle_driver_done(now, q)
            elif kind == "exec_arrive":
                runtimes[pool].handle_exec_arrive(now, q)
            elif kind == "task_done":
                if runtimes[pool].handle_task_done(now, q, payload):
                    finished += 1
                    # The routing view only inspects still-queued
                    # requests, so a finished query's decision tuple can
                    # go; in streaming mode this is what keeps the
                    # decision memo O(in-flight) instead of O(stream).
                    decisions.pop(q, None)
            elif kind == "exec_fail":
                runtimes[pool].handle_exec_fail(now, q, payload)
            elif kind == "scale_online":
                scalers[pool].capacity_online(now, payload)
                runtimes[pool].resize(now, runtimes[pool].capacity + payload)
            elif kind == "tick":
                for runtime in runtimes:
                    runtime.on_tick(now)
                for i, scaler in scalers.items():
                    delta = scaler.evaluate(now, view(i))
                    if delta > 0:
                        push(
                            now + scaler.config.scale_up_lag_s,
                            "scale_online",
                            i,
                            payload=delta,
                        )
                    elif delta < 0:
                        runtimes[i].resize(now, runtimes[i].capacity + delta)
                if finished < total or not exhausted:
                    if not events and not scalers_can_act():
                        _raise_cluster_stalled(runtimes, total - finished)
                    push(now + config.tick_interval, "tick", -1)

        if finished < total:
            _raise_cluster_stalled(runtimes, total - finished)

        if streaming is None:
            records = []
            placed = []
            for q in range(total):
                chosen = pool_of[q]
                records.append(runtimes[chosen].records[q])
                placed.append(chosen)
            # Every pool bills the cluster-wide serving window: a pool the
            # router never picked still pays for its provisioned floor.
            window = (
                min(r.arrival_time for r in records),
                max(r.finish_time for r in records),
            )
        else:
            records = []
            placed = []
            # The same cluster-wide window, recovered from the per-pool
            # streaming accumulators (pools the router never picked have
            # no observations and contribute nothing).
            starts = [
                r.stats.first_arrival
                for r in runtimes
                if r.stats is not None and r.stats.first_arrival is not None
            ]
            ends = [
                r.stats.last_finish
                for r in runtimes
                if r.stats is not None and r.stats.last_finish is not None
            ]
            window = (min(starts), max(ends))
        if tracer is not None:
            tracer.emit(
                TraceEvent(window[1], "serve_end", -1, -1, None, {"queries": total})
            )
        pool_metrics = [runtime.finalize(serving_window=window) for runtime in runtimes]
        metrics = ClusterMetrics(
            pools=pool_metrics, records=records, pool_of=placed
        )
        feedback = config.feedback
        if feedback is not None:
            # One cluster-wide sink, so its ledger attaches once at the
            # cluster level (never per pool — the roll-up would double
            # count the retraining bill).
            snapshot = getattr(feedback, "stats_snapshot", None)
            if callable(snapshot):
                metrics.adaptive = snapshot()
        return metrics


def _raise_cluster_stalled(runtimes: Sequence[PoolRuntime], unfinished: int) -> None:
    queued = sum(runtime.arbiter.queue_length for runtime in runtimes)
    if queued > 0:
        # Per-pool detail via the single-pool error on the worst offender.
        worst = max(runtimes, key=lambda r: r.arbiter.queue_length)
        _raise_stalled(worst.arbiter, unfinished)
    running = {
        i: runtime.unfinished_queries()
        for i, runtime in enumerate(runtimes)
        if runtime.unfinished_queries()
    }
    raise RuntimeError(
        f"sharded fleet stalled with {unfinished} unfinished queries "
        f"(running per pool: {running}, queued: {queued})"
    )

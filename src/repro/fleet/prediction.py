"""The online prediction service in front of the fleet.

In production, executor-count selection sits on every query's critical
path (Section 5.6 measures the overheads).  The fleet therefore serves
predictions through a service that behaves like the deployed one:

- a **plan-signature memo cache**: recurring queries — the common case in
  the paper's telemetry, where most applications resubmit near-identical
  queries (Figure 2b's low plan variability) — hit the cache and skip
  model inference entirely;
- **measured overhead**: every prediction reports the wall-clock seconds
  it cost, and the fleet engine charges that latency to the query instead
  of assuming selection is free;
- **batched inference** for cache warm-up: scoring many plans through one
  :class:`repro.export.runtime.PortablePPMScorer` call amortizes the
  runtime dispatch the way the paper's ONNX runtime batches do.

Any object with ``predict_ppm(features)`` works as the scorer: a trained
:class:`repro.core.parameter_model.ParameterModel`, an
:class:`repro.core.autoexecutor.AutoExecutor`, or a portable-model scorer
from :mod:`repro.export`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence

import numpy as np

from repro.core.features import QueryFeatures
from repro.core.ppm import PricePerfModel
from repro.core.selection import elbow_point
from repro.core.training import DEFAULT_N_GRID
from repro.engine.plan import LogicalPlan
from repro.obs.trace import TraceEvent, Tracer

if TYPE_CHECKING:
    from repro.core.autoexecutor import AutoExecutor

__all__ = ["PPMScorer", "Prediction", "PredictionService"]

#: Selection objective signature (same as AutoExecutor's).
_Objective = Callable[[np.ndarray, np.ndarray], int]


class PPMScorer(Protocol):
    """Structural type for scorers: features in, fitted PPM out.

    Satisfied by a trained :class:`~repro.core.parameter_model
    .ParameterModel`, an :class:`~repro.core.autoexecutor.AutoExecutor`'s
    model, or a portable-model scorer from :mod:`repro.export`.
    """

    def predict_ppm(self, features: QueryFeatures) -> PricePerfModel: ...


@dataclass(frozen=True)
class Prediction:
    """One served executor-count decision.

    Attributes:
        executors: the selected executor budget.
        cached: whether the plan signature hit the memo cache.
        seconds: wall-clock selection overhead of this call (featurize +
            lookup, plus model inference and selection on a miss).
        estimated_runtime_seconds: the PPM's predicted run time at the
            selected count — the cost signal sharded-fleet routing
            (:class:`repro.fleet.routing.CostAwareRouter`) weighs queued
            work by.  ``None`` when the scorer predicts no curve.
    """

    executors: int
    cached: bool
    seconds: float
    estimated_runtime_seconds: float | None = None


class PredictionService:
    """Cached, measured executor-count selection for the live query path.

    Args:
        scorer: an object with ``predict_ppm(features) -> PricePerfModel``.
        n_grid: candidate executor counts.
        objective: selection strategy over predicted curves (paper
            default: elbow).
        min_executors / max_executors: clamp on the selected count.
        tracer: optional :class:`~repro.obs.trace.Tracer` receiving one
            ``prediction`` event per served decision (count, cache hit,
            measured seconds).  The service has no simulation clock, so
            events are stamped at time ``0.0`` — they account for the
            service, not the fleet timeline (the engines emit the
            on-clock ``query_predict`` events).
        features_memo_size: bound on the per-query featurization memo.
            The memo is an LRU: the streaming-mode O(1)-memory contract
            forbids any per-query state that outlives the bound, and an
            evicted entry only costs a re-featurization on its next
            arrival — never a wrong answer.
    """

    def __init__(
        self,
        scorer: PPMScorer,
        n_grid: np.ndarray = DEFAULT_N_GRID,
        objective: _Objective = elbow_point,
        min_executors: int = 1,
        max_executors: int = 48,
        tracer: Tracer | None = None,
        features_memo_size: int = 4096,
    ) -> None:
        if min_executors < 1 or max_executors < min_executors:
            raise ValueError("invalid executor clamp range")
        if features_memo_size < 1:
            raise ValueError("features_memo_size must be positive")
        self.scorer = scorer
        self.n_grid = np.asarray(n_grid)
        self.objective = objective
        self.min_executors = int(min_executors)
        self.max_executors = int(max_executors)
        self.tracer = tracer
        self.features_memo_size = int(features_memo_size)
        #: Model generation: bumped by :meth:`invalidate` (and so by
        #: :meth:`swap_scorer`).  Every memo-cache entry is tagged with
        #: the generation that produced it, so a decision can never be
        #: served from a model that is no longer behind the service.
        self.generation = 0
        # signature -> (generation, chosen count, predicted runtime)
        self._cache: dict[tuple[float, ...], tuple[int, int, float]] = {}
        # Featurization memo for the fleet path, keyed like the engine's
        # compiled-plan memo: one optimized plan per query id, so the id
        # keys its feature vector and recurring arrivals skip the plan
        # walk.  The plan object rides along as an identity guard — if a
        # query id ever maps to a new plan, it is re-featurized.  The
        # dict is used as an LRU (insertion order = recency; hits
        # reinsert) and bounded by ``features_memo_size``; it survives
        # :meth:`invalidate` because features are model-independent.
        self._features_by_query: dict[str, tuple[object, QueryFeatures]] = {}
        self.hits = 0
        self.misses = 0
        self.total_seconds = 0.0
        #: Whether the scorer supports single-dispatch batch inference
        #: (``predict_ppm_batch``).  Probed once here instead of silently
        #: per call, so callers (the serving layer's ``/metrics``, the
        #: fleet drivers) can see when batching is actually in effect.
        self.batched = callable(getattr(scorer, "predict_ppm_batch", None))
        self._fallback_traced = False

    @classmethod
    def from_autoexecutor(
        cls, system: AutoExecutor, **kwargs: Any
    ) -> "PredictionService":
        """Wrap a trained :class:`repro.core.autoexecutor.AutoExecutor`."""
        if system.model is None:
            raise RuntimeError("AutoExecutor is not trained yet")
        return cls(scorer=system.model, n_grid=system.n_grid, **kwargs)

    @staticmethod
    def signature(features: QueryFeatures) -> tuple[float, ...]:
        """The memo-cache key: the full compile-time feature vector.

        Two plans with identical Table-2 features get — by construction —
        identical predictions, so they are the same cache entry.
        """
        return tuple(float(v) for v in features.values)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def features_memo_len(self) -> int:
        """Current size of the bounded per-query featurization memo."""
        return len(self._features_by_query)

    def invalidate(self) -> None:
        """Drop every memoized decision and bump the model generation.

        Call this whenever the scorer's answers may have changed (a
        scorer swap does it for you).  The featurization memo survives:
        features are compile-time properties of the plan, independent of
        the model behind the service.
        """
        self.generation += 1
        self._cache.clear()

    def swap_scorer(self, scorer: PPMScorer) -> int:
        """Hot-swap the model behind the service.

        Atomic from a caller's view: the scorer is replaced, the batch
        capability re-probed, the fallback announcement re-armed for the
        new scorer, and every cached decision invalidated, so the next
        decision — cached or not — comes from the new model.

        Returns:
            The new model generation.
        """
        self.scorer = scorer
        self.batched = callable(getattr(scorer, "predict_ppm_batch", None))
        self._fallback_traced = False
        self.invalidate()
        return self.generation

    def mean_overhead_seconds(self) -> float:
        served = self.hits + self.misses
        return self.total_seconds / served if served else 0.0

    def _note_fallback(self, n_misses: int) -> None:
        """Trace the first per-miss inference loop taken in a batch call.

        One event per service lifetime: the condition is structural (the
        scorer lacks ``predict_ppm_batch``), so repeating it per call
        would only pad the log.
        """
        if self._fallback_traced or self.tracer is None:
            return
        self._fallback_traced = True
        self.tracer.emit(
            TraceEvent(
                0.0,
                "prediction_fallback",
                data={
                    "scorer": type(self.scorer).__name__,
                    "misses": n_misses,
                },
            )
        )

    def _featurize(
        self, plan_or_features: LogicalPlan | QueryFeatures
    ) -> QueryFeatures:
        if isinstance(plan_or_features, QueryFeatures):
            return plan_or_features
        return QueryFeatures.from_plan(plan_or_features)

    def _select(self, ppm: PricePerfModel) -> tuple[int, float]:
        """The chosen count and the predicted run time at that count."""
        curve = ppm.predict_curve(self.n_grid)
        chosen = self.objective(self.n_grid, curve)
        chosen = int(np.clip(chosen, self.min_executors, self.max_executors))
        # The objective picks off the grid we already scored; only a
        # clamp that moved the count off-grid costs a second inference.
        on_grid = np.nonzero(self.n_grid == chosen)[0]
        if on_grid.size:
            runtime = float(curve[on_grid[0]])
        else:
            runtime = float(np.asarray(ppm.predict_curve([chosen]))[0])
        return chosen, runtime

    def predict(self, plan_or_features: LogicalPlan | QueryFeatures) -> Prediction:
        """Serve one decision, measuring its wall-clock overhead."""
        start = time.perf_counter()
        features = self._featurize(plan_or_features)
        return self._serve(features, start)

    def _serve(self, features: QueryFeatures, start: float) -> Prediction:
        """Cache lookup + (on miss) inference, timed from ``start``."""
        key = self.signature(features)
        entry = self._cache.get(key)
        cached = entry is not None and entry[0] == self.generation
        if cached and entry is not None:
            self.hits += 1
            _, chosen, runtime = entry
        else:
            self.misses += 1
            chosen, runtime = self._select(self.scorer.predict_ppm(features))
            self._cache[key] = (self.generation, chosen, runtime)
        elapsed = time.perf_counter() - start
        self.total_seconds += elapsed
        if self.tracer is not None:
            self.tracer.emit(
                TraceEvent(
                    0.0,
                    "prediction",
                    data={
                        "executors": chosen,
                        "cached": cached,
                        "seconds": elapsed,
                        "estimated_runtime_s": runtime,
                    },
                )
            )
        return Prediction(
            executors=chosen,
            cached=cached,
            seconds=elapsed,
            estimated_runtime_seconds=runtime,
        )

    def predict_batch(self, plans: Sequence) -> list[Prediction]:
        """Serve many decisions at once, batching uncached inference.

        When the scorer supports batch scoring (``predict_ppm_batch``,
        provided by the portable-model runtime), all cache misses go
        through a single inference call; the batch's wall-clock cost is
        split evenly across the misses.  Whether that path is live is
        exposed as :attr:`batched`; a scorer without it silently costs a
        per-miss inference loop, so the first time the fallback actually
        runs the service emits one ``prediction_fallback`` trace event
        rather than degrading invisibly.
        """
        start = time.perf_counter()
        featurized = [self._featurize(p) for p in plans]
        keys = [self.signature(f) for f in featurized]

        miss_order: list[int] = []
        seen: set[tuple[float, ...]] = set()
        for i, key in enumerate(keys):
            entry = self._cache.get(key)
            live = entry is not None and entry[0] == self.generation
            if not live and key not in seen:
                miss_order.append(i)
                seen.add(key)

        if miss_order:
            batch_scorer = getattr(self.scorer, "predict_ppm_batch", None)
            if self.batched and batch_scorer is not None:
                matrix = np.stack(
                    [featurized[i].values for i in miss_order]
                )
                ppms = batch_scorer(matrix)
            else:
                self._note_fallback(len(miss_order))
                ppms = [
                    self.scorer.predict_ppm(featurized[i])
                    for i in miss_order
                ]
            for i, ppm in zip(miss_order, ppms):
                self._cache[keys[i]] = (self.generation, *self._select(ppm))

        elapsed = time.perf_counter() - start
        per_miss = elapsed / len(miss_order) if miss_order else 0.0
        missed = {keys[i] for i in miss_order}
        out: list[Prediction] = []
        for key in keys:
            cached = key not in missed
            if cached:
                self.hits += 1
            else:
                self.misses += 1
                missed.discard(key)  # later repeats in the batch are hits
            _, chosen, runtime = self._cache[key]
            out.append(
                Prediction(
                    executors=chosen,
                    cached=cached,
                    seconds=0.0 if cached else per_miss,
                    estimated_runtime_seconds=runtime,
                )
            )
        self.total_seconds += elapsed
        return out

    def allocate(self, query_id: str, plan: LogicalPlan) -> Prediction:
        """The fleet engine's allocator interface.

        The decision depends only on the optimized plan; the query id
        memoizes featurization so a recurring query pays the plan walk
        once and every later arrival is a pure signature lookup.  The
        memo lookup and any featurization stay inside the measured
        window, so ``Prediction.seconds`` keeps its "featurize + lookup"
        contract.

        The memo is a bounded LRU (``features_memo_size``): a hit
        refreshes the entry's recency, an insert past the bound evicts
        the least-recently-used query id.  Eviction is invisible except
        in cost — the evicted query re-featurizes on its next arrival.
        """
        start = time.perf_counter()
        memo = self._features_by_query
        entry = memo.pop(query_id, None)
        if entry is None or entry[0] is not plan:
            entry = (plan, self._featurize(plan))
        memo[query_id] = entry  # reinsert = most recently used
        while len(memo) > self.features_memo_size:
            memo.pop(next(iter(memo)))
        return self._serve(entry[1], start)

    # Bound methods proxy attribute reads to the function, so the fleet
    # drivers' ``allocator_annotations`` sees this on ``service.allocate``.
    allocate.policy_name = "prediction"

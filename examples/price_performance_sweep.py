#!/usr/bin/env python3
"""Price-performance frontier: sweeping the slowdown budget H.

The same predicted PPM serves every objective (Section 3.1): this example
trains once, then sweeps the limited-slowdown threshold
H ∈ {1.0, 1.05, 1.1, 1.2, 1.5, 2.0} and reports, per H, the average
selected executor count, the realized slowdown against the true optimum,
and the executor occupancy — the knobs a platform operator would trade
off (Figure 10's experiment as a user-facing tool).

Run:  python examples/price_performance_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoExecutor, Workload
from repro.core.selection import limited_slowdown
from repro.engine.cluster import Cluster
from repro.engine.sweep import compile_plan
from repro.experiments.runtime_data import collect_actual_runtimes
from repro.workloads.tpcds import QUERY_IDS

H_VALUES = (1.0, 1.05, 1.1, 1.2, 1.5, 2.0)


def main() -> None:
    # hold out every 4th query for evaluation
    eval_ids = QUERY_IDS[::4]
    train_ids = tuple(q for q in QUERY_IDS if q not in set(eval_ids))
    cluster = Cluster()

    print(f"training on {len(train_ids)} queries, "
          f"evaluating on {len(eval_ids)} held-out queries ...")
    system = AutoExecutor(family="power_law").train(
        Workload(scale_factor=100, query_ids=train_ids), cluster
    )

    eval_workload = Workload(scale_factor=100, query_ids=eval_ids)
    actuals = collect_actual_runtimes(eval_workload, cluster, repeats=3)
    grid = np.arange(1, 49)

    print(f"\n{'H':>6} {'avg n':>7} {'avg slowdown':>13} "
          f"{'avg occupancy':>14} {'vs H=1 occ.':>12}")
    # Every H re-simulates each held-out query, so compile the plans once
    # and let the batched backend answer each (query, n) from there.
    compiled = {
        qid: compile_plan(eval_workload.stage_graph(qid)) for qid in eval_ids
    }
    base_occupancy = None
    for h in H_VALUES:
        chosen_n, slowdowns, occupancy = [], [], []
        for qid in eval_ids:
            curve = system.predict_curve(eval_workload.optimized_plan(qid))
            n = limited_slowdown(grid, curve, h)
            chosen_n.append(n)
            actual_curve = actuals.curve(qid, grid)
            slowdowns.append(actual_curve[n - 1] / actual_curve.min())
            occupancy.append(compiled[qid].simulate(n, cluster).auc)
        occ = float(np.mean(occupancy))
        if base_occupancy is None:
            base_occupancy = occ
        print(
            f"{h:6.2f} {np.mean(chosen_n):7.1f} "
            f"{np.mean(slowdowns):12.2f}x {occ:13.0f}es "
            f"{100 * (occ / base_occupancy - 1):+11.0f}%"
        )

    print(
        "\nreading: larger slowdown budgets trade a little latency for "
        "substantially fewer executors and lower occupancy."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: train AutoExecutor and pick executor counts per query.

This walks the paper's core loop end to end on a small TPC-DS-like
workload:

1. build the workload (plans + simulated cluster);
2. train the price-performance parameter model — each training query runs
   *once* at n=16, Sparklens extrapolates its full t(n) curve, and the
   fitted PPM parameters become the training targets;
3. predict the run-time curve for a query the model never saw;
4. select the executor count for two objectives: "fastest with fewest
   executors" (H=1) and the elbow point.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoExecutor, Workload
from repro.core.selection import elbow_point, limited_slowdown
from repro.engine.allocation import StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.scheduler import simulate_query
from repro.experiments.figures import sparkline
from repro.workloads.tpcds import QUERY_IDS


def main() -> None:
    # --- 1. the workload and the cluster --------------------------------
    train_ids = tuple(q for q in QUERY_IDS if q != "q94")
    workload = Workload(scale_factor=100, query_ids=train_ids)
    cluster = Cluster()  # 8-core/64 GB nodes, 4-core/28 GB executors

    # --- 2. train (one run per query at n=16 + Sparklens augmentation) --
    print("training AutoExecutor (power-law PPM) on 102 queries ...")
    system = AutoExecutor(family="power_law").train(workload, cluster)

    # --- 3. predict the curve for an unseen query -----------------------
    target = Workload(scale_factor=100, query_ids=("q94",))
    plan = target.optimized_plan("q94")
    grid = np.arange(1, 49)
    curve = system.predict_curve(plan)
    print("\npredicted t(n) for held-out q94 (n = 1..48):")
    print("  ", sparkline(curve))
    for n in (1, 3, 8, 16, 32, 48):
        print(f"   n={n:2d}  predicted {curve[n - 1]:7.1f} s")

    # --- 4. pick the operating point -------------------------------------
    n_fast = limited_slowdown(grid, curve, target_slowdown=1.0)
    n_balanced = limited_slowdown(grid, curve, target_slowdown=1.2)
    n_elbow = elbow_point(grid, curve)
    print(f"\nselected executor counts for q94:")
    print(f"   fastest w/ fewest executors (H=1.0): n={n_fast}")
    print(f"   balanced (H=1.2):                    n={n_balanced}")
    print(f"   elbow point (paper default):         n={n_elbow}")

    # --- validate against the simulator ----------------------------------
    graph = target.stage_graph("q94")
    print("\nactual simulated run times:")
    for label, n in (("chosen", n_elbow), ("default-2", 2), ("max-48", 48)):
        result = simulate_query(graph, StaticAllocation(n), cluster)
        print(
            f"   {label:>10s} n={n:2d}: {result.runtime:7.1f} s, "
            f"occupancy {result.auc:8.0f} executor-seconds"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fleet serving: a 200-query concurrent trace on a shared executor pool.

The paper's AutoExecutor picks an executor count per query; production
runs *many* queries at once against one serverless pool.  This example
wires the whole fleet path together:

1. train AutoExecutor on a TPC-DS-like workload;
2. stand up the online :class:`repro.fleet.PredictionService` (memo
   cache + measured selection overhead);
3. replay a production-shaped trace of 200 queries — bursty multi-query
   applications, as in the paper's Figure 2a telemetry — through a
   192-executor pool with fair-share admission;
4. compare against a one-size-fits-all static default on the same trace;
5. turn on mid-query dynamic scaling: tiny admission budgets that grow
   under backlog pressure from whatever the pool can spare.

Run:  python examples/fleet_serving.py
"""

from __future__ import annotations

from repro import AutoExecutor, Workload
from repro.engine.allocation import DynamicAllocation
from repro.engine.cluster import Cluster
from repro.fleet import (
    FairShareAdmission,
    FleetConfig,
    FleetEngine,
    PredictionService,
    static_allocator,
    trace_arrivals,
)
from repro.workloads.production import generate_production_trace


def main() -> None:
    # --- 1. train on a workload sample -----------------------------------
    query_ids = tuple(
        f"q{i}"
        for i in (1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 19, 21,
                  25, 27, 40, 46, 52, 64, 72, 82, 94)
    )
    workload = Workload(scale_factor=50, query_ids=query_ids)
    print(f"training AutoExecutor on {len(workload)} queries ...")
    system = AutoExecutor(family="power_law").train(workload, Cluster())

    # --- 2. the online prediction service --------------------------------
    service = PredictionService.from_autoexecutor(system)

    # --- 3. a production-shaped arrival stream ----------------------------
    trace = generate_production_trace(n_applications=1_000, seed=42)
    arrivals = trace_arrivals(
        trace, query_ids, n_queries=200, horizon_seconds=400.0, seed=42
    )
    apps = len({a.app_id for a in arrivals})
    print(
        f"replaying {len(arrivals)} queries from {apps} applications "
        f"over ~{arrivals[-1].arrival_time:.0f} s ..."
    )

    pool = 192
    engine = FleetEngine(
        workload,
        capacity=pool,
        allocator=service.allocate,
        admission=FairShareAdmission(),
    )
    metrics = engine.serve(arrivals)

    print(f"\n=== AutoExecutor on a {pool}-executor shared pool ===")
    print(metrics.describe())
    print(
        f"prediction cache      {service.cache_size} entries, "
        f"{100 * metrics.prediction_cache_hit_rate():.0f}% hit rate, "
        f"{1e3 * service.mean_overhead_seconds():.2f} ms mean selection"
    )

    # --- 4. the static-default baseline, same trace -----------------------
    baseline = FleetEngine(
        workload,
        capacity=pool,
        allocator=static_allocator(32),
        admission=FairShareAdmission(),
    ).serve(arrivals)

    print("\n=== static default SA(32), same trace ===")
    print(baseline.describe())

    saved = 1 - metrics.total_dollar_cost / baseline.total_dollar_cost
    print(
        f"\nAutoExecutor serves the trace at {saved:.0%} lower cost "
        f"(p95 latency {metrics.p95_latency:.0f} s vs "
        f"{baseline.p95_latency:.0f} s)."
    )

    # --- 5. mid-query dynamic scaling on tight budgets --------------------
    # Admit every query with a 4-executor budget, then let Spark-style
    # reactive scaling grow it against pending-task pressure out of the
    # pool's spare capacity (and shed idle executors back for others).
    scaled = FleetEngine(
        workload,
        capacity=pool,
        allocator=static_allocator(4),
        admission=FairShareAdmission(),
        config=FleetConfig(
            scaling=lambda budget: DynamicAllocation(
                1, 8 * budget, idle_timeout=15.0
            )
        ),
    ).serve(arrivals)

    print("\n=== DA(1, 32) scaling from 4-executor admissions ===")
    print(scaled.describe())
    grew = sum(
        r.skyline.max_executors > r.executors_granted
        for r in scaled.records
        if r.skyline is not None
    )
    print(
        f"\n{grew}/{len(scaled.records)} queries scaled past their "
        f"admission budget mid-run; the pool never exceeded "
        f"{scaled.peak_pool_usage}/{pool} executors."
    )


if __name__ == "__main__":
    main()

"""Sharded serving: N autoscaled pools behind a cost-aware router.

The single-pool fleet (``examples/fleet_serving.py``) already shows
predictive per-query allocation beating a static default.  This example
climbs one level: the *cluster* layer, where capacity itself is a
decision.  The same Poisson stream is served two ways —

1. a **statically provisioned single pool**, sized up front and billed
   for every provisioned executor-second of the run;
2. a **sharded fleet**: four pools that start at the autoscaler's floor,
   grow under queue-delay/utilization pressure (paying a provisioning
   lag on the way up, holding a cooldown before shrinking), with a
   cost-aware router placing each query where the least predicted work
   is queued ahead of it.

Both use the same online prediction service for per-query budgets, so
the delta is pure routing + elasticity: better tail latency at high
arrival rates *and* a smaller provisioned bill — the fleet-scale claim
the CI benchmark (``benchmarks/perf/run_fleet_bench.py``) gates.

Run from the repository root:

    PYTHONPATH=src python examples/sharded_cluster.py

Pass ``--trace-out sharded.jsonl`` to record the sharded serve as a
structured JSONL trace (see :mod:`repro.obs`); the example then replays
the log through :class:`~repro.obs.TraceAnalyzer` and prints the
per-pool utilization it rebuilt from events alone.
"""

import argparse

from repro.core.autoexecutor import AutoExecutor
from repro.fleet import (
    AutoscalerConfig,
    CostAwareRouter,
    FleetEngine,
    PoolSpec,
    PredictionService,
    ShardedFleet,
    poisson_arrivals,
)
from repro.obs import JsonlTracer, TraceAnalyzer, read_jsonl
from repro.workloads.generator import Workload

QUERY_IDS = tuple(
    "q1 q2 q3 q5 q9 q14 q17 q21 q25 q46 q64 q72 q82 q88 q94 q99".split()
)
ARRIVALS = 96
# Just past the static pool's saturation point: it queues, while the
# autoscaled pools absorb the pressure and shed capacity in the lulls.
RATE_QPS = 0.5
STATIC_CAPACITY = 96


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the sharded serve's structured trace as JSONL",
    )
    args = parser.parse_args()

    workload = Workload(scale_factor=100, query_ids=QUERY_IDS)
    print(f"training AutoExecutor on {len(QUERY_IDS)} TPC-DS templates ...")
    system = AutoExecutor(family="power_law").train(workload)
    arrivals = poisson_arrivals(QUERY_IDS, ARRIVALS, RATE_QPS, seed=11)

    print(f"\n=== static single pool ({STATIC_CAPACITY} executors) ===")
    static = FleetEngine(
        workload,
        capacity=STATIC_CAPACITY,
        allocator=PredictionService.from_autoexecutor(system).allocate,
    ).serve(arrivals)
    print(static.describe())

    autoscaler = AutoscalerConfig(
        min_capacity=8,
        max_capacity=48,
        scale_up_step=8,
        scale_down_step=8,
        scale_up_lag_s=15.0,
        scale_down_cooldown_s=30.0,
        queue_delay_threshold_s=3.0,
        low_utilization=0.5,
    )
    print("\n=== sharded fleet: 4 autoscaled pools, cost-aware routing ===")
    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    sharded = ShardedFleet(
        workload,
        [PoolSpec(capacity=8, autoscaler=autoscaler) for _ in range(4)],
        PredictionService.from_autoexecutor(system).allocate,
        router=CostAwareRouter(),
        tracer=tracer,
    ).serve(arrivals)
    print(sharded.describe())
    if tracer is not None:
        tracer.close()
        print(f"\nwrote {tracer.events_written} events to {args.trace_out}")
        analyzer = TraceAnalyzer(read_jsonl(args.trace_out))
        for pool in analyzer.pools():
            util = analyzer.utilization(pool)
            print(f"  pool {pool}: utilization {util:.1%} (rebuilt from trace)")

    print("\n=== static vs sharded ===")
    rows = [
        (
            "p95 latency",
            f"{static.p95_latency:9.1f} s",
            f"{sharded.p95_latency:9.1f} s",
        ),
        (
            "provisioned cost",
            f"${static.provisioned_dollar_cost:8.2f}",
            f"${sharded.provisioned_dollar_cost:8.2f}",
        ),
        (
            "total cost (occupancy + idle)",
            f"${static.total_dollar_cost:8.2f}",
            f"${sharded.total_dollar_cost:8.2f}",
        ),
        (
            "utilization",
            f"{static.utilization():9.1%}",
            f"{sharded.utilization():9.1%}",
        ),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'':{width}}  {'static':>12}  {'sharded':>12}")
    for label, a, b in rows:
        print(f"{label:{width}}  {a:>12}  {b:>12}")


if __name__ == "__main__":
    main()

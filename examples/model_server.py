#!/usr/bin/env python3
"""Serving path: train, export, and answer HTTP recommendation traffic.

:mod:`repro.serve` is the last hop of the deployment lifecycle that
``examples/portable_model_deployment.py`` walks in-process: the exported
model behind a real (loopback) HTTP server, with micro-batching and the
prediction memo cache doing the work the paper's optimizer integration
does inside the query engine.  This example:

1. trains a power-law AutoExecutor and exports it to a model registry;
2. boots :class:`~repro.serve.RecommendationServer` on an ephemeral port;
3. fires one concurrent burst per round of real TPC-DS plan features at
   ``POST /v1/recommend`` and shows the coalesced batch sizes;
4. repeats the round to show the plan-signature cache taking over;
5. prints the ``/metrics`` self-measurement and drains cleanly.

Run:  python examples/model_server.py

For a standalone server over an existing registry, use the CLI instead:

    python -m repro.serve --registry MODELS_DIR --model ae_pl --port 8080

(docs/serving.md documents the endpoints, error codes, and knobs.)
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import Workload
from repro.core.autoexecutor import AutoExecutor
from repro.core.features import QueryFeatures
from repro.export.format import save_parameter_model
from repro.serve import (
    RecommendApp,
    RecommendationServer,
    ServeClient,
    ServerConfig,
)

QUERY_IDS = ("q1", "q2", "q3", "q5", "q6", "q7", "q8", "q94")


def train_and_export(registry: Path) -> Workload:
    """Train the power-law family and export it as ``ae_pl``."""
    print("training the AE_PL parameter model ...")
    workload = Workload(scale_factor=50, query_ids=QUERY_IDS)
    system = AutoExecutor(family="power_law").train(workload)
    size = save_parameter_model(system.model, registry / "ae_pl.json")
    print(f"exported ae_pl.json ({size / 1024**2:.2f} MB)\n")
    return workload


async def one_round(
    host: str, port: int, payloads: list[dict], label: str
) -> None:
    """Fire every payload concurrently on its own keep-alive client."""

    async def ask(payload: dict) -> dict:
        async with ServeClient(host, port) as client:
            reply = await client.post_json("/v1/recommend", payload)
            assert reply.status == 200, reply.body
            return dict(reply.json())

    answers = await asyncio.gather(*(ask(p) for p in payloads))
    print(f"{label}:")
    for answer in answers:
        print(
            f"   {answer['query_id']:>4s}: {answer['executors']:2d} "
            f"executors, est {answer['estimated_runtime_s']:7.1f} s  "
            f"(batch of {answer['batch_size']}, "
            f"{'cache hit' if answer['cached'] else 'model inference'})"
        )


async def serve_and_query(registry: Path, workload: Workload) -> None:
    app = RecommendApp.from_registry(
        registry, "ae_pl", max_batch_size=16, max_wait_s=0.005
    )
    server = RecommendationServer(app, ServerConfig(port=0))
    await server.start()
    host, port = server.address
    print(f"serving on http://{host}:{port}\n")

    payloads = [
        {
            "query_id": qid,
            "features": QueryFeatures.from_plan(
                workload.optimized_plan(qid)
            ).values.tolist(),
        }
        for qid in QUERY_IDS
    ]
    # Burst one: every plan is new, so the burst coalesces into one
    # model inference.  Burst two: identical plans, so every answer is
    # a plan-signature cache hit (still batched through the same path).
    await one_round(host, port, payloads, "first burst (cold cache)")
    print()
    await one_round(host, port, payloads, "second burst (warm cache)")

    async with ServeClient(host, port) as client:
        metrics = dict((await client.get("/metrics")).json())
    cache = metrics["prediction"]
    batch = metrics["batch"]
    print("\n/metrics after both bursts:")
    print(f"   requests answered   {metrics['requests']}")
    print(f"   mean batch size     {batch['mean_size']:.1f}")
    print(
        f"   cache hit rate      {cache['hit_rate']:.2f} "
        f"({cache['hits']} hits / {cache['misses']} misses)"
    )
    print(f"   batched scorer      {cache['batched']}")

    await server.shutdown()
    print("\nserver drained and shut down cleanly")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        registry = Path(tmp) / "registry"
        workload = train_and_export(registry)
        asyncio.run(serve_and_query(registry, workload))


if __name__ == "__main__":
    main()

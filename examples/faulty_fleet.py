#!/usr/bin/env python3
"""Fault-tolerant serving: on-demand vs spot-with-retries on one stream.

Real serverless pools lose executors, run stragglers, and sell
preemptible ("spot") capacity at a steep discount precisely because they
may take it back mid-run.  This example serves the *same* arrival stream
three ways through :class:`repro.fleet.FleetEngine` and compares the
bills:

1. an all-on-demand pool — the unperturbed baseline;
2. an all-spot pool at a gentle reclamation rate — every reclaimed
   executor kills its in-flight tasks (they re-execute from scratch) and
   is replaced through the provisioning ramp, yet the discount wins;
3. the same spot market under heavy churn — wasted work and replacement
   ramps eat the discount and blow up tail latency.

Every fault is drawn deterministically from the ``FaultPlan`` seed, so
each configuration is exactly reproducible.

Run:  python examples/faulty_fleet.py
"""

from __future__ import annotations

from repro import AutoExecutor, Workload
from repro.engine.cluster import Cluster
from repro.fleet import (
    FaultPlan,
    FleetConfig,
    FleetEngine,
    PredictionService,
    SpotMarket,
    poisson_arrivals,
)

QUERY_IDS = tuple(
    f"q{i}" for i in (1, 2, 3, 5, 9, 14, 17, 21, 25, 46, 64, 72, 82, 88, 94, 99)
)
POOL = 96


def serve(workload, system, arrivals, faults: FaultPlan | None):
    # A fresh prediction service per serve: every configuration pays the
    # same cache warm-up on the same stream.
    service = PredictionService.from_autoexecutor(system)
    config = FleetConfig() if faults is None else FleetConfig(faults=faults)
    return FleetEngine(
        workload, capacity=POOL, allocator=service.allocate, config=config
    ).serve(arrivals)


def main() -> None:
    workload = Workload(scale_factor=100, query_ids=QUERY_IDS)
    print(f"training AutoExecutor on {len(workload)} queries ...")
    system = AutoExecutor(family="power_law").train(workload, Cluster())
    arrivals = poisson_arrivals(QUERY_IDS, n_queries=96, rate_qps=0.3, seed=7)
    print(
        f"serving {len(arrivals)} arrivals over "
        f"~{arrivals[-1].arrival_time:.0f} s on a {POOL}-executor pool\n"
    )

    # --- 1. all on-demand: the unperturbed baseline -----------------------
    ondemand = serve(workload, system, arrivals, None)
    print("=== all on-demand ===")
    print(ondemand.describe())

    # --- 2. all spot, gentle churn: the discount wins ----------------------
    gentle = FaultPlan(
        seed=7,
        spot=SpotMarket(fraction=1.0, discount=0.35, reclaim_rate=1 / 1200),
    )
    spot = serve(workload, system, arrivals, gentle)
    print("\n=== all spot, one reclamation per ~20 spot-executor-minutes ===")
    print(spot.describe())

    saved = 1 - spot.total_dollar_cost / ondemand.total_dollar_cost
    print(
        f"\nspot serves the stream at {saved:.0%} lower cost "
        f"(p95 {spot.p95_latency:.0f} s vs {ondemand.p95_latency:.0f} s) "
        f"despite {spot.fault_stats.reclamations} reclamations and "
        f"{spot.task_retries} re-executed tasks."
    )

    # --- 3. all spot, heavy churn: wasted work eats the discount -----------
    churny = FaultPlan(
        seed=7,
        spot=SpotMarket(fraction=1.0, discount=0.35, reclaim_rate=1 / 60),
    )
    thrash = serve(workload, system, arrivals, churny)
    print("\n=== all spot, one reclamation per spot-executor-minute ===")
    print(thrash.describe())
    print(
        f"\nat this churn the same discount buys a "
        f"{thrash.p95_latency / ondemand.p95_latency:.1f}x worse p95 and "
        f"{thrash.wasted_work_seconds:.0f} task-seconds of destroyed work "
        f"— the reclamation rate, not the price, decides whether spot "
        f"capacity is a bargain."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Handling input data growth: stale models, stale Sparklens, retraining.

A production dataset grows 10x (TPC-DS SF=10 -> SF=100).  This example
shows the Section 5.5 story as an operator would live it:

1. a model trained when the data was small keeps *partial* accuracy on the
   grown data, because its features include the input sizes;
2. Sparklens estimates cached from old runs are badly wrong — the tool
   replays observed task durations and cannot anticipate data growth;
3. retraining on fresh telemetry (one run per query at n=16, the paper's
   cheap protocol) restores accuracy.

Run:  python examples/data_growth.py
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import e_metric
from repro.core.training import build_training_dataset
from repro.engine.cluster import Cluster
from repro.experiments.runtime_data import collect_actual_runtimes
from repro.workloads.generator import Workload

EVAL_N = (3, 8, 16, 32)


def report_errors(label: str, predicted_by_n: dict, actuals) -> None:
    errs = []
    for n in EVAL_N:
        actual = actuals.times_by_query(n)
        errs.append(e_metric(actual, predicted_by_n[n]))
    print(f"   {label:<38s} E(n) = "
          + "  ".join(f"{e:5.2f}" for e in errs)
          + f"   (n = {EVAL_N})")


def model_predictions(model, dataset, n_values):
    params = model.predict_params(dataset.features)
    out = {}
    for n in n_values:
        out[n] = {
            qid: float(model.ppm_class.from_parameters(row).predict(n))
            for qid, row in zip(dataset.query_ids, params)
        }
    return out


def main() -> None:
    cluster = Cluster()
    small = Workload(scale_factor=10)
    grown = Workload(scale_factor=100)

    print("training on the small dataset (SF=10) ...")
    dataset_small = build_training_dataset(small, cluster)
    model_old = dataset_small.fit_parameter_model("power_law")

    print("the data grows 10x; collecting ground truth at SF=100 ...")
    dataset_grown = build_training_dataset(grown, cluster)
    actuals = collect_actual_runtimes(grown, cluster, repeats=3)

    print("\nprediction error on the grown data:")
    report_errors(
        "stale model (trained at SF=10)",
        model_predictions(model_old, dataset_grown, EVAL_N),
        actuals,
    )

    grid = dataset_small.n_grid
    stale_sparklens = {
        n: {
            qid: float(
                dataset_small.sparklens_curves[qid][int(np.searchsorted(grid, n))]
            )
            for qid in dataset_grown.query_ids
        }
        for n in EVAL_N
    }
    report_errors("stale Sparklens estimates (SF=10 logs)", stale_sparklens, actuals)

    model_new = dataset_grown.fit_parameter_model("power_law")
    report_errors(
        "retrained model (fresh SF=100 telemetry)",
        model_predictions(model_new, dataset_grown, EVAL_N),
        actuals,
    )

    print(
        "\nreading: the stale model degrades gracefully (its features see "
        "the new input sizes); cached Sparklens estimates do not see data "
        "sizes at all; one cheap retraining run per query restores "
        "accuracy."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 7 scenario: an interactive notebook session with AutoExecutor.

A data scientist runs two ad-hoc queries with think time in between.
AutoExecutor predicts the executor count for each query during
optimization (predictive allocation), and between queries the reactive
deallocation releases idle executors — the hybrid of Section 4.6.

The script prints the application-level executor skyline so the Figure 7
shape (ramp to prediction #1, idle release, ramp to prediction #2) is
visible in text.

Run:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro import AutoExecutor, Workload
from repro.engine.cluster import Cluster
from repro.engine.optimizer import Optimizer
from repro.engine.session import SparkApplication


def render_skyline(app: SparkApplication, width: int = 72) -> str:
    """ASCII executor skyline over the application lifetime."""
    end = app.clock
    rows = []
    peak = max(c for _, c in app.skyline.points)
    for level in range(peak, 0, -1):
        row = ""
        for i in range(width):
            t = end * i / (width - 1)
            row += "#" if app.skyline.value_at(t) >= level else " "
        rows.append(f"{level:3d} |{row}")
    rows.append("    +" + "-" * width)
    rows.append(f"     0s{'':>{width - 12}}{end:7.0f}s")
    return "\n".join(rows)


def main() -> None:
    workload = Workload(scale_factor=100)
    cluster = Cluster()

    print("training AutoExecutor ...")
    system = AutoExecutor(family="power_law").train(workload, cluster)

    optimizer = Optimizer()
    optimizer.inject_rule(system.make_rule())
    app = SparkApplication(
        cluster=cluster,
        optimizer=optimizer,
        default_executors=2,   # the production default the paper criticizes
        idle_timeout=30.0,
    )

    print("\n-- user submits query q23 --")
    row1 = app.run_query(workload.plan("q23"))
    print(
        f"   AutoExecutor requested {row1.executors_requested} executors; "
        f"finished in {row1.runtime:.1f} s "
        f"(occupancy {row1.auc:.0f} executor-seconds)"
    )

    print("-- user reads the results for 90 s (idle) --")
    app.idle(90.0)
    print(
        "   reactive deallocation released the fleet to "
        f"{app.skyline.value_at(app.clock - 1.0)} executor(s)"
    )

    print("-- user submits query q59 --")
    row2 = app.run_query(workload.plan("q59"))
    print(
        f"   AutoExecutor requested {row2.executors_requested} executors; "
        f"finished in {row2.runtime:.1f} s "
        f"(occupancy {row2.auc:.0f} executor-seconds)"
    )

    print(
        f"\napplication skyline "
        f"(total occupancy {app.total_occupancy():.0f} executor-seconds):\n"
    )
    print(render_skyline(app))


if __name__ == "__main__":
    main()

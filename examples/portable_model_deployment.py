#!/usr/bin/env python3
"""Deployment path: train in Python, score inside the optimizer.

The paper trains with scikit-learn but scores inside the JVM-hosted Spark
optimizer by exporting to ONNX (Section 4.3).  This example reproduces
that lifecycle with the portable model format:

1. train both PPM families and export them to a model registry directory;
2. stand up a :class:`PortableModelRuntime` (the ONNX-runtime stand-in)
   over the registry;
3. inject an AutoExecutor rule that lazily loads and caches the portable
   model, then optimize queries and watch the requests;
4. report the Section 5.6 overheads: file sizes, load/setup time, and
   per-query inference time.

Run:  python examples/portable_model_deployment.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import AutoExecutor, Workload
from repro.core.autoexecutor import AutoExecutorRule
from repro.engine.cluster import Cluster
from repro.engine.optimizer import Optimizer
from repro.export.format import save_parameter_model
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer


def main() -> None:
    workload = Workload(scale_factor=100)
    cluster = Cluster()

    print("training AE_PL and AE_AL parameter models ...")
    system = AutoExecutor(family="power_law").train(workload, cluster)
    assert system.dataset is not None
    models = {
        "ae_pl": system.dataset.fit_parameter_model("power_law"),
        "ae_al": system.dataset.fit_parameter_model("amdahl"),
    }

    with tempfile.TemporaryDirectory() as tmp:
        registry = Path(tmp) / "registry"

        print("\nexporting to the portable model registry:")
        for name, model in models.items():
            size = save_parameter_model(model, registry / f"{name}.json")
            print(f"   {name}.json  {size / 1024**2:5.2f} MB")

        runtime = PortableModelRuntime(registry)
        rule = AutoExecutorRule(
            model_loader=lambda: PortablePPMScorer(runtime, "ae_pl")
        )
        optimizer = Optimizer(extension_rules=[rule])

        print("\noptimizing queries with in-process portable-model scoring:")
        for qid in ("q3", "q37", "q72", "q94"):
            context = optimizer.optimize(workload.plan(qid))
            print(
                f"   {qid:>4s}: requested {context.requested_executors:2d} "
                f"executors"
            )

        print("\noverheads (paper Section 5.6 analogues):")
        print(f"   model file load     {1e3 * runtime.mean_timing('load'):8.2f} ms (once)")
        print(f"   runtime setup       {1e3 * runtime.mean_timing('setup'):8.2f} ms (once)")
        print(f"   inference per query {1e3 * runtime.mean_timing('inference'):8.2f} ms")
        featurize = rule.timings["featurize"]
        select = rule.timings["select"]
        print(f"   plan featurization  {1e3 * sum(featurize) / len(featurize):8.2f} ms")
        print(f"   curve + selection   {1e3 * sum(select) / len(select):8.2f} ms")


if __name__ == "__main__":
    main()

"""TraceAnalyzer contracts: reconstructed timelines and skylines must
match the engine's own accounting, and the Sparklens round-trip must
rebuild the exact logs the engine recorded."""

import numpy as np
import pytest

from repro.fleet import (
    AutoscalerConfig,
    FleetConfig,
    FleetEngine,
    PoolSpec,
    ShardedFleet,
    poisson_arrivals,
    static_allocator,
)
from repro.obs import RingBufferTracer, TraceAnalyzer
from repro.sparklens.simulator import SparklensEstimator


@pytest.fixture(scope="module")
def arrivals(workload_small):
    return poisson_arrivals(
        workload_small.query_ids[:8], n_queries=24, rate_qps=0.6, seed=5
    )


@pytest.fixture(scope="module")
def traced_fleet(workload_small, arrivals):
    tracer = RingBufferTracer()
    metrics = FleetEngine(
        workload_small,
        capacity=24,
        allocator=static_allocator(5),
        config=FleetConfig(record_logs=True),
        tracer=tracer,
    ).serve(arrivals)
    return metrics, TraceAnalyzer(tracer.events)


@pytest.fixture(scope="module")
def traced_cluster(workload_small, arrivals):
    tracer = RingBufferTracer()
    metrics = ShardedFleet(
        workload_small,
        [
            PoolSpec(12),
            PoolSpec(12, autoscaler=AutoscalerConfig(min_capacity=8, max_capacity=24)),
        ],
        static_allocator(5),
        config=FleetConfig(record_logs=True),
        tracer=tracer,
    ).serve(arrivals)
    return metrics, TraceAnalyzer(tracer.events)


class TestTimelines:
    def test_timelines_match_records(self, traced_fleet):
        metrics, analyzer = traced_fleet
        timelines = analyzer.timelines()
        assert len(timelines) == metrics.n_queries
        for timeline, record in zip(timelines, metrics.records):
            assert timeline.query_id == record.query_id
            assert timeline.arrival_time == record.arrival_time
            assert timeline.admit_time == record.admit_time
            assert timeline.finish_time == record.finish_time
            assert timeline.latency == record.latency
            assert timeline.granted == record.executors_granted
            assert timeline.policy == "static"
            assert timeline.predicted_executors == 5
            assert timeline.tasks_assigned == timeline.tasks_completed

    def test_queue_delay_breakdown_sums(self, traced_fleet):
        metrics, analyzer = traced_fleet
        breakdown = analyzer.queue_delay_breakdown()
        assert breakdown["n_queries"] == metrics.n_queries
        # prediction delay + admission wait == record-level queue delay
        assert np.isclose(
            breakdown["mean_admission_wait_s"]
            + breakdown["mean_prediction_delay_s"],
            metrics.mean_queue_delay,
        )
        assert np.isclose(
            breakdown["mean_latency_s"],
            np.mean([r.latency for r in metrics.records]),
        )

    def test_pool_routing_recorded(self, traced_cluster):
        metrics, analyzer = traced_cluster
        for q, pool in enumerate(metrics.pool_of):
            assert analyzer.timeline(q).pool == pool


class TestPoolAccounting:
    def test_reserved_skyline_matches_engine(self, traced_fleet):
        metrics, analyzer = traced_fleet
        assert (
            analyzer.reserved_skyline(0).points == metrics.pool_skyline.points
        )

    def test_cluster_skylines_match_engine(self, traced_cluster):
        metrics, analyzer = traced_cluster
        assert analyzer.pools() == [0, 1]
        for p, pool in enumerate(metrics.pools):
            assert (
                analyzer.reserved_skyline(p).points == pool.pool_skyline.points
            )
        assert (
            analyzer.capacity_skyline(1).points
            == metrics.pools[1].capacity_skyline.points
        )

    def test_utilization_matches_engine(self, traced_cluster):
        metrics, analyzer = traced_cluster
        assert analyzer.serving_window() == (
            min(r.arrival_time for r in metrics.records),
            max(r.finish_time for r in metrics.records),
        )
        for p, pool in enumerate(metrics.pools):
            assert np.isclose(analyzer.utilization(p), pool.utilization())


class TestSparklensRoundTrip:
    def test_logs_match_engine_accounting(self, traced_cluster):
        """The acceptance criterion: trace-rebuilt ExecutionLogs carry the
        same per-stage total work and driver time as the engine's own
        record_log path."""
        metrics, analyzer = traced_cluster
        logs = analyzer.execution_logs()
        assert set(logs) == set(range(metrics.n_queries))
        for q, record in enumerate(metrics.records):
            traced, own = logs[q], record.execution_log
            assert traced.query_id == own.query_id
            assert traced.driver_seconds == own.driver_seconds
            assert traced.cores_per_executor == own.cores_per_executor
            assert traced.executors_used == own.executors_used
            assert len(traced.stages) == len(own.stages)
            for t_stage, o_stage in zip(traced.stages, own.stages):
                assert t_stage.dependencies == o_stage.dependencies
                assert (
                    t_stage.task_durations.shape == o_stage.task_durations.shape
                )
                assert np.isclose(
                    t_stage.task_durations.sum(), o_stage.task_durations.sum()
                )

    def test_estimator_round_trip(self, traced_fleet):
        """Feeding a traced log through Sparklens equals feeding the
        engine-recorded log through Sparklens."""
        metrics, analyzer = traced_fleet
        n_values = [2, 4, 8, 16]
        for q in (0, 5, 11):
            from_trace = analyzer.sparklens_curve(q, n_values)
            from_engine = SparklensEstimator(
                metrics.records[q].execution_log
            ).estimate_curve(n_values)
            assert np.allclose(from_trace, from_engine)

    def test_unadmitted_query_raises(self, traced_fleet):
        _, analyzer = traced_fleet
        with pytest.raises(KeyError):
            analyzer.execution_log(999)

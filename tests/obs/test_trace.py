"""Tracing contracts: sinks, the event taxonomy, and the two guarantees
that make tracing safe to ship — the no-op default changes nothing, and a
traced run is deterministic down to the serialized byte."""

import json

import pytest

from repro.engine.allocation import BudgetAllocation
from repro.engine.cluster import Cluster
from repro.engine.faults import FaultPlan
from repro.engine.scheduler import simulate_query
from repro.fleet import (
    FleetConfig,
    FleetEngine,
    PoolSpec,
    ShardedFleet,
    poisson_arrivals,
    static_allocator,
)
from repro.obs import (
    EVENT_KINDS,
    JsonlTracer,
    NullTracer,
    RingBufferTracer,
    TraceEvent,
    read_jsonl,
)


@pytest.fixture(scope="module")
def arrivals(workload_small):
    return poisson_arrivals(
        workload_small.query_ids[:8], n_queries=24, rate_qps=0.6, seed=5
    )


def serve_traced(workload, arrivals, tracer, faults=None):
    engine = FleetEngine(
        workload,
        capacity=24,
        allocator=static_allocator(5),
        config=FleetConfig(faults=faults),
        tracer=tracer,
    )
    return engine.serve(arrivals)


class TestSinks:
    def test_ring_buffer_orders_and_counts(self, workload_small, arrivals):
        tracer = RingBufferTracer()
        serve_traced(workload_small, arrivals, tracer)
        events = tracer.events
        assert len(tracer) == len(events) > 0
        assert all(isinstance(e, TraceEvent) for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)
        counts = tracer.counts()
        assert counts["query_finish"] == 24
        assert sum(counts.values()) == len(events)
        tracer.clear()
        assert len(tracer) == 0

    def test_ring_buffer_capacity_keeps_newest(self):
        tracer = RingBufferTracer(capacity=3)
        for i in range(10):
            tracer.emit(TraceEvent(float(i), "tick-test", data={"i": i}))
        assert [e.time for e in tracer.events] == [7.0, 8.0, 9.0]

    def test_jsonl_round_trip(self, tmp_path, workload_small, arrivals):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            serve_traced(workload_small, arrivals, tracer)
            written = tracer.events_written
        loaded = list(read_jsonl(path))
        assert len(loaded) == written
        ring = RingBufferTracer()
        serve_traced(workload_small, arrivals, ring)
        assert loaded == list(ring.events)

    def test_event_json_round_trip(self):
        event = TraceEvent(
            1.5, "task_assign", 2, 7, "q42", {"stage": 1, "duration_s": 0.25}
        )
        assert TraceEvent.from_json(event.to_json()) == event
        assert json.loads(event.to_json())["kind"] == "task_assign"

    def test_null_tracer_swallows(self):
        tracer = NullTracer()
        tracer.emit(TraceEvent(0.0, "query_arrive"))  # no-op, no error


class TestTaxonomy:
    def test_emitted_kinds_are_registered(self, workload_small, arrivals):
        """Every kind the engines emit is in the documented vocabulary."""
        tracer = RingBufferTracer()
        serve_traced(
            workload_small,
            arrivals,
            tracer,
            faults=FaultPlan(seed=3, crash_rate=0.0004),
        )
        assert set(tracer.counts()) <= EVENT_KINDS

    def test_lifecycle_kinds_present(self, workload_small, arrivals):
        tracer = RingBufferTracer()
        serve_traced(workload_small, arrivals, tracer)
        kinds = set(tracer.counts())
        for kind in (
            "serve_begin",
            "query_arrive",
            "query_predict",
            "query_submit",
            "query_admit",
            "stage_ready",
            "task_assign",
            "stage_done",
            "driver_done",
            "exec_add",
            "grant_release",
            "query_finish",
            "serve_end",
        ):
            assert kind in kinds, kind


class TestZeroCostOff:
    """tracer=None must be indistinguishable from the pre-tracing engine."""

    def test_fleet_bit_identical(self, workload_small, arrivals):
        untraced = FleetEngine(
            workload_small, capacity=24, allocator=static_allocator(5)
        ).serve(arrivals)
        traced = serve_traced(workload_small, arrivals, RingBufferTracer())
        assert untraced.records == traced.records
        assert untraced.pool_skyline.points == traced.pool_skyline.points
        assert untraced.summary() == traced.summary()

    def test_dedicated_run_bit_identical(self, workload_small, cluster):
        graph = workload_small.stage_graph(workload_small.query_ids[0])
        base = simulate_query(graph, BudgetAllocation(8), cluster)
        traced = simulate_query(
            graph, BudgetAllocation(8), cluster, tracer=RingBufferTracer()
        )
        assert traced.runtime == base.runtime
        assert traced.auc == base.auc
        assert traced.skyline.points == base.skyline.points

    def test_sharded_bit_identical(self, workload_small, arrivals):
        pools = [PoolSpec(12), PoolSpec(12)]
        base = ShardedFleet(
            workload_small, pools, static_allocator(5)
        ).serve(arrivals)
        traced = ShardedFleet(
            workload_small, pools, static_allocator(5), tracer=RingBufferTracer()
        ).serve(arrivals)
        assert base.records == traced.records
        assert base.summary() == traced.summary()


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(
        self, tmp_path, workload_small, arrivals
    ):
        """Two traced serves of the same stream write identical bytes."""
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with JsonlTracer(path) as tracer:
                ShardedFleet(
                    workload_small,
                    [PoolSpec(12), PoolSpec(12)],
                    static_allocator(5),
                    config=FleetConfig(faults=FaultPlan(seed=9, crash_rate=0.0003)),
                    tracer=tracer,
                ).serve(arrivals)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].stat().st_size > 0

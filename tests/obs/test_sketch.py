"""Property suite for the mergeable quantile sketch.

The sketch's contract has three load-bearing parts: the relative-error
bound against exact order statistics, the *exact* associativity and
commutativity of merge (a distributed collector must get the same sketch
no matter how shards combine), and serialization round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileSketch

positive_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def exact_quantile(values, q):
    """Order-statistic quantile: the smallest value with rank >= q."""
    return float(np.percentile(np.asarray(values), q, method="inverted_cdf"))


class TestAccuracy:
    @given(values=positive_values, q=st.integers(min_value=0, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_rank_error_bound(self, values, q):
        alpha = 0.01
        sketch = QuantileSketch(relative_accuracy=alpha)
        sketch.extend(values)
        estimate = sketch.quantile(q)
        exact = exact_quantile(values, q)
        # The DDSketch guarantee is relative error alpha against the
        # order statistic in the same bucket; bracket with both
        # neighbouring order statistics to absorb rank ties at bucket
        # boundaries.
        ranks = np.sort(np.asarray(values))
        lo = ranks[max(0, int(np.ceil(q / 100 * len(ranks))) - 2)]
        hi = ranks[min(len(ranks) - 1, int(np.ceil(q / 100 * len(ranks))))]
        assert lo * (1 - 2 * alpha) <= estimate <= hi * (1 + 2 * alpha), (
            estimate,
            exact,
        )

    def test_documented_bound_on_latency_like_data(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=3.0, sigma=1.0, size=5000)
        sketch = QuantileSketch(relative_accuracy=0.01)
        sketch.extend(values)
        for q in (50, 95, 99):
            exact = exact_quantile(values, q)
            assert abs(sketch.quantile(q) - exact) <= 0.02 * exact

    def test_zeros_and_empty(self):
        sketch = QuantileSketch()
        assert sketch.quantile(50) == 0.0
        sketch.add(0.0)
        sketch.add(0.0)
        assert sketch.count == 2
        assert sketch.quantile(99) == 0.0

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)


class TestMergeAlgebra:
    @given(a=positive_values, b=positive_values)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        sa, sb = QuantileSketch(), QuantileSketch()
        sa.extend(a)
        sb.extend(b)
        assert sa.merge(sb) == sb.merge(sa)

    @given(a=positive_values, b=positive_values, c=positive_values)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        sa, sb, sc = QuantileSketch(), QuantileSketch(), QuantileSketch()
        sa.extend(a)
        sb.extend(b)
        sc.extend(c)
        assert sa.merge(sb).merge(sc) == sa.merge(sb.merge(sc))

    @given(a=positive_values, b=positive_values)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_stream(self, a, b):
        """Sharded ingestion is indistinguishable from one stream."""
        sa, sb, sall = QuantileSketch(), QuantileSketch(), QuantileSketch()
        sa.extend(a)
        sb.extend(b)
        sall.extend(a)
        sall.extend(b)
        assert sa.merge(sb) == sall

    def test_merge_requires_matching_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.01).merge(
                QuantileSketch(relative_accuracy=0.02)
            )

    def test_merge_does_not_mutate(self):
        sa, sb = QuantileSketch(), QuantileSketch()
        sa.extend([1.0, 2.0])
        sb.extend([3.0])
        merged = sa.merge(sb)
        assert sa.count == 2 and sb.count == 1 and merged.count == 3


class TestSerialization:
    @given(values=positive_values)
    @settings(max_examples=50, deadline=None)
    def test_dict_round_trip(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        back = QuantileSketch.from_dict(sketch.to_dict())
        assert back == sketch
        assert back.quantiles([50, 95, 99]) == sketch.quantiles([50, 95, 99])

    def test_bounded_memory(self):
        """Bucket count grows logarithmically, not with stream length."""
        sketch = QuantileSketch(relative_accuracy=0.01)
        rng = np.random.default_rng(1)
        sketch.extend(rng.lognormal(3.0, 1.0, size=50_000))
        assert sketch.count == 50_000
        assert sketch.bucket_count < 1500

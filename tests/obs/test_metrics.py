"""Streaming metrics: registry semantics, and the contract that
StreamingFleetStats reproduces FleetMetrics' summary within the sketch's
documented error bound — via both direct folding and sharded merging."""

import numpy as np
import pytest

from repro.fleet import (
    FleetEngine,
    PoolSpec,
    ShardedFleet,
    poisson_arrivals,
    static_allocator,
)
from repro.obs import Counter, Gauge, MetricsRegistry, StreamingFleetStats


@pytest.fixture(scope="module")
def fleet_metrics(workload_small):
    arrivals = poisson_arrivals(
        workload_small.query_ids[:8], n_queries=40, rate_qps=0.8, seed=2
    )
    return FleetEngine(
        workload_small, capacity=24, allocator=static_allocator(5)
    ).serve(arrivals)


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("served").inc()
        registry.counter("served").inc(4)
        registry.gauge("queue").set(7.0)
        registry.gauge("queue").set(3.0)
        assert registry.counter("served").value == 5
        assert registry.gauge("queue").value == 3.0
        assert registry.gauge("queue").peak == 7.0
        with pytest.raises(ValueError):
            registry.counter("served").inc(-1)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("served").inc(2)
        b.counter("served").inc(3)
        b.counter("failed").inc()
        a.gauge("queue").set(5.0)
        b.gauge("queue").set(9.0)
        a.sketch("latency").extend([1.0, 2.0])
        b.sketch("latency").extend([3.0])
        merged = a.merge(b)
        assert merged.counter("served").value == 5
        assert merged.counter("failed").value == 1
        assert merged.gauge("queue").value == 9.0
        assert merged.sketch("latency").count == 3
        assert "latency" in merged.as_dict()["sketches"]

    def test_standalone_primitives_documented_semantics(self):
        counter = Counter("served")
        counter.inc(10)
        gauge = Gauge("depth")
        gauge.set(1.5)
        assert counter.value == 10 and gauge.value == 1.5


class TestStreamingFleetStats:
    def test_summary_within_sketch_bound(self, fleet_metrics):
        """p50/p95/p99 agree with the exact sorted-record percentiles
        within the documented relative-accuracy bound (plus the gap
        between neighbouring order statistics, which np.percentile's
        interpolation can span)."""
        streaming = fleet_metrics.streaming(relative_accuracy=0.01)
        summary = streaming.summary()
        exact = fleet_metrics.summary()
        assert summary["n_queries"] == exact["n_queries"]
        assert summary["makespan_s"] == exact["makespan_s"]
        assert np.isclose(
            summary["total_executor_seconds"], exact["total_executor_seconds"]
        )
        latencies = np.sort([r.latency for r in fleet_metrics.records])
        for q, key in ((50, "p50_latency_s"), (95, "p95_latency_s"), (99, "p99_latency_s")):
            rank = max(1, int(np.ceil(q / 100 * len(latencies))))
            lo = latencies[max(0, rank - 2)]
            hi = latencies[min(len(latencies) - 1, rank)]
            assert lo * 0.98 <= summary[key] <= hi * 1.02, (q, summary[key])
        assert np.isclose(
            summary["mean_queue_delay_s"], exact["mean_queue_delay_s"], rtol=0.02
        )
        assert np.isclose(
            summary["max_queue_delay_s"], exact["max_queue_delay_s"], rtol=0.02
        )

    def test_observe_stream_equals_from_records(self, fleet_metrics):
        folded = StreamingFleetStats()
        for record in fleet_metrics.records:
            folded.observe(record)
        assert folded.summary() == StreamingFleetStats.from_records(
            fleet_metrics.records
        ).summary()

    def test_sharded_merge_equals_single_stream(self, fleet_metrics):
        """Splitting records across shards and merging reproduces the
        single-stream fold exactly — the associativity the obs layer
        promises distributed collectors."""
        records = fleet_metrics.records
        shards = [
            StreamingFleetStats.from_records(records[i::3]) for i in range(3)
        ]
        merged = shards[0].merge(shards[1]).merge(shards[2])
        single = StreamingFleetStats.from_records(records)
        merged_summary, single_summary = merged.summary(), single.summary()
        assert set(merged_summary) == set(single_summary)
        for key, value in single_summary.items():
            if key == "total_executor_seconds":
                # Summation order differs across merge trees; counts and
                # sketch buckets are exact, float sums are near-exact.
                assert np.isclose(merged_summary[key], value, rtol=1e-12)
            else:
                assert merged_summary[key] == value, key

    def test_cluster_streaming(self, workload_small):
        arrivals = poisson_arrivals(
            workload_small.query_ids[:6], n_queries=20, rate_qps=0.7, seed=4
        )
        cluster = ShardedFleet(
            workload_small, [PoolSpec(12), PoolSpec(12)], static_allocator(4)
        ).serve(arrivals)
        streaming = cluster.streaming()
        assert streaming.n_queries == cluster.n_queries
        assert np.isclose(streaming.makespan, cluster.makespan)

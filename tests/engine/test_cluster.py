"""Unit tests for the cluster manager."""

import pytest

from repro.engine.cluster import Cluster, ExecutorSpec, NodeSpec


class TestSpecs:
    def test_defaults_match_paper_testbed(self):
        """Medium nodes: 8 cores / 64 GB; executors: 4 cores / 28 GB."""
        node, executor = NodeSpec(), ExecutorSpec()
        assert node.cores == 8 and node.memory_gb == 64.0
        assert executor.cores == 4 and executor.memory_gb == 28.0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            ExecutorSpec(memory_gb=0)


class TestPlacement:
    def test_default_two_executors_per_node(self):
        """The paper: at most two executors can be placed on each node."""
        assert Cluster().executors_per_node == 2

    def test_memory_can_constrain_placement(self):
        cluster = Cluster(
            node=NodeSpec(cores=16, memory_gb=40),
            executor=ExecutorSpec(cores=4, memory_gb=28),
            max_executors_per_node=4,
        )
        assert cluster.executors_per_node == 1  # 2*28 > 40

    def test_cores_can_constrain_placement(self):
        cluster = Cluster(
            node=NodeSpec(cores=8, memory_gb=640),
            executor=ExecutorSpec(cores=4, memory_gb=28),
            max_executors_per_node=8,
        )
        assert cluster.executors_per_node == 2

    def test_capacity(self):
        cluster = Cluster(max_nodes=24)
        assert cluster.max_executors == 48  # the paper's n range cap

    def test_impossible_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            Cluster(
                node=NodeSpec(cores=2, memory_gb=8),
                executor=ExecutorSpec(cores=4, memory_gb=28),
            )


class TestRequests:
    def test_clamp_request_at_capacity(self):
        cluster = Cluster(max_nodes=4)  # capacity 8
        assert cluster.clamp_request(100) == 8
        assert cluster.clamp_request(3) == 3
        assert cluster.clamp_request(-1) == 0

    def test_grant_times_batched_ramp(self):
        cluster = Cluster(base_grant_lag=2.0, grant_batch=8, grant_interval=4.0)
        times = cluster.grant_times(10.0, 20)
        assert len(times) == 20
        assert times[0] == pytest.approx(12.0)
        assert times[7] == pytest.approx(12.0)   # first batch of 8
        assert times[8] == pytest.approx(16.0)   # second batch
        assert times[16] == pytest.approx(20.0)  # third batch

    def test_full_48_grant_takes_tens_of_seconds(self):
        """Paper Section 5.4: the runtime takes ~20-30 s to allocate the
        requested count."""
        cluster = Cluster()
        times = cluster.grant_times(0.0, 48)
        assert 15.0 <= times[-1] <= 50.0
        # a 25-executor request (Figure 12's example) lands in ~27 s
        assert 20.0 <= cluster.grant_times(0.0, 25)[-1] <= 32.0

    def test_grant_times_monotone(self):
        times = Cluster().grant_times(5.0, 30)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_grant_clamps_to_capacity(self):
        cluster = Cluster(max_nodes=2)
        assert len(cluster.grant_times(0.0, 100)) == 4

    def test_invalid_grant_schedule_rejected(self):
        with pytest.raises(ValueError):
            Cluster(grant_batch=0)
        with pytest.raises(ValueError):
            Cluster(grant_interval=0.0)

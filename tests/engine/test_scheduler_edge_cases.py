"""Failure-injection and edge-case tests for the scheduler."""

import pytest

from repro.engine.allocation import PredictiveAllocation, StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.scheduler import SchedulerConfig, simulate_query
from repro.engine.stages import Stage, StageGraph

NO_FRICTION = SchedulerConfig(
    spill_coefficient=0.0, coordination_coefficient=0.0
)


def one_stage(num_tasks=8, task_seconds=1.0, driver=0.0):
    return StageGraph(
        stages=[Stage(stage_id=0, num_tasks=num_tasks, task_seconds=task_seconds)],
        driver_seconds=driver,
        query_id="edge",
    )


class _NeverAllocates:
    """Pathological policy: zero executors forever."""

    initial_executors = 0
    idle_timeout = None
    min_executors = 0

    def desired_target(self, state):
        return 0

    def reset(self):
        return None


class TestPathologicalPolicies:
    def test_policy_that_never_allocates_raises(self):
        with pytest.raises(RuntimeError, match="stalled"):
            simulate_query(one_stage(), _NeverAllocates(), Cluster())

    def test_zero_initial_executors_with_later_request_completes(self):
        pol = PredictiveAllocation(
            4, initial_executors=0, request_delay=2.0
        )
        result = simulate_query(one_stage(), pol, Cluster(), NO_FRICTION)
        # work starts only after the provisioning lag
        assert result.runtime > 2.0
        assert result.max_executors == 4

    def test_request_beyond_capacity_clamped(self):
        cluster = Cluster(max_nodes=2)  # capacity 4
        pol = StaticAllocation(100)
        result = simulate_query(one_stage(64), pol, cluster, NO_FRICTION)
        assert result.max_executors == 4


class TestDegenerateGraphs:
    def test_single_task_query(self):
        g = one_stage(num_tasks=1, task_seconds=5.0, driver=1.0)
        result = simulate_query(g, StaticAllocation(8), Cluster(), NO_FRICTION)
        assert result.runtime == pytest.approx(6.0, abs=1e-6)
        assert result.total_tasks == 1

    def test_deep_chain_of_single_tasks(self):
        stages = [
            Stage(stage_id=i, num_tasks=1, task_seconds=1.0,
                  dependencies=[i - 1] if i else [])
            for i in range(20)
        ]
        g = StageGraph(stages=stages, driver_seconds=0.0, query_id="chain")
        result = simulate_query(g, StaticAllocation(48), Cluster(), NO_FRICTION)
        # fully serial no matter how many executors
        assert result.runtime == pytest.approx(20.0, abs=1e-6)

    def test_wide_diamond_dag(self):
        stages = [
            Stage(stage_id=0, num_tasks=4, task_seconds=1.0),
            Stage(stage_id=1, num_tasks=40, task_seconds=1.0, dependencies=[0]),
            Stage(stage_id=2, num_tasks=40, task_seconds=1.0, dependencies=[0]),
            Stage(stage_id=3, num_tasks=1, task_seconds=1.0,
                  dependencies=[1, 2]),
        ]
        g = StageGraph(stages=stages, driver_seconds=0.0, query_id="diamond")
        # 10 executors = 40 slots: both middle stages share slots (2 waves)
        result = simulate_query(g, StaticAllocation(10), Cluster(), NO_FRICTION)
        assert result.runtime == pytest.approx(4.0, abs=1e-6)

    def test_fractional_wave_rounds_up(self):
        # 10 tasks on 8 slots -> 2 waves
        g = one_stage(num_tasks=10, task_seconds=3.0)
        result = simulate_query(g, StaticAllocation(2), Cluster(), NO_FRICTION)
        assert result.runtime == pytest.approx(6.0, abs=1e-6)


class TestTelemetryConsistency:
    def test_auc_equals_skyline_integral(self):
        g = one_stage(num_tasks=64, task_seconds=1.0, driver=2.0)
        pol = PredictiveAllocation(8, initial_executors=2, request_delay=1.0)
        result = simulate_query(g, pol, Cluster(), NO_FRICTION)
        assert result.auc == pytest.approx(
            result.skyline.auc(result.runtime), rel=1e-9
        )

    def test_max_executors_matches_skyline_peak(self):
        g = one_stage(num_tasks=64, task_seconds=1.0)
        pol = PredictiveAllocation(12, initial_executors=3, request_delay=0.5)
        result = simulate_query(g, pol, Cluster(), NO_FRICTION)
        assert result.max_executors == result.skyline.max_executors

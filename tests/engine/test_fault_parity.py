"""Zero-fault differential parity: an inert ``FaultPlan`` changes nothing.

The fault layer's foundational contract: ``FaultPlan`` with every rate at
zero builds no injector, draws no RNG, schedules no event — a run through
the fault-aware engine is *bit-identical* (runtime, AUC, skyline,
records, summaries) to the unperturbed engine.  Asserted here across the
whole TPC-DS workload for both drivers — ``simulate_query`` and a
sharded fleet of one — and re-checked in CI by the fleet bench gate
(``benchmarks/perf/compare.py``).  Any divergence means an inert plan
started paying (or perturbing) something, which would silently invalidate
every fault-sweep comparison against the unperturbed baseline.
"""

import pytest

from repro.engine.allocation import BudgetAllocation, StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.execution import compile_plan
from repro.engine.faults import FaultPlan
from repro.engine.scheduler import simulate_query
from repro.engine.sweep import simulate_query_sweep
from repro.fleet.arrivals import QueryArrival, poisson_arrivals
from repro.fleet.cluster import ShardedFleet
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator
from repro.workloads.generator import Workload

INERT = FaultPlan(seed=1234)  # a seed alone perturbs nothing


@pytest.fixture(scope="module")
def cluster():
    return Cluster()


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=100)


def assert_result_parity(candidate, reference):
    assert candidate.runtime == reference.runtime
    assert candidate.auc == reference.auc
    assert candidate.skyline.points == reference.skyline.points
    assert candidate.max_executors == reference.max_executors
    assert candidate.fault_stats is None


class TestSimulateQueryZeroFaultParity:
    def test_all_tpcds_plans_bit_identical(self, workload, cluster):
        assert not INERT.active
        for i, qid in enumerate(workload):
            budget = (4, 8, 16, 32)[i % 4]
            plan = compile_plan(workload.stage_graph(qid))
            reference = simulate_query(
                plan, BudgetAllocation(budget, idle_timeout=5.0), cluster
            )
            candidate = simulate_query(
                plan,
                BudgetAllocation(budget, idle_timeout=5.0),
                cluster,
                faults=INERT,
            )
            assert_result_parity(candidate, reference)

    def test_sweep_keeps_fast_path_under_inert_plan(self, workload, cluster):
        plan = compile_plan(workload.stage_graph("q94"))
        counts = [1, 4, 8, 16, 32]
        reference = simulate_query_sweep(plan, counts, cluster)
        candidate = simulate_query_sweep(plan, counts, cluster, faults=INERT)
        for cand, ref in zip(candidate, reference):
            assert_result_parity(cand, ref)

    def test_sweep_active_plan_matches_per_count_event_loop(self, workload, cluster):
        faults = FaultPlan(seed=7, crash_rate=1.0 / 120.0, straggler_rate=0.2)
        plan = compile_plan(workload.stage_graph("q3"))
        counts = [2, 8, 16]
        swept = simulate_query_sweep(plan, counts, cluster, faults=faults)
        for n, result in zip(counts, swept):
            loop = simulate_query(plan, StaticAllocation(n), cluster, faults=faults)
            assert result.runtime == loop.runtime
            assert result.auc == loop.auc
            assert result.skyline.points == loop.skyline.points
            assert result.fault_stats.as_dict() == loop.fault_stats.as_dict()


class TestShardedFleetZeroFaultParity:
    def test_all_tpcds_plans_bit_identical(self, workload, cluster):
        for i, qid in enumerate(workload):
            budget = (4, 8, 16, 32)[i % 4]
            arrivals = [QueryArrival(0, qid, 0, 0.0)]
            reference = ShardedFleet(
                workload, [64], static_allocator(budget), cluster=cluster
            ).serve(arrivals)
            candidate = ShardedFleet(
                workload,
                [64],
                static_allocator(budget),
                cluster=cluster,
                config=FleetConfig(faults=INERT),
            ).serve(arrivals)
            ref_pool, cand_pool = reference.pools[0], candidate.pools[0]
            assert cand_pool.records == ref_pool.records
            assert cand_pool.pool_skyline.points == ref_pool.pool_skyline.points
            assert cand_pool.summary() == ref_pool.summary()
            assert candidate.records[0].fault_stats is None

    def test_contended_stream_bit_identical(self, workload, cluster):
        qids = list(workload)[::8]
        stream = poisson_arrivals(qids, 32, 1.0, seed=11)
        reference = FleetEngine(
            workload, capacity=48, allocator=static_allocator(8)
        ).serve(stream)
        candidate = FleetEngine(
            workload,
            capacity=48,
            allocator=static_allocator(8),
            config=FleetConfig(faults=INERT),
        ).serve(stream)
        assert candidate.records == reference.records
        assert candidate.pool_skyline.points == reference.pool_skyline.points
        assert candidate.summary() == reference.summary()

"""Unit tests for the plan → stage compiler."""

import numpy as np
import pytest

from repro.engine.plan import InputSource, LogicalPlan, OperatorKind, PlanNode
from repro.engine.stages import (
    Stage,
    StageCompilerConfig,
    StageGraph,
    compile_stages,
)


def scan(rows=1e7, nbytes=2e9):
    return PlanNode(
        kind=OperatorKind.SCAN, source=InputSource("t", nbytes, rows)
    )


def exchange(child):
    return PlanNode(
        kind=OperatorKind.EXCHANGE, children=[child], rows_out=child.rows_out
    )


def agg_over(child, rows_out=100.0):
    return PlanNode(
        kind=OperatorKind.AGGREGATE, children=[child], rows_out=rows_out
    )


class TestStage:
    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            Stage(stage_id=0, num_tasks=0, task_seconds=1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            Stage(stage_id=0, num_tasks=1, task_seconds=0.0)

    def test_skew_factor_inflates_tail_tasks(self):
        stage = Stage(
            stage_id=0, num_tasks=20, task_seconds=1.0,
            skew_fraction=0.1, skew_factor=2.0,
        )
        d = stage.task_durations()
        assert d.shape == (20,)
        assert np.allclose(d[:-2], 1.0)
        assert np.allclose(d[-2:], 2.0)

    def test_work_share_skew_grows_with_width(self):
        small = Stage(
            stage_id=0, num_tasks=10, task_seconds=1.0, skew_work_share=0.05
        )
        large = Stage(
            stage_id=0, num_tasks=100, task_seconds=1.0, skew_work_share=0.05
        )
        assert large.task_durations().max() > small.task_durations().max()

    def test_total_work_and_max(self):
        stage = Stage(stage_id=0, num_tasks=4, task_seconds=2.0)
        assert stage.total_work == pytest.approx(8.0)
        assert stage.max_task_seconds == pytest.approx(2.0)


class TestStageGraph:
    def make_graph(self):
        return StageGraph(
            stages=[
                Stage(stage_id=0, num_tasks=10, task_seconds=1.0),
                Stage(stage_id=1, num_tasks=5, task_seconds=2.0),
                Stage(
                    stage_id=2, num_tasks=1, task_seconds=3.0,
                    dependencies=[0, 1],
                ),
            ],
            driver_seconds=4.0,
        )

    def test_validates_ids_and_deps(self):
        graph = self.make_graph()
        assert graph.total_tasks == 16
        assert graph.total_work == pytest.approx(10 + 10 + 3)
        assert graph.max_stage_width == 10

    def test_forward_dependency_rejected(self):
        with pytest.raises(ValueError, match="earlier"):
            StageGraph(
                stages=[
                    Stage(stage_id=0, num_tasks=1, task_seconds=1.0,
                          dependencies=[1]),
                    Stage(stage_id=1, num_tasks=1, task_seconds=1.0),
                ]
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError):
            StageGraph(stages=[
                Stage(stage_id=0, num_tasks=1, task_seconds=1.0,
                      dependencies=[5]),
            ])

    def test_non_contiguous_ids_rejected(self):
        with pytest.raises(ValueError, match="0..len-1"):
            StageGraph(stages=[Stage(stage_id=3, num_tasks=1, task_seconds=1.0)])

    def test_critical_path_includes_driver_and_chain(self):
        graph = self.make_graph()
        # longest chain: stage1 (2s max task) -> stage2 (3s), plus driver 4
        assert graph.critical_path_seconds() == pytest.approx(4 + 2 + 3)


class TestCompileStages:
    def test_single_region_single_stage(self):
        plan = LogicalPlan(root=agg_over(scan()), query_id="q")
        graph = compile_stages(plan)
        assert len(graph.stages) == 1
        assert graph.query_id == "q"

    def test_exchange_creates_stage_boundary(self):
        plan = LogicalPlan(root=agg_over(exchange(scan())))
        graph = compile_stages(plan)
        assert len(graph.stages) == 2
        assert graph.stages[1].dependencies == [0]

    def test_two_exchanges_three_stages(self):
        join = PlanNode(
            kind=OperatorKind.JOIN,
            children=[exchange(scan()), exchange(scan())],
            rows_out=1e6,
        )
        plan = LogicalPlan(root=agg_over(join))
        graph = compile_stages(plan)
        assert len(graph.stages) == 3
        assert sorted(graph.stages[2].dependencies) == [0, 1]

    def test_scan_stage_width_scales_with_bytes(self):
        cfg = StageCompilerConfig()
        small = compile_stages(
            LogicalPlan(root=agg_over(scan(rows=1e5, nbytes=cfg.split_bytes)))
        )
        big = compile_stages(
            LogicalPlan(
                root=agg_over(scan(rows=1e5, nbytes=20 * cfg.split_bytes))
            )
        )
        assert big.stages[0].num_tasks > small.stages[0].num_tasks

    def test_wide_internal_operator_widens_stage(self):
        # an expand inflating rows inside a shuffle stage must widen it
        cfg = StageCompilerConfig()
        rows = cfg.rows_per_shuffle_partition * 4
        ex = exchange(scan(rows=rows))
        ex.rows_out = rows
        narrow = compile_stages(LogicalPlan(root=agg_over(ex.copy())))
        expand = PlanNode(
            kind=OperatorKind.EXPAND, children=[ex], rows_out=rows * 8
        )
        wide = compile_stages(LogicalPlan(root=agg_over(expand)))
        assert wide.stages[-1].num_tasks > narrow.stages[-1].num_tasks

    def test_width_cap_respected(self):
        cfg = StageCompilerConfig(max_tasks_per_stage=7)
        graph = compile_stages(
            LogicalPlan(root=agg_over(scan(nbytes=1e12))), cfg
        )
        assert graph.max_stage_width <= 7

    def test_shuffle_stage_width_from_boundary_rows(self):
        cfg = StageCompilerConfig()
        rows = cfg.rows_per_shuffle_partition * 10
        ex = exchange(scan(rows=rows))
        ex.rows_out = rows
        plan = LogicalPlan(root=agg_over(ex))
        graph = compile_stages(plan, cfg)
        # the downstream (aggregate) stage reads 10 partitions
        assert graph.stages[1].num_tasks == 10

    def test_more_work_more_total_seconds(self):
        lo = compile_stages(LogicalPlan(root=agg_over(scan(rows=1e6, nbytes=1e8))))
        hi = compile_stages(LogicalPlan(root=agg_over(scan(rows=1e9, nbytes=1e11))))
        assert hi.total_work > lo.total_work * 10

    def test_driver_seconds_grow_with_stage_count(self):
        one = compile_stages(LogicalPlan(root=agg_over(scan())))
        three = compile_stages(
            LogicalPlan(root=agg_over(exchange(agg_over(exchange(scan()), 1e5))))
        )
        assert three.driver_seconds > one.driver_seconds

    def test_working_set_proportional_to_input(self):
        cfg = StageCompilerConfig()
        graph = compile_stages(LogicalPlan(root=agg_over(scan(nbytes=4e9))), cfg)
        assert graph.working_set_bytes == pytest.approx(
            4e9 * cfg.working_set_fraction
        )

    def test_deterministic(self):
        plan = LogicalPlan(root=agg_over(exchange(scan())))
        g1, g2 = compile_stages(plan), compile_stages(plan)
        assert [s.num_tasks for s in g1.stages] == [s.num_tasks for s in g2.stages]
        assert [s.task_seconds for s in g1.stages] == [
            s.task_seconds for s in g2.stages
        ]

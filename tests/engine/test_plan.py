"""Unit tests for the logical plan IR."""

import pytest

from repro.engine.plan import (
    OPERATOR_KINDS,
    InputSource,
    LogicalPlan,
    OperatorKind,
    PlanNode,
)


def scan(name="t", nbytes=1e9, rows=1e6) -> PlanNode:
    return PlanNode(
        kind=OperatorKind.SCAN,
        source=InputSource(name=name, bytes=nbytes, rows=rows),
    )


def simple_plan() -> LogicalPlan:
    s1, s2 = scan("a", 1e9, 1e6), scan("b", 2e9, 2e6)
    join = PlanNode(kind=OperatorKind.JOIN, children=[s1, s2], rows_out=5e5)
    agg = PlanNode(kind=OperatorKind.AGGREGATE, children=[join], rows_out=100)
    return LogicalPlan(root=agg, query_id="q_test")


class TestOperatorTaxonomy:
    def test_exactly_fourteen_kinds(self):
        """The paper's Table 2: 14 operators for TPC-DS."""
        assert len(OPERATOR_KINDS) == 14

    def test_kind_values_unique(self):
        assert len({k.value for k in OPERATOR_KINDS}) == 14


class TestPlanNode:
    def test_scan_requires_source(self):
        with pytest.raises(ValueError, match="input source"):
            PlanNode(kind=OperatorKind.SCAN)

    def test_scan_cannot_have_children(self):
        with pytest.raises(ValueError, match="children"):
            PlanNode(
                kind=OperatorKind.SCAN,
                source=InputSource("t", 1, 1),
                children=[scan()],
            )

    def test_non_scan_cannot_carry_source(self):
        with pytest.raises(ValueError, match="scan nodes"):
            PlanNode(
                kind=OperatorKind.FILTER,
                children=[scan()],
                source=InputSource("t", 1, 1),
            )

    def test_scan_rows_out_defaults_to_source_rows(self):
        node = scan(rows=123.0)
        assert node.rows_out == 123.0

    def test_selectivity_bounds(self):
        with pytest.raises(ValueError, match="selectivity"):
            PlanNode(kind=OperatorKind.FILTER, children=[scan()], selectivity=1.5)

    def test_columns_kept_bounds(self):
        with pytest.raises(ValueError, match="columns_kept"):
            PlanNode(kind=OperatorKind.PROJECT, children=[scan()], columns_kept=0.0)

    def test_rows_processed_for_scan_is_source_rows(self):
        assert scan(rows=42.0).rows_processed == 42.0

    def test_rows_processed_for_inner_node_is_input_rows(self):
        s1, s2 = scan(rows=10), scan(rows=20)
        join = PlanNode(kind=OperatorKind.JOIN, children=[s1, s2], rows_out=5)
        assert join.rows_processed == 30

    def test_copy_is_deep(self):
        plan = simple_plan()
        clone = plan.copy()
        clone.root.children[0].rows_out = -0.0
        assert plan.root.children[0].rows_out == 5e5


class TestInputSource:
    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            InputSource("t", bytes=-1, rows=0)

    def test_frozen(self):
        src = InputSource("t", 1, 1)
        with pytest.raises(AttributeError):
            src.bytes = 2


class TestLogicalPlan:
    def test_operator_counts_cover_all_kinds(self):
        counts = simple_plan().operator_counts()
        assert set(counts) == set(OPERATOR_KINDS)
        assert counts[OperatorKind.SCAN] == 2
        assert counts[OperatorKind.JOIN] == 1
        assert counts[OperatorKind.AGGREGATE] == 1
        assert counts[OperatorKind.SORT] == 0

    def test_num_operators(self):
        assert simple_plan().num_operators() == 4

    def test_max_depth(self):
        assert simple_plan().max_depth() == 3

    def test_input_sources_and_totals(self):
        plan = simple_plan()
        assert [s.name for s in plan.input_sources()] == ["a", "b"]
        assert plan.total_input_bytes() == pytest.approx(3e9)

    def test_total_rows_processed_sums_all_operators(self):
        plan = simple_plan()
        # scans 1e6+2e6, join inputs 3e6, aggregate input 5e5
        assert plan.total_rows_processed() == pytest.approx(6.5e6)

    def test_validate_accepts_well_formed(self):
        simple_plan().validate()

    def test_validate_rejects_non_scan_leaf(self):
        bad = PlanNode(kind=OperatorKind.SCAN, source=InputSource("t", 1, 1))
        object.__setattr__(bad, "kind", OperatorKind.FILTER)
        plan = LogicalPlan(root=bad)
        with pytest.raises(ValueError, match="not a scan"):
            plan.validate()

    def test_validate_rejects_shared_subtree(self):
        shared = scan()
        join = PlanNode(
            kind=OperatorKind.JOIN, children=[shared, shared], rows_out=1
        )
        with pytest.raises(ValueError, match="shared"):
            LogicalPlan(root=join).validate()

    def test_walk_is_preorder(self):
        plan = simple_plan()
        kinds = [n.kind for n in plan.walk()]
        assert kinds[0] == OperatorKind.AGGREGATE
        assert kinds[1] == OperatorKind.JOIN

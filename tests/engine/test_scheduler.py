"""Unit tests for the discrete-event scheduler."""

import numpy as np
import pytest

from repro.engine.allocation import (
    DynamicAllocation,
    PredictiveAllocation,
    StaticAllocation,
)
from repro.engine.cluster import Cluster
from repro.engine.scheduler import SchedulerConfig, simulate_query
from repro.engine.stages import Stage, StageGraph


def graph_one_stage(num_tasks=16, task_seconds=1.0, driver=0.0, ws=0.0):
    return StageGraph(
        stages=[Stage(stage_id=0, num_tasks=num_tasks, task_seconds=task_seconds)],
        driver_seconds=driver,
        working_set_bytes=ws,
        query_id="unit",
    )


def graph_chain(widths=(8, 4, 1), task_seconds=1.0, driver=0.0):
    stages = []
    for i, w in enumerate(widths):
        deps = [i - 1] if i > 0 else []
        stages.append(
            Stage(stage_id=i, num_tasks=w, task_seconds=task_seconds,
                  dependencies=deps)
        )
    return StageGraph(stages=stages, driver_seconds=driver, query_id="chain")


@pytest.fixture(scope="module")
def cluster():
    return Cluster()


NO_FRICTION = SchedulerConfig(
    spill_coefficient=0.0, coordination_coefficient=0.0
)


class TestWaveArithmetic:
    def test_single_wave_runs_in_task_time(self, cluster):
        # 16 tasks on 4 executors x 4 cores = one wave
        g = graph_one_stage(num_tasks=16, task_seconds=2.0)
        r = simulate_query(g, StaticAllocation(4), cluster, NO_FRICTION)
        assert r.runtime == pytest.approx(2.0, abs=1e-6)

    def test_two_waves_double_the_time(self, cluster):
        g = graph_one_stage(num_tasks=32, task_seconds=2.0)
        r = simulate_query(g, StaticAllocation(4), cluster, NO_FRICTION)
        assert r.runtime == pytest.approx(4.0, abs=1e-6)

    def test_driver_time_is_serial_prefix(self, cluster):
        g = graph_one_stage(num_tasks=4, task_seconds=1.0, driver=3.0)
        r = simulate_query(g, StaticAllocation(1), cluster, NO_FRICTION)
        assert r.runtime == pytest.approx(4.0, abs=1e-6)

    def test_chain_respects_dependencies(self, cluster):
        g = graph_chain(widths=(8, 8, 8), task_seconds=1.0)
        r = simulate_query(g, StaticAllocation(2), cluster, NO_FRICTION)
        assert r.runtime == pytest.approx(3.0, abs=1e-6)

    def test_more_executors_never_slower_without_friction(self, cluster):
        g = graph_chain(widths=(48, 16, 4), task_seconds=1.5)
        times = [
            simulate_query(g, StaticAllocation(n), cluster, NO_FRICTION).runtime
            for n in (1, 2, 4, 8, 16)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_runtime_floor_is_critical_path(self, cluster):
        g = graph_chain(widths=(4, 4, 4), task_seconds=2.0, driver=1.0)
        r = simulate_query(g, StaticAllocation(48), cluster, NO_FRICTION)
        assert r.runtime >= g.critical_path_seconds() - 1e-9


class TestFrictionModels:
    def test_memory_pressure_slows_small_fleets(self, cluster):
        ws = 3 * cluster.executor_memory_bytes
        cfg = SchedulerConfig(spill_coefficient=1.0, coordination_coefficient=0.0)
        g_spill = graph_one_stage(num_tasks=8, task_seconds=1.0, ws=ws)
        t1 = simulate_query(g_spill, StaticAllocation(1), cluster, cfg).runtime
        t4 = simulate_query(g_spill, StaticAllocation(4), cluster, cfg).runtime
        # n=1 suffers a spill slowdown beyond the 2x wave arithmetic
        # (8 tasks / 4 slots = 2 waves at n=1 vs 1 wave on 16 slots)
        assert t1 > 2 * t4 * 1.2

    def test_spill_factor_capped(self, cluster):
        cfg = SchedulerConfig(
            spill_coefficient=100.0, max_spill_factor=2.0,
            coordination_coefficient=0.0,
        )
        g = graph_one_stage(num_tasks=4, task_seconds=1.0,
                            ws=100 * cluster.executor_memory_bytes)
        r = simulate_query(g, StaticAllocation(1), cluster, cfg)
        assert r.runtime == pytest.approx(2.0, abs=1e-6)

    def test_coordination_overhead_grows_with_fleet(self, cluster):
        cfg = SchedulerConfig(spill_coefficient=0.0, coordination_coefficient=0.5)
        g = graph_one_stage(num_tasks=4, task_seconds=1.0)
        t1 = simulate_query(g, StaticAllocation(1), cluster, cfg).runtime
        t48 = simulate_query(g, StaticAllocation(48), cluster, cfg).runtime
        assert t48 > t1  # tiny stage gains nothing, pays overhead


class TestSkylinesAndAUC:
    def test_static_allocation_flat_skyline(self, cluster):
        g = graph_one_stage(num_tasks=16, task_seconds=1.0)
        r = simulate_query(g, StaticAllocation(4), cluster, NO_FRICTION)
        assert r.max_executors == 4
        assert r.auc == pytest.approx(4 * r.runtime, rel=1e-6)

    def test_auc_grows_with_overallocation(self, cluster):
        g = graph_one_stage(num_tasks=16, task_seconds=1.0)
        a4 = simulate_query(g, StaticAllocation(4), cluster, NO_FRICTION).auc
        a16 = simulate_query(g, StaticAllocation(16), cluster, NO_FRICTION).auc
        assert a16 > a4 * 2

    def test_predictive_ramp_visible_in_skyline(self, cluster):
        g = graph_chain(widths=(192, 192, 48), task_seconds=2.0, driver=1.0)
        pol = PredictiveAllocation(25, initial_executors=5, request_delay=1.0)
        r = simulate_query(g, pol, cluster, NO_FRICTION)
        assert r.skyline.value_at(0.0) == 5
        assert r.max_executors == 25


class TestDynamicAllocationIntegration:
    def test_da_scales_up_under_backlog(self, cluster):
        g = graph_one_stage(num_tasks=192, task_seconds=4.0)
        r = simulate_query(g, DynamicAllocation(1, 48), cluster, NO_FRICTION)
        assert r.max_executors > 8

    def test_da_respects_max(self, cluster):
        g = graph_one_stage(num_tasks=500, task_seconds=5.0)
        r = simulate_query(g, DynamicAllocation(1, 6), cluster, NO_FRICTION)
        assert r.max_executors <= 6

    def test_da_releases_idle_executors_in_long_tail(self, cluster):
        # wide stage then a long single-task tail; idle executors released
        stages = [
            Stage(stage_id=0, num_tasks=64, task_seconds=1.0),
            Stage(stage_id=1, num_tasks=1, task_seconds=120.0,
                  dependencies=[0]),
        ]
        g = StageGraph(stages=stages, driver_seconds=0.0, query_id="tail")
        pol = DynamicAllocation(1, 48, idle_timeout=5.0)
        r = simulate_query(g, pol, cluster, NO_FRICTION)
        assert r.skyline.value_at(r.runtime - 1.0) < r.max_executors


class TestExecutionLog:
    def test_log_captures_all_tasks(self, cluster):
        g = graph_chain(widths=(8, 4, 2), task_seconds=1.0)
        r = simulate_query(
            g, StaticAllocation(4), cluster, NO_FRICTION, record_log=True
        )
        log = r.execution_log
        assert log is not None
        assert [s.num_tasks for s in log.stages] == [8, 4, 2]
        assert log.total_work == pytest.approx(14.0, rel=1e-6)

    def test_log_durations_embed_observed_slowdowns(self, cluster):
        cfg = SchedulerConfig(spill_coefficient=1.0, coordination_coefficient=0.0)
        ws = 3 * cluster.executor_memory_bytes
        g = graph_one_stage(num_tasks=8, task_seconds=1.0, ws=ws)
        r = simulate_query(
            g, StaticAllocation(1), cluster, cfg, record_log=True
        )
        assert r.execution_log.stages[0].task_durations.min() > 1.0

    def test_no_log_by_default(self, cluster):
        g = graph_one_stage()
        r = simulate_query(g, StaticAllocation(2), cluster, NO_FRICTION)
        assert r.execution_log is None


class TestDeterminism:
    def test_repeat_runs_identical(self, cluster):
        g = graph_chain(widths=(48, 16), task_seconds=1.3, driver=2.0)
        r1 = simulate_query(g, DynamicAllocation(1, 48), cluster)
        r2 = simulate_query(g, DynamicAllocation(1, 48), cluster)
        assert r1.runtime == r2.runtime
        assert r1.auc == r2.auc
        assert r1.skyline.points == r2.skyline.points

"""Unit tests for allocation policies."""

import pytest

from repro.engine.allocation import (
    AllocationState,
    DynamicAllocation,
    PredictiveAllocation,
    StaticAllocation,
)


def state(
    time=0.0, pending=0, running=0, active=1, outstanding=0, ec=4
) -> AllocationState:
    return AllocationState(
        time=time,
        pending_tasks=pending,
        running_tasks=running,
        active_executors=active,
        outstanding=outstanding,
        cores_per_executor=ec,
    )


class TestStaticAllocation:
    def test_constant_target(self):
        pol = StaticAllocation(10)
        assert pol.initial_executors == 10
        assert pol.desired_target(state(pending=1000)) == 10
        assert pol.desired_target(state(time=1e6)) == 10

    def test_never_releases(self):
        assert StaticAllocation(5).idle_timeout is None

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            StaticAllocation(0)

    def test_repr(self):
        assert repr(StaticAllocation(48)) == "SA(48)"


class TestDynamicAllocation:
    def test_no_growth_without_backlog(self):
        pol = DynamicAllocation(1, 48)
        assert pol.desired_target(state(active=1)) == 1

    def test_backlog_must_be_sustained(self):
        pol = DynamicAllocation(1, 48, backlog_timeout=1.0)
        assert pol.desired_target(state(time=0.0, pending=100)) == 1
        # still within the backlog timeout
        assert pol.desired_target(state(time=0.5, pending=100)) == 1
        # past it: first round adds 1
        assert pol.desired_target(state(time=1.0, pending=100, active=1)) == 2

    def test_exponential_rounds(self):
        pol = DynamicAllocation(1, 48, backlog_timeout=1.0, sustained_timeout=1.0)
        pol.desired_target(state(time=0.0, pending=500, active=1))
        targets = []
        active = 1
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            target = pol.desired_target(
                state(time=t, pending=500, active=active)
            )
            targets.append(target)
            active = target  # grants arrive instantly in this unit test
        # additions double: +1, +2, +4, +8, +16
        assert targets == [2, 4, 8, 16, 32]

    def test_capped_at_max(self):
        pol = DynamicAllocation(1, 10, backlog_timeout=1.0)
        active = 1
        for t in range(1, 10):
            active = pol.desired_target(
                state(time=float(t), pending=500, active=active)
            )
        assert active == 10

    def test_ramp_resets_when_backlog_clears(self):
        pol = DynamicAllocation(1, 48)
        pol.desired_target(state(time=0.0, pending=100, active=1))
        pol.desired_target(state(time=1.0, pending=100, active=1))
        pol.desired_target(state(time=2.0, pending=100, active=2))
        # backlog clears: round size resets to 1
        pol.desired_target(state(time=3.0, pending=0, active=4))
        t = pol.desired_target(state(time=4.0, pending=50, active=4))
        t = pol.desired_target(state(time=5.0, pending=50, active=4))
        assert t == 5  # +1 again, not +8

    def test_target_never_below_min(self):
        pol = DynamicAllocation(3, 48)
        assert pol.desired_target(state(active=0)) >= 3

    def test_scale_up_disabled(self):
        pol = DynamicAllocation(1, 48, scale_up=False)
        assert pol.desired_target(state(time=10.0, pending=1000, active=1)) == 1

    def test_reset_clears_ramp(self):
        pol = DynamicAllocation(1, 48)
        pol.desired_target(state(time=0.0, pending=10, active=1))
        pol.desired_target(state(time=1.0, pending=10, active=1))
        pol.reset()
        assert pol.desired_target(state(time=0.0, pending=10, active=1)) == 1

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            DynamicAllocation(5, 2)
        with pytest.raises(ValueError):
            DynamicAllocation(backlog_timeout=0.0)

    def test_repr(self):
        assert repr(DynamicAllocation(1, 48)) == "DA(1,48)"


class TestPredictiveAllocation:
    def test_initial_fleet_before_request(self):
        pol = PredictiveAllocation(25, initial_executors=5, request_delay=1.0)
        assert pol.desired_target(state(time=0.5)) == 5

    def test_predicted_count_after_optimizer_delay(self):
        pol = PredictiveAllocation(25, initial_executors=5, request_delay=1.0)
        assert pol.desired_target(state(time=1.0)) == 25

    def test_request_sticks_even_when_idle(self):
        pol = PredictiveAllocation(25, initial_executors=5, request_delay=1.0)
        pol.desired_target(state(time=2.0))
        assert pol.desired_target(state(time=50.0, pending=0)) == 25

    def test_no_reactive_scale_up_beyond_prediction(self):
        pol = PredictiveAllocation(10, request_delay=0.0)
        assert pol.desired_target(state(time=5.0, pending=10_000)) == 10

    def test_reset(self):
        pol = PredictiveAllocation(25, initial_executors=5, request_delay=1.0)
        pol.desired_target(state(time=2.0))
        pol.reset()
        assert pol.desired_target(state(time=0.0)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveAllocation(0)
        with pytest.raises(ValueError):
            PredictiveAllocation(5, initial_executors=-1)
        with pytest.raises(ValueError):
            PredictiveAllocation(5, request_delay=-0.1)

    def test_repr(self):
        assert repr(PredictiveAllocation(25)) == "Rule(25)"

"""Differential parity: fleet-of-one ≡ ``simulate_query``, bit for bit.

The repository has exactly one copy of the simulator physics
(:mod:`repro.engine.execution`); these tests are the harness that keeps
it that way.  A fleet of one query on an uncontended pool must reproduce
a dedicated-cluster :func:`~repro.engine.scheduler.simulate_query` run
under :class:`~repro.engine.allocation.BudgetAllocation` — same runtime,
same AUC, same skyline, to the last bit — across the whole TPC-DS
workload and hypothesis-generated DAGs.  Any divergence here is a bug in
one of the two drivers, not noise to tolerate.

Also covered: the collision-free ``(stage_id, executor_id)`` task
payloads (executor ids are unbounded under idle-release churn; the old
``stage_id * 10_000_000 + executor_id`` packing corrupted stage ids once
churn pushed executor ids past the modulus), and the fleet's
dynamic-scaling invariants (pool capacity never exceeded, per-query
floors respected).
"""

import heapq
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.allocation import BudgetAllocation, DynamicAllocation
from repro.engine.cluster import Cluster
from repro.engine.execution import (
    DEFAULT_SCHEDULER_CONFIG,
    ExecutionCore,
    compile_plan,
)
from repro.engine.scheduler import simulate_query
from repro.engine.stages import Stage, StageGraph
from repro.fleet.arrivals import QueryArrival
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def cluster():
    return Cluster()


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=100)


class _GraphWorkload:
    """Minimal workload stub serving one explicit stage graph."""

    def __init__(self, graph):
        self._graph = graph

    def stage_graph(self, query_id):
        return self._graph

    def optimized_plan(self, query_id):
        return None


def fleet_of_one(
    graph,
    budget,
    cluster,
    idle_timeout,
    capacity=64,
    workload=None,
    query_id="q",
):
    """Serve a single uncontended arrival; returns its QueryRecord."""
    wl = workload if workload is not None else _GraphWorkload(graph)
    engine = FleetEngine(
        wl,
        capacity=capacity,
        allocator=static_allocator(budget),
        cluster=cluster,
        config=FleetConfig(idle_release_timeout=idle_timeout),
    )
    metrics = engine.serve([QueryArrival(0, query_id, 0, 0.0)])
    assert metrics.capacity_respected
    return metrics.records[0]


def assert_parity(record, reference):
    """The bit-identity contract: runtime, AUC, skyline."""
    assert record.admit_time == 0.0
    assert record.finish_time - record.admit_time == reference.runtime
    assert record.auc == reference.auc
    assert record.skyline is not None
    assert record.skyline.points == reference.skyline.points


class TestTPCDSParity:
    """The acceptance bar: every TPC-DS plan, bit-identical."""

    def test_all_plans_with_idle_release(self, workload, cluster):
        # An aggressive timeout exercises the idle-release path on every
        # query's tail; budgets cycle so narrow and wide fleets both run.
        for i, qid in enumerate(workload):
            budget = (4, 8, 16, 32)[i % 4]
            record = fleet_of_one(
                None,
                budget,
                cluster,
                idle_timeout=5.0,
                workload=workload,
                query_id=qid,
            )
            reference = simulate_query(
                workload.stage_graph(qid),
                BudgetAllocation(budget, idle_timeout=5.0, min_executors=1),
                cluster,
            )
            assert_parity(record, reference)

    def test_sampled_plans_with_held_budgets(self, workload, cluster):
        qids = list(workload)[::10]
        for qid in qids:
            record = fleet_of_one(
                None,
                12,
                cluster,
                idle_timeout=None,
                workload=workload,
                query_id=qid,
            )
            reference = simulate_query(
                workload.stage_graph(qid),
                BudgetAllocation(12, idle_timeout=None, min_executors=1),
                cluster,
            )
            assert_parity(record, reference)


@st.composite
def stage_graphs(draw):
    """Random DAGs: ragged widths, skew, float (and integer!) drivers.

    Integer driver times matter: the stage compiler always produces them,
    and they tie with the 1-second tick chain — exactly where event
    ordering between the two drivers can silently diverge.
    """
    n_stages = draw(st.integers(1, 6))
    stages = []
    for sid in range(n_stages):
        deps = (
            sorted(
                draw(
                    st.sets(
                        st.integers(0, sid - 1), min_size=0, max_size=min(sid, 3)
                    )
                )
            )
            if sid
            else []
        )
        stages.append(
            Stage(
                stage_id=sid,
                num_tasks=draw(st.integers(1, 48)),
                task_seconds=draw(
                    st.floats(
                        0.05, 8.0, allow_nan=False, allow_infinity=False
                    )
                ),
                dependencies=deps,
                skew_fraction=draw(st.floats(0.0, 0.3)),
                skew_factor=draw(st.floats(1.0, 2.0)),
                skew_work_share=draw(st.floats(0.0, 0.2)),
            )
        )
    driver = draw(
        st.one_of(
            st.integers(0, 40).map(float),
            st.floats(0.0, 40.0, allow_nan=False, allow_infinity=False),
        )
    )
    working_set = draw(st.sampled_from([0.0, 40 * 1024**3, 400 * 1024**3]))
    return StageGraph(
        stages=stages,
        driver_seconds=driver,
        working_set_bytes=working_set,
        query_id="hyp",
    )


class TestHypothesisParity:
    @settings(
        max_examples=60,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        graph=stage_graphs(),
        budget=st.integers(1, 48),
        idle_timeout=st.sampled_from([None, 2.0, 30.0]),
    )
    def test_random_dags_bit_identical(
        self, graph, budget, idle_timeout, cluster
    ):
        record = fleet_of_one(graph, budget, cluster, idle_timeout)
        reference = simulate_query(
            graph,
            BudgetAllocation(
                budget, idle_timeout=idle_timeout, min_executors=1
            ),
            cluster,
        )
        assert_parity(record, reference)


class TestBudgetAllocation:
    def test_idle_releases_are_not_reprovisioned(self, cluster):
        """The pool semantics: capacity returned is never asked back."""
        stages = [
            Stage(stage_id=0, num_tasks=64, task_seconds=1.0),
            Stage(
                stage_id=1,
                num_tasks=1,
                task_seconds=120.0,
                dependencies=[0],
            ),
        ]
        graph = StageGraph(stages=stages, driver_seconds=0.0, query_id="tail")
        policy = BudgetAllocation(16, idle_timeout=5.0, min_executors=1)
        result = simulate_query(graph, policy, cluster)
        # the tail runs on the floor ...
        assert result.skyline.value_at(result.runtime - 1.0) == 1
        # ... and only the one-shot budget is ever provisioned: the
        # skyline's total up-steps are exactly the 16 granted executors
        # (a standing-target policy would re-provision every release)
        counts = [c for _, c in result.skyline.points]
        arrivals = sum(
            b - a for a, b in zip(counts, counts[1:]) if b > a
        )
        assert arrivals == 16

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BudgetAllocation(0)
        with pytest.raises(ValueError):
            BudgetAllocation(4, min_executors=-1)


class TestTaskPayloads:
    """Long-churn cover for the collision-free task identities."""

    def _drive(self, graph, n_executors, first_eid, cluster):
        """A minimal dedicated-cluster driver over ExecutionCore."""
        core = ExecutionCore(
            compile_plan(graph), cluster, DEFAULT_SCHEDULER_CONFIG
        )
        # Simulate a long-lived run's id churn: executor ids far past the
        # old 10_000_000 packing modulus must still route completions to
        # the right (stage, executor) pair.
        core._exec_ids = itertools.count(first_eid)
        counter = itertools.count()
        events = []

        def emit(finish, stage_id, eid):
            heapq.heappush(events, (finish, next(counter), stage_id, eid))

        for _ in range(n_executors):
            core.add_executor(0.0)
        core.mark_driver_done()
        core.assign(0.0, emit)
        while events:
            now, _, stage_id, eid = heapq.heappop(events)
            assert eid >= first_eid
            if core.complete_task(now, stage_id, eid):
                return now, core
            core.assign(now, emit)
        raise AssertionError("query never finished")

    def test_huge_executor_ids_keep_bookkeeping_exact(self, cluster):
        stages = [
            Stage(stage_id=0, num_tasks=40, task_seconds=1.3),
            Stage(stage_id=1, num_tasks=9, task_seconds=2.1, dependencies=[0]),
            Stage(stage_id=2, num_tasks=3, task_seconds=0.7, dependencies=[1]),
        ]
        graph = StageGraph(stages=stages, driver_seconds=1.0, query_id="churn")
        small_end, small_core = self._drive(graph, 4, 0, cluster)
        huge_end, huge_core = self._drive(graph, 4, 10_000_000_000, cluster)
        assert huge_end == small_end
        # identical physics: every executor freed, every stage drained
        assert huge_core.stages_left == 0
        assert all(
            e.free_cores == e.cores for e in huge_core.executors.values()
        )
        assert [
            (t, c) for t, c in huge_core.skyline.points
        ] == small_core.skyline.points


class TestDynamicScalingInvariants:
    """The fleet's new mid-query scaling mode: safety properties."""

    QIDS = ("q1", "q2", "q3", "q5", "q94")

    @pytest.fixture(scope="class")
    def small_workload(self):
        return Workload(scale_factor=50, query_ids=self.QIDS)

    def test_pool_never_exceeded_and_all_finish(self, small_workload):
        from repro.fleet.arrivals import poisson_arrivals

        arrivals = poisson_arrivals(
            self.QIDS, n_queries=30, rate_qps=1.0, seed=3
        )
        capacity = 24
        metrics = FleetEngine(
            small_workload,
            capacity=capacity,
            allocator=static_allocator(4),
            config=FleetConfig(
                scaling=lambda budget: DynamicAllocation(
                    1, 4 * budget, idle_timeout=10.0
                )
            ),
        ).serve(arrivals)
        assert metrics.n_queries == 30
        assert metrics.capacity_respected
        assert metrics.peak_pool_usage <= capacity
        assert all(r.finish_time > r.admit_time for r in metrics.records)

    def test_scaling_grows_beyond_admitted_budget(self, small_workload):
        """Backlogged queries really do scale past their admission."""
        arrivals = [QueryArrival(0, "q94", 0, 0.0)]
        metrics = FleetEngine(
            small_workload,
            capacity=64,
            allocator=static_allocator(2),
            config=FleetConfig(
                scaling=lambda budget: DynamicAllocation(
                    1, 48, idle_timeout=30.0
                )
            ),
        ).serve(arrivals)
        record = metrics.records[0]
        assert record.executors_granted == 2
        assert record.skyline.max_executors > 2

    def test_floor_respected_once_reached(self, small_workload):
        """Idle shedding never undercuts the policy's min_executors."""
        floor = 3
        arrivals = [QueryArrival(0, "q94", 0, 0.0)]
        metrics = FleetEngine(
            small_workload,
            capacity=64,
            allocator=static_allocator(16),
            config=FleetConfig(
                scaling=lambda budget: DynamicAllocation(
                    floor, 48, idle_timeout=2.0
                )
            ),
        ).serve(arrivals)
        points = metrics.records[0].skyline.points
        reached = False
        for _, count in points:
            if reached:
                assert count >= floor
            elif count >= floor:
                reached = True
        assert reached

    def test_scaling_beats_fixed_small_budget_on_latency(
        self, small_workload
    ):
        """Scaling exists for a reason: backlog pressure gets executors."""
        arrivals = [QueryArrival(0, "q94", 0, 0.0)]

        def run(config):
            return FleetEngine(
                small_workload,
                capacity=64,
                allocator=static_allocator(2),
                config=config,
            ).serve(arrivals)

        fixed = run(FleetConfig())
        scaled = run(
            FleetConfig(
                scaling=lambda budget: DynamicAllocation(
                    1, 48, idle_timeout=30.0
                )
            )
        )
        assert scaled.records[0].latency < fixed.records[0].latency
